"""E03 — Lemma 2: constant-mass color near every station."""


def test_e03_lemma2_lower_density(run_experiment):
    report = run_experiment("E03")
    # Bounded below at the effective proximity radius: no station is left
    # without a usable color in its neighbourhood.
    assert report.metrics["min_effective_mass"] > 0.005
    assert report.metrics["min_p10_mass"] > 0.01
