"""E05 — Theorem 2: SBroadcast in O(D log n + log^2 n) rounds."""


def test_e05_spont_broadcast(run_experiment):
    report = run_experiment("E05")
    assert report.metrics["success_rate"] == 1.0
    assert report.metrics["depth_affine_r2"] > 0.95
    assert report.metrics["depth_slope"] > 0
    # Near-flat in n at pinned diameter (the coloring term dominates).
    assert report.metrics["size_growth_exponent"] < 0.5
