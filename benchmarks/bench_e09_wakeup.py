"""E09 — ad hoc wake-up under adversarial schedules (Sect. 5)."""


def test_e09_adhoc_wakeup(run_experiment):
    report = run_experiment("E09")
    assert report.metrics["success_rate"] == 1.0
    # Wake time stays within a constant multiple of D log^2 n for every
    # adversarial schedule.
    assert report.metrics["max_normalized_time"] < 40.0
