"""E08 — flat in max degree Delta (vs local-broadcast composition)."""


def test_e08_density_independence(run_experiment):
    report = run_experiment("E08")
    # The local-broadcast baseline pays ~linearly in Delta; SBroadcast's
    # exponent stays far below it.
    assert (
        report.metrics["sb_vs_delta_exponent"]
        < report.metrics["lb_vs_delta_exponent"] - 0.3
    )
