"""E04 — Theorem 1: NoSBroadcast in O(D log^2 n) rounds."""


def test_e04_nospont_broadcast(run_experiment):
    report = run_experiment("E04")
    assert report.metrics["success_rate"] == 1.0
    # Linear in D at fixed n.
    assert report.metrics["depth_affine_r2"] > 0.95
    assert report.metrics["depth_slope"] > 0
    # Sub-polynomial in n at pinned diameter (log^2 n-compatible).
    assert report.metrics["size_growth_exponent"] < 0.85
