"""E01 — coloring round complexity (Fact 7: O(log^2 n))."""


def test_e01_coloring_time(run_experiment):
    report = run_experiment("E01")
    # The exact schedule shape a*log^2 n + b*log n fits essentially
    # perfectly, and growth vs n is sub-polynomial.
    assert report.metrics["log_poly_r2"] > 0.999
    assert report.metrics["growth_exponent"] < 0.8
