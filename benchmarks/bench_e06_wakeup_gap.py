"""E06 — the ~log n gap between the two wake-up models."""


def test_e06_wakeup_gap(run_experiment):
    report = run_experiment("E06")
    # NoSBroadcast pays a fresh coloring every phase: the ratio exceeds 1
    # everywhere and grows with n.
    assert report.metrics["min_ratio"] > 1.0
    assert report.metrics["max_ratio"] > report.metrics["min_ratio"]
