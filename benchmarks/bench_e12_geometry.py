"""E12 — geometry-independence (the paper's headline claim)."""


def test_e12_geometry_independence(run_experiment):
    report = run_experiment("E12")
    # Same communication graph, different in-ball geometry: spread is
    # sampling noise; varying the graph itself dwarfs it.
    assert report.metrics["family_spread"] < 0.5
    assert (
        report.metrics["with_controls_spread"]
        > 1.5 * report.metrics["family_spread"]
    )
