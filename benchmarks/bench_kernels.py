"""Compiled vs numpy kernel backend: round throughput at n=100k and 1M.

The compiled backend's acceptance criteria (DESIGN.md §2.3) are asserted
directly:

* at n = 100,000 the compiled CSR near-field scan sustains at least
  **10x** the sparse numpy resolver's round throughput — asserted only
  where numba is importable (without it, ``"compiled"`` means the
  un-jitted pure-python loops, so the benchmark instead verifies one
  round of bitwise equivalence and records the environment);
* an **n = 1,000,000 wake-up round** completes through the sparse
  compiled path (``kernel="auto"``) within the scale-smoke budget.

Peak RSS rides along in ``extra_info`` for every figure.  CI uploads
the pytest-benchmark JSON as ``BENCH_kernels.json`` alongside
``BENCH_sinr.json``.
"""

import math
import time

import numpy as np
import pytest

from repro.sysmem import available_memory_bytes, peak_rss_bytes
from repro import kernels
from repro.core.constants import ProtocolConstants
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception_batch

SEED = 2014
DENSITY = 12.0
CUTOFF = 2.0
TX_PROB = 0.02
ROUNDS = 10
BATCH = 4

THROUGHPUT_N = 100_000
THROUGHPUT_FLOOR = 10.0

N_1M = 1_000_000
#: The 1M figure reuses the scale-smoke budget (tests/test_scale_smoke.py).
BUDGET_1M_SECONDS = 900.0


def _coords(n: int, seed: int = SEED) -> np.ndarray:
    side = math.sqrt(n / DENSITY)
    return np.random.default_rng(seed).uniform(0.0, side, size=(n, 2))


def _tx_batch(n: int, seed: int = SEED) -> np.ndarray:
    return np.random.default_rng(seed).random((BATCH, n)) < TX_PROB


def _rounds_per_sec(backend, tx, noise, beta, kernel, rounds=ROUNDS):
    t0 = time.perf_counter()
    for _ in range(rounds):
        backend.resolve_reception_batch(tx, noise, beta, kernel=kernel)
    return rounds / (time.perf_counter() - t0)


def _needs_memory(bytes_needed: int):
    return pytest.mark.skipif(
        available_memory_bytes() < bytes_needed,
        reason=f"needs ~{bytes_needed / 1e9:.0f} GB available memory",
    )


@pytest.mark.compiled
@_needs_memory(6 * 10**9)
def test_kernel_throughput_100k(benchmark, capsys):
    """Compiled vs numpy rounds/sec on the n=100k sparse resolver."""
    n = THROUGHPUT_N
    net = Network(_coords(n), backend="sparse", cutoff=CUTOFF)
    backend = net.sparse_backend
    noise, beta = net.params.noise, net.params.beta
    tx = _tx_batch(n)

    def numpy_rounds():
        return _rounds_per_sec(backend, tx, noise, beta, "numpy")

    rps_numpy = benchmark.pedantic(numpy_rounds, rounds=1, iterations=1)

    if kernels.HAVE_NUMBA:
        # One warm-up round so jit compilation stays out of the figure.
        backend.resolve_reception_batch(tx, noise, beta, kernel="compiled")
        rps_compiled = _rounds_per_sec(backend, tx, noise, beta, "compiled")
        ratio = rps_compiled / rps_numpy
    else:
        # Pure-python loops cannot race numpy; verify the contract that
        # makes the race fair instead: one bitwise-identical round.
        heard_np = backend.resolve_reception_batch(
            tx[:1], noise, beta, kernel="numpy"
        )
        heard_c = backend.resolve_reception_batch(
            tx[:1], noise, beta, kernel="compiled"
        )
        assert np.array_equal(heard_np, heard_c)
        rps_compiled = _rounds_per_sec(
            backend, tx[:1], noise, beta, "compiled", rounds=1
        )
        ratio = None

    benchmark.extra_info.update(
        n=n,
        have_numba=kernels.HAVE_NUMBA,
        rounds_per_sec_numpy=round(rps_numpy, 2),
        rounds_per_sec_compiled=round(rps_compiled, 2),
        throughput_ratio=None if ratio is None else round(ratio, 1),
        nnz=int(backend.indices.size),
        peak_rss_bytes=peak_rss_bytes(),
    )
    with capsys.disabled():
        if ratio is None:
            print(
                f"\nkernels n={n}: numpy {rps_numpy:.1f} rounds/s; no "
                f"numba — compiled leg verified bitwise, floor skipped"
            )
        else:
            print(
                f"\nkernels n={n}: numpy {rps_numpy:.1f} vs compiled "
                f"{rps_compiled:.1f} rounds/s ({ratio:.1f}x, B={BATCH})"
            )
    if ratio is not None:
        assert ratio >= THROUGHPUT_FLOOR, (
            f"compiled kernel only {ratio:.1f}x numpy at n={n}; "
            f"acceptance floor is {THROUGHPUT_FLOOR}x"
        )


@pytest.mark.compiled
@_needs_memory(12 * 10**9)
def test_wakeup_round_at_1m(benchmark, capsys):
    """Acceptance criterion: an n=1M wake-up round completes compiled."""
    from repro.fastsim.engine import spawn_rngs
    from repro.fastsim.wakeup import fast_adhoc_wakeup_batch
    from repro.sim.wakeup import WakeupSchedule

    start = time.perf_counter()
    # A tighter cutoff than the 100k figure keeps the near field at
    # ~65 entries/row — the same working set the scale smoke test uses.
    net = Network(
        _coords(N_1M), backend="sparse", cutoff=1.0, kernel="auto"
    )
    schedule = WakeupSchedule.all_at(N_1M, 0)
    constants = ProtocolConstants.practical()

    def wake():
        return fast_adhoc_wakeup_batch(
            net, schedule, constants, spawn_rngs(1, SEED),
            round_budget=2,
        )

    outcomes = benchmark.pedantic(wake, rounds=1, iterations=1)
    assert outcomes[0].success
    assert outcomes[0].completion_round == 0

    # One contended resolver round: 2% of a million transmitting.
    tx = np.zeros((1, N_1M), dtype=bool)
    tx[0, np.random.default_rng(SEED).choice(N_1M, N_1M // 50, False)] = True
    heard = resolve_reception_batch(
        net.gain_operator, tx, net.params.noise, net.params.beta,
        kernel=net.kernel_kind,
    )
    assert int((heard[0] != NO_SENDER).sum()) > 0

    elapsed = time.perf_counter() - start
    backend = net.sparse_backend
    benchmark.extra_info.update(
        n=N_1M,
        kernel=net.kernel_kind,
        have_numba=kernels.HAVE_NUMBA,
        sparse_bytes=backend.nbytes(),
        nnz=int(backend.indices.size),
        elapsed_seconds=round(elapsed, 1),
        peak_rss_bytes=peak_rss_bytes(),
    )
    with capsys.disabled():
        print(
            f"\n1M wake-up round done in {elapsed:.0f}s "
            f"({net.kernel_kind} kernel, backend "
            f"{backend.nbytes() / 1e6:.0f} MB, "
            f"peak RSS {peak_rss_bytes() / 1e9:.1f} GB)"
        )
    assert elapsed < BUDGET_1M_SECONDS
