"""Ablation benches for the calibration decisions (DESIGN.md §4).

Each bench regenerates one ablation table and asserts the decision it
justifies still holds on current code.
"""

import pytest


@pytest.fixture
def run_ablation(benchmark, capsys):
    def _run(ablation_id: str):
        from repro.experiments.ablations import ABLATIONS

        report = benchmark.pedantic(
            lambda: ABLATIONS[ablation_id](scale="quick"),
            rounds=1, iterations=1,
        )
        with capsys.disabled():
            print()
            print(report.render())
        return report

    return _run


def test_a01_playoff_self_counting(run_ablation):
    report = run_ablation("A01")
    # Receptions-only Playoff keeps the Lemma 2 floor clearly above the
    # paper-bookkeeping variant at practical scale.
    assert report.metrics["receptions_only"] >= report.metrics["paper"]


def test_a02_ceps_sweep(run_ablation):
    report = run_ablation("A02")
    # Every c_eps variant still completes broadcast (no FAIL cells).
    assert all(row[3] != "FAIL" for row in report.rows)


def test_a03_dissemination_sweep(run_ablation):
    report = run_ablation("A03")
    assert "best_c" in report.metrics
    # The shipped default (6.0) is within the reliable band.
    cs = [row[0] for row in report.rows if row[2] == "1.00"]
    assert 6.0 in cs


def test_a04_coloring_refresh(run_ablation):
    report = run_ablation("A04")
    # Both variants succeed on backbone-colored networks.
    assert all(row[2] == "1.00" for row in report.rows)
