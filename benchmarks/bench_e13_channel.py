"""E13 — geometry claims survive off the idealized channel."""


def test_e13_channel_robustness(run_experiment):
    report = run_experiment("E13")
    # The broadcast must stay reliable under every channel — the metric
    # measures cost robustness, not outage.
    assert report.metrics["min_success_rate"] >= 0.9
    # Off-ideal channels may widen the same-graph spread, but the claim
    # survives if it stays far below order-one.
    assert report.metrics["max_offideal_spread"] < 0.6
    # Density independence: doubling density must not double the cost.
    assert report.metrics["max_offideal_density_ratio"] < 2.0
