"""E07 — flat in granularity Rs (the comparison against Daum et al. [5])."""


def test_e07_granularity_independence(run_experiment):
    report = run_experiment("E07")
    # SBroadcast rounds are flat in Rs across ~4 orders of magnitude
    # (log-log slope ~ 0), while the [5] bound grows as log^(alpha+1) Rs.
    assert abs(report.metrics["sb_vs_rs_exponent"]) < 0.15
