"""Multi-host sweep sharding: throughput and identity gates (DESIGN.md §9).

Two acceptance criteria of the distributed execution layer, asserted
directly against *real* ``python -m repro.service`` daemons (separate
processes — separate GILs — coordinating through a shared cache
directory, exactly the production shape):

* **Sharding is invisible** — ``run_grid(workers=[a, b])`` on a
  cache-cold grid is bitwise identical to ``jobs=1`` (always checked;
  seeds are fixed at preparation time, so placement cannot matter).
* **Sharding scales** — two workers complete the cache-cold grid at
  **>= 1.8x** the point throughput of one worker (checked where >= 3
  cores exist: two daemons plus the coordinating client; wall-clock
  parallelism cannot exceed the core count, so smaller boxes record
  the JSON without gating).

Every timed run gets fresh daemons and a fresh cache directory —
nothing is warm, so the measured win is sharding, not pool reuse.
CI uploads the pytest-benchmark JSON as ``BENCH_distrib.json``; the
headline numbers land in ``extra_info`` so the artifact is
self-describing, and ``tools/bench_report.py`` merges it with the
other ``BENCH_*`` artifacts into one trajectory record.
"""

import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim import GridPoint, GridSpec, run_grid

SEED = 2014
N_REPLICATIONS = 8
#: Irregular sizes so the work-stealing queue must balance, not stripe.
POINT_SIZES = (96, 104, 112, 120, 128, 136, 144, 152)
WORKERS = 2
THROUGHPUT_FLOOR = 1.8  # two-worker points/s >= 1.8x one-worker points/s

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS + 1,
    reason=f"needs >= {WORKERS + 1} cores ({WORKERS} daemons + "
    "coordinator) for a wall-clock throughput gate",
)


def _spec() -> GridSpec:
    points = [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=2.0, rng=rng
            ),
            n_replications=N_REPLICATIONS,
            label=f"n={n}",
            constants=ProtocolConstants.practical(),
            kwargs={"source": 0},
        )
        for n in POINT_SIZES
    ]
    return GridSpec(points=points, seed=SEED, name="distrib-bench")


def _spawn_daemons(count, cache_dir):
    """``count`` real service daemons sharing ``cache_dir``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    daemons, addresses = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--tcp", "127.0.0.1:0", "--cache-dir", str(cache_dir),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        line = proc.stdout.readline().strip()
        assert line.startswith("serving on "), line
        daemons.append(proc)
        addresses.append(line[len("serving on "):])
    return daemons, addresses


def _cold_sharded_run(n_workers, cache_dir):
    """One cache-cold sharded run on fresh daemons; returns
    ``(results, elapsed_s)`` with daemon lifetime outside the timing."""
    daemons, addresses = _spawn_daemons(n_workers, cache_dir)
    try:
        start = time.perf_counter()
        results = run_grid(
            _spec(), workers=addresses, cache_dir=str(cache_dir)
        )
        elapsed = time.perf_counter() - start
    finally:
        for proc in daemons:
            proc.kill()
        for proc in daemons:
            proc.wait(10)
    assert not any(r.cached for r in results)  # genuinely cold
    return results, elapsed


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(
            ra.sweep.rounds, rb.sweep.rounds, equal_nan=True
        )
        assert np.array_equal(ra.sweep.success, rb.sweep.success)


def test_sharded_identity(benchmark, tmp_path, capsys):
    """``workers=2`` output is bitwise identical to ``jobs=1``."""
    serial = run_grid(_spec(), jobs=1, cache=False)
    results = benchmark.pedantic(
        lambda: _cold_sharded_run(WORKERS, tmp_path / "cold")[0],
        rounds=1, iterations=1,
    )
    _assert_same_results(serial, results)
    benchmark.extra_info.update(points=len(serial), workers=WORKERS)


@needs_cores
def test_two_worker_throughput_floor(tmp_path, capsys):
    """Cache-cold point throughput at 2 workers >= 1.8x one worker."""
    single_results, single_s = _cold_sharded_run(1, tmp_path / "one")
    double_results, double_s = _cold_sharded_run(
        WORKERS, tmp_path / "two"
    )
    _assert_same_results(single_results, double_results)
    points = len(single_results)
    single_rate = points / single_s
    double_rate = points / double_s
    speedup = double_rate / single_rate
    with capsys.disabled():
        print(
            f"\ncold grid of {points} points: 1 worker "
            f"{single_rate:.2f} pts/s vs {WORKERS} workers "
            f"{double_rate:.2f} pts/s ({speedup:.2f}x)"
        )
    assert speedup >= THROUGHPUT_FLOOR, (
        f"sharding only {speedup:.2f}x point throughput at {WORKERS} "
        f"workers (need >= {THROUGHPUT_FLOOR}x)"
    )
