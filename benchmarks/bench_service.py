"""Load harness for the resident-network query service (DESIGN.md §8).

Two acceptance criteria of the service layer, asserted directly:

* **Coalescing throughput** — serving concurrent SINR queries against a
  resident n = 20,000 sparse deployment through the batch coalescer is
  at least **5x** the throughput of the uncoalesced baseline (one
  ``B = 1`` masked batched-resolver call per request — the legacy
  pre-coalescer serving model), with identical responses.  Coalesced
  serving is additionally asserted bitwise identical to *sequential*
  single-request serving through the same server — the coalescing
  contract itself.
* **Concurrency soak** — 1,000 simultaneous client connections each
  issuing a query all receive bitwise-correct answers; requests/s and
  p50/p99 latency are recorded.

The server serializes kernel calls through a single worker
(`ServiceServer._kernel_executor`), so both numbers measure batch
efficiency rather than how many cores the host happens to have.

CI uploads the pytest-benchmark JSON as ``BENCH_service.json``
alongside the other ``BENCH_*`` artifacts; the headline numbers also
land in ``extra_info`` so the artifact is self-describing.
"""

import asyncio
import math
import time

import numpy as np
import pytest

from repro.network.network import Network
from repro.service import NetworkPool, ServiceServer, connect
from repro.sinr.reception import NO_SENDER, resolve_reception_many
from repro.sysmem import available_memory_bytes

SEED = 2014
N = 20_000
DENSITY = 6.0   # sparse regime: legacy per-request far-field setup dominates
CUTOFF = 1.0

REQUESTS = 256          # concurrent queries in the throughput shootout
TX_PER_REQUEST = 8
THROUGHPUT_FLOOR = 5.0  # coalesced rps >= 5x uncoalesced rps
SOAK_CLIENTS = 1000     # simultaneous connections in the soak
SOAK_CONNECT_WAVE = 100  # connections established per setup wave

needs_memory = pytest.mark.skipif(
    available_memory_bytes() < 2 * 10**9,
    reason="needs ~2 GB available memory for the 20k sparse build",
)


@pytest.fixture(scope="module")
def resident_network():
    """One hot n=20k sparse deployment shared by every load scenario."""
    side = math.sqrt(N / DENSITY)
    coords = np.random.default_rng(SEED).uniform(0, side, size=(N, 2))
    net = Network(coords, name=f"svc-{N}", backend="sparse", cutoff=CUTOFF)
    net.gain_operator  # build outside every timed region
    return net


def _transmitter_sets(count, seed=SEED + 1):
    rng = np.random.default_rng(seed)
    return [
        rng.choice(N, size=TX_PER_REQUEST, replace=False)
        for _ in range(count)
    ]


def _expected_receptions(net, sets):
    """Reference replies straight from the serving resolver."""
    heard = resolve_reception_many(
        net.gain_operator, sets, net.params.noise, net.params.beta
    )
    out = []
    for row in heard:
        receivers = np.flatnonzero(row != NO_SENDER)
        out.append([[int(u), int(row[u])] for u in receivers])
    return out


def _serve_load(net, sets, *, coalesce, sequential=False, window=0.002):
    """Serve ``sets`` through one server; return (elapsed, lat, heard).

    ``sequential=True`` awaits each request before issuing the next —
    the one-at-a-time serving the coalescing contract is anchored to.
    Otherwise all requests are issued concurrently over one pipelined
    connection.
    """

    async def go():
        server = ServiceServer(
            pool=NetworkPool(), window=window, max_batch=128,
            coalesce=coalesce,
        )
        fingerprint, _ = server.pool.add(net)
        await server.start_tcp("127.0.0.1", 0)
        host, port = server.tcp_address
        client = await connect(f"tcp:{host}:{port}")
        latencies = [0.0] * len(sets)
        heard = [None] * len(sets)

        async def one(i, tx):
            t0 = time.perf_counter()
            reply = await client.sinr(fingerprint, tx)
            latencies[i] = time.perf_counter() - t0
            heard[i] = reply["receptions"]

        try:
            t0 = time.perf_counter()
            if sequential:
                for i, tx in enumerate(sets):
                    await one(i, tx)
            else:
                await asyncio.gather(
                    *(one(i, tx) for i, tx in enumerate(sets))
                )
            elapsed = time.perf_counter() - t0
        finally:
            await client.aclose()
            await server.aclose()
        return elapsed, latencies, heard

    return asyncio.run(go())


def _percentile(latencies, q):
    return float(np.percentile(np.asarray(latencies), q))


@needs_memory
def test_coalesced_throughput_floor(resident_network, benchmark, capsys):
    """Acceptance: coalesced serving >= 5x uncoalesced, same answers."""
    net = resident_network
    sets = _transmitter_sets(REQUESTS)

    co_elapsed, co_lat, co_heard = _serve_load(net, sets, coalesce=True)
    un_elapsed, un_lat, un_heard = _serve_load(net, sets, coalesce=False)
    _, _, seq_heard = _serve_load(
        net, sets, coalesce=True, sequential=True
    )

    # The coalescing contract: a coalesced batch is bitwise identical
    # to the same queries served one at a time through the same server.
    assert co_heard == seq_heard
    # The serving resolver is the reference arithmetic.
    assert co_heard == _expected_receptions(net, sets)
    # The legacy baseline agrees decision-for-decision here (its far
    # term is a different rounding of the same certified sum).
    assert co_heard == un_heard

    rps_coalesced = REQUESTS / co_elapsed
    rps_uncoalesced = REQUESTS / un_elapsed
    speedup = rps_coalesced / rps_uncoalesced
    with capsys.disabled():
        print(
            f"\nservice n={N} sparse, {REQUESTS} concurrent queries: "
            f"coalesced {rps_coalesced:.0f} req/s "
            f"(p99 {_percentile(co_lat, 99) * 1e3:.0f} ms) vs "
            f"uncoalesced {rps_uncoalesced:.0f} req/s "
            f"(p99 {_percentile(un_lat, 99) * 1e3:.0f} ms) "
            f"-> {speedup:.1f}x (floor {THROUGHPUT_FLOOR}x)"
        )
    benchmark.extra_info.update(
        n=N,
        requests=REQUESTS,
        tx_per_request=TX_PER_REQUEST,
        rps_coalesced=rps_coalesced,
        rps_uncoalesced=rps_uncoalesced,
        speedup=speedup,
        p99_coalesced_s=_percentile(co_lat, 99),
        p99_uncoalesced_s=_percentile(un_lat, 99),
    )
    assert speedup >= THROUGHPUT_FLOOR, (
        f"coalesced serving only {speedup:.1f}x the uncoalesced "
        f"throughput (floor {THROUGHPUT_FLOOR}x)"
    )
    benchmark.pedantic(
        lambda: _serve_load(net, sets[:64], coalesce=True),
        rounds=1, iterations=1,
    )


@needs_memory
def test_thousand_client_soak(resident_network, benchmark, capsys, tmp_path):
    """1k simultaneous connections, every answer bitwise correct."""
    resource = pytest.importorskip("resource")
    need = SOAK_CLIENTS * 2 + 256
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need:
        if hard < need:
            pytest.skip(f"RLIMIT_NOFILE hard limit {hard} < {need}")
        resource.setrlimit(resource.RLIMIT_NOFILE, (need, hard))

    net = resident_network
    sets = _transmitter_sets(SOAK_CLIENTS, seed=SEED + 2)
    sock = str(tmp_path / "soak.sock")

    async def go():
        server = ServiceServer(pool=NetworkPool(), window=0.002,
                               max_batch=128)
        fingerprint, _ = server.pool.add(net)
        await server.start_unix(sock)
        latencies = [0.0] * SOAK_CLIENTS
        heard = [None] * SOAK_CLIENTS

        # Establish the thousand connections in waves so the connect
        # burst itself doesn't trip accept-queue / fd-rate limits; the
        # queries then all go out simultaneously.
        clients = []
        try:
            for base in range(0, SOAK_CLIENTS, SOAK_CONNECT_WAVE):
                clients.extend(await asyncio.gather(*(
                    connect(f"unix:{sock}")
                    for _ in range(
                        base, min(base + SOAK_CONNECT_WAVE, SOAK_CLIENTS)
                    )
                )))

            async def one_client(i, tx):
                t0 = time.perf_counter()
                reply = await clients[i].sinr(fingerprint, tx)
                latencies[i] = time.perf_counter() - t0
                heard[i] = reply["receptions"]

            t0 = time.perf_counter()
            await asyncio.gather(
                *(one_client(i, tx) for i, tx in enumerate(sets))
            )
            elapsed = time.perf_counter() - t0
        finally:
            for client in clients:
                await client.aclose()
            await server.aclose()
        return elapsed, latencies, heard, server

    elapsed, latencies, heard, server = asyncio.run(go())

    assert all(h is not None for h in heard)
    assert heard == _expected_receptions(net, sets)

    rps = SOAK_CLIENTS / elapsed
    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    batched = max(
        co.stats.max_batch for co in server._coalescers.values()
    )
    with capsys.disabled():
        print(
            f"\nsoak n={N} sparse, {SOAK_CLIENTS} concurrent clients: "
            f"{rps:.0f} req/s, p50 {p50 * 1e3:.0f} ms, "
            f"p99 {p99 * 1e3:.0f} ms, largest batch {batched}"
        )
    benchmark.extra_info.update(
        n=N, clients=SOAK_CLIENTS, rps=rps, p50_s=p50, p99_s=p99,
        max_batch=batched,
    )
    assert batched > 1  # the soak actually exercised coalescing
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
