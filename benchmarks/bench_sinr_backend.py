"""Dense vs sparse SINR backend: peak memory and rounds/sec at scale.

The acceptance criteria of the sparse backend (DESIGN.md §2.2) are
asserted directly:

* at n = 50,000 the sparse backend's resident gain structure is at
  least **10x smaller** than the dense backend's (which holds the
  ``(n, n)`` distance *and* gain matrices — 40 GB at 50k, so the dense
  figure is analytic above :data:`DENSE_MEASURE_MAX`; at 2k both sides
  are measured and the analytic formula is cross-checked);
* an **n = 100,000 wake-up round** completes through the vectorized
  kernel stack in sparse mode.

Resolver throughput (rounds/sec on protocol-shaped transmitter sets) is
recorded for both backends at n = 2k and for the sparse backend at 10k
and 50k.  CI uploads the pytest-benchmark JSON as ``BENCH_sinr.json``
alongside ``BENCH_grid.json``.
"""

import math

import numpy as np
import pytest

from repro.sysmem import available_memory_bytes
from repro.core.constants import ProtocolConstants
from repro.network.network import Network
from repro.sinr.reception import resolve_reception_batch

SEED = 2014
DENSITY = 12.0
CUTOFF = 2.0
#: Largest n whose dense matrices are actually materialized (2 * n^2 * 8
#: bytes); beyond it the dense figure is the same formula, unmeasured.
DENSE_MEASURE_MAX = 2048
#: Transmitter probability of the benchmark rounds — the scale of the
#: protocols' dissemination probabilities at these densities.
TX_PROB = 0.02
ROUNDS = 10
BATCH = 4

MEMORY_FLOOR_N = 50_000
MEMORY_FLOOR_RATIO = 10.0


def _coords(n: int, seed: int = SEED) -> np.ndarray:
    side = math.sqrt(n / DENSITY)
    return np.random.default_rng(seed).uniform(0.0, side, size=(n, 2))


def _dense_bytes(n: int) -> int:
    return 2 * n * n * 8


def _tx_batch(n: int, seed: int = SEED) -> np.ndarray:
    return np.random.default_rng(seed).random((BATCH, n)) < TX_PROB


def _throughput(gain_op, n: int, noise: float, beta: float) -> float:
    tx = _tx_batch(n)
    import time

    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        resolve_reception_batch(gain_op, tx, noise, beta)
    return ROUNDS / (time.perf_counter() - t0)


def _needs_memory(bytes_needed: int):
    return pytest.mark.skipif(
        available_memory_bytes() < bytes_needed,
        reason=f"needs ~{bytes_needed / 1e9:.0f} GB available memory",
    )


@pytest.mark.parametrize("n", [2000, 10_000, 50_000])
def test_sparse_backend_scale(benchmark, n, capsys):
    """Sparse build time, resident bytes and rounds/sec at each n."""
    # The build transient (pair chunk lists, lexsort permutation, final
    # CSR + distance arrays) peaks near 25 kB/station at this density.
    if available_memory_bytes() < 25_000 * n:
        pytest.skip("not enough memory for the sparse build transient")
    coords = _coords(n)

    def build():
        net = Network(coords, backend="sparse", cutoff=CUTOFF)
        net.sparse_backend  # force construction
        return net

    net = benchmark.pedantic(build, rounds=1, iterations=1)
    backend = net.sparse_backend
    rps = _throughput(
        backend, n, net.params.noise, net.params.beta
    )
    sparse_bytes = backend.nbytes()
    ratio = _dense_bytes(n) / sparse_bytes
    benchmark.extra_info.update(
        n=n,
        sparse_bytes=sparse_bytes,
        dense_bytes=_dense_bytes(n),
        memory_ratio=round(ratio, 1),
        rounds_per_sec=round(rps, 1),
        nnz=int(backend.indices.size),
    )
    with capsys.disabled():
        print(
            f"\nsparse n={n}: {sparse_bytes / 1e6:.0f} MB "
            f"(dense {_dense_bytes(n) / 1e9:.1f} GB, {ratio:.0f}x), "
            f"{rps:.1f} rounds/s (B={BATCH})"
        )
    if n >= MEMORY_FLOOR_N:
        assert ratio >= MEMORY_FLOOR_RATIO, (
            f"sparse backend only {ratio:.1f}x smaller than dense at "
            f"n={n}; acceptance floor is {MEMORY_FLOOR_RATIO}x"
        )


def test_dense_backend_reference(benchmark, capsys):
    """Dense figures at the largest size the matrices are affordable."""
    n = DENSE_MEASURE_MAX
    coords = _coords(n)

    def build():
        net = Network(coords, backend="dense")
        net.gains  # force both (n, n) matrices
        return net

    net = benchmark.pedantic(build, rounds=1, iterations=1)
    measured = net.distances.nbytes + net.gains.nbytes
    assert measured == _dense_bytes(n)  # the analytic formula is exact
    rps = _throughput(net.gains, n, net.params.noise, net.params.beta)
    benchmark.extra_info.update(
        n=n, dense_bytes=measured, rounds_per_sec=round(rps, 1)
    )
    with capsys.disabled():
        print(
            f"\ndense n={n}: {measured / 1e6:.0f} MB, "
            f"{rps:.1f} rounds/s (B={BATCH})"
        )


@_needs_memory(6 * 10**9)
def test_wakeup_round_at_100k(benchmark, capsys):
    """Acceptance criterion: an n=100k wake-up round completes sparse."""
    from repro.fastsim.engine import spawn_rngs
    from repro.fastsim.wakeup import fast_adhoc_wakeup_batch
    from repro.sim.wakeup import WakeupSchedule

    n = 100_000
    coords = _coords(n)
    net = Network(coords, backend="sparse", cutoff=CUTOFF)
    schedule = WakeupSchedule.all_at(n, 0)
    constants = ProtocolConstants.practical()

    def wake():
        return fast_adhoc_wakeup_batch(
            net, schedule, constants, spawn_rngs(1, SEED),
            round_budget=4,
        )

    outcomes = benchmark.pedantic(wake, rounds=1, iterations=1)
    assert outcomes[0].success
    assert outcomes[0].completion_round == 0
    backend = net.sparse_backend
    benchmark.extra_info.update(
        n=n,
        sparse_bytes=backend.nbytes(),
        memory_ratio=round(_dense_bytes(n) / backend.nbytes(), 1),
    )
    with capsys.disabled():
        print(
            f"\n100k wake-up round done; backend "
            f"{backend.nbytes() / 1e6:.0f} MB vs dense "
            f"{_dense_bytes(n) / 1e9:.0f} GB"
        )
