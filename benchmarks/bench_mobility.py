"""Mobility: incremental sparse advance vs rebuild-per-round, plus E15.

The acceptance criteria of the mobility layer (DESIGN.md §7) are
asserted directly:

* at n >= 20,000 with at most 5% of the stations moving per round, the
  incremental :meth:`repro.network.network.Network.advance` path is at
  least **5x faster** than rebuilding the sparse backend from scratch,
  and the patched CSR state is **bitwise equal** to the rebuilt one;
* the E15 experiment's quick mode runs end to end and its headline
  metrics hold (broadcast stays reliable under drift, escape time is
  monotone in the mobility rate).

CI uploads the pytest-benchmark JSON as ``BENCH_mobility.json``
alongside ``BENCH_grid.json`` and ``BENCH_sinr.json``.
"""

import math
import time

import numpy as np
import pytest

from repro.sysmem import available_memory_bytes
from repro.network.network import Network
from repro.sinr.sparse import SparseGainBackend

SEED = 2014
DENSITY = 12.0
CUTOFF = 2.0

N = 20_000
MOVE_FRACTION = 0.05
STEP_SCALE = 0.05
ROUNDS = 5
SPEEDUP_FLOOR = 5.0


def _base_network(n: int) -> Network:
    side = math.sqrt(n / DENSITY)
    coords = np.random.default_rng(SEED).uniform(0, side, size=(n, 2))
    return Network(
        coords, name=f"mob-{n}", backend="sparse", cutoff=CUTOFF
    )


def _interior_displacement(
    net: Network, rng: np.random.Generator
) -> np.ndarray:
    """Move MOVE_FRACTION of the interior stations (bounding box stable,
    so the advance stays on the incremental path)."""
    coords = net.coords
    side = coords.max()
    interior = np.flatnonzero(
        np.all((coords > 1.0) & (coords < side - 1.0), axis=1)
    )
    moved = rng.choice(
        interior, size=int(MOVE_FRACTION * net.size), replace=False
    )
    disp = np.zeros_like(coords)
    disp[moved] = STEP_SCALE * rng.standard_normal((moved.size, 2))
    return disp


@pytest.mark.skipif(
    available_memory_bytes() < 2 * 10**9,
    reason="needs ~2 GB available memory for the 20k sparse builds",
)
def test_incremental_advance_speedup_and_equivalence(benchmark, capsys):
    """Acceptance: advance >= 5x faster than rebuild, state bitwise equal."""
    net = _base_network(N)
    net.sparse_backend  # build once outside the timed region
    rng = np.random.default_rng(SEED + 1)
    disps = [_interior_displacement(net, rng) for _ in range(ROUNDS)]

    patch_times = []
    current = net
    for disp in disps:
        t0 = time.perf_counter()
        current = current.advance(disp)
        patch_times.append(time.perf_counter() - t0)
        assert current.advance_mode == "patched-sparse"

    rebuild_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        rebuilt = SparseGainBackend(
            current.coords, net.params, net.channel, CUTOFF
        )
        rebuild_times.append(time.perf_counter() - t0)

    # Best-of runs: on shared machines the medians are noise-bound; the
    # minima measure the code paths.
    patch = min(patch_times)
    rebuild = min(rebuild_times)
    speedup = rebuild / patch

    patched = current.sparse_backend
    assert np.array_equal(patched.indptr, rebuilt.indptr)
    assert np.array_equal(patched.indices, rebuilt.indices)
    assert np.array_equal(patched.data, rebuilt.data)
    assert np.array_equal(patched.dists, rebuilt.dists)

    with capsys.disabled():
        print(
            f"\nincremental advance n={N} ({MOVE_FRACTION:.0%} moving): "
            f"patch {patch * 1e3:.0f} ms vs rebuild {rebuild * 1e3:.0f} ms "
            f"-> {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental advance only {speedup:.1f}x faster than rebuild "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    benchmark.pedantic(
        lambda: net.advance(disps[0]), rounds=1, iterations=1
    )


def test_advance_rebuild_threshold(capsys):
    """Above the moved-fraction threshold the advance must not patch."""
    net = _base_network(4096)
    net.sparse_backend
    disp = np.full((net.size, 2), 1e-3)
    out = net.advance(disp)
    assert out.advance_mode == "rebuild"


def test_e15_mobility(run_experiment):
    report = run_experiment("E15")
    # Broadcast must stay reliable under drift (mild rates).
    assert report.metrics["min_success_rate"] >= 0.9
    # Movement changes cost by a bounded factor, not an order.
    assert report.metrics["max_slowdown"] < 3.0
    # Faster drift escapes the same-graph family no later.
    assert report.metrics["escape_monotone"] is True
