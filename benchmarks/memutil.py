"""Shared memory gating for the scale benchmarks.

The sparse-backend and mobility benchmarks build multi-GB structures;
they skip (and record the skip) on runners that cannot fit them.  The
implementation lives in :mod:`repro.sysmem` — one helper shared with
the scale smoke tests, so a fix (e.g. honoring cgroup limits that
``MemAvailable`` overstates on containerized CI) reaches every caller
at once.  This module re-exports it for the bench scripts, which import
``memutil`` by file-relative convention.
"""

from __future__ import annotations

from repro.sysmem import available_memory_bytes, peak_rss_bytes

__all__ = ["available_memory_bytes", "peak_rss_bytes"]
