"""Shared memory gating for the scale benchmarks.

The sparse-backend and mobility benchmarks build multi-GB structures;
they skip (and record the skip) on runners that cannot fit them.  One
parser lives here so a fix — e.g. honoring cgroup limits that
``MemAvailable`` overstates on containerized CI — reaches every
benchmark at once.
"""

from __future__ import annotations


def available_memory_bytes() -> int:
    """Available system memory, or a huge sentinel when unknowable.

    Reads ``MemAvailable`` from ``/proc/meminfo``; on platforms without
    it, returns ``1 << 62`` so benchmarks are never gated blind.
    """
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 1 << 62
