"""Traffic workloads at scale: n = 20k sparse under contention MACs.

The MAC + traffic stack (DESIGN.md §11) must stay usable at the same
scale as the sparse backend it rides on, so one seeded packet workload
— 32 three-hop Poisson flows over a 20,000-station sparse deployment —
is played under :class:`repro.mac.SlottedAloha` and
:class:`repro.mac.CSMA` with identical persistence, asserting:

* the per-packet accounting closes under both MACs (flow conservation
  is not a small-n property);
* both MACs actually deliver traffic at this scale;
* carrier sensing never loses to blind persistence on collision rate —
  on the same workload, CSMA's arbitration can only remove conflicts
  ALOHA would have suffered.

The timed region is one full CSMA run; slot throughput and both MACs'
delivery/collision numbers land in ``extra_info``.  CI uploads the
pytest-benchmark JSON as ``BENCH_traffic.json`` alongside the other
``BENCH_*.json`` artifacts, merged into ``benchmarks/TRAJECTORY.json``
by ``tools/bench_report.py``.
"""

import math
import time

import networkx as nx
import numpy as np
import pytest

from repro.mac import CSMA, SlottedAloha
from repro.network.network import Network
from repro.sysmem import available_memory_bytes
from repro.traffic import Flow, Poisson, run_traffic

SEED = 2014
DENSITY = 12.0
CUTOFF = 2.0

N = 20_000
N_FLOWS = 32
HOPS = 3
RATE = 0.5
ROUNDS = 60
PERSIST = 0.6


def _network() -> Network:
    side = math.sqrt(N / DENSITY)
    coords = np.random.default_rng(SEED).uniform(0, side, size=(N, 2))
    return Network(
        coords, name=f"traffic-{N}", backend="sparse", cutoff=CUTOFF
    )


def _flows(net: Network) -> list:
    """N_FLOWS seeded multihop demands, each exactly HOPS hops long."""
    rng = np.random.default_rng(SEED + 7)
    sources = rng.choice(net.size, size=4 * N_FLOWS, replace=False)
    flows = []
    for src in sources.tolist():
        if len(flows) == N_FLOWS:
            break
        depths = nx.single_source_shortest_path_length(
            net.graph, src, cutoff=HOPS
        )
        far = [v for v, d in depths.items() if d == HOPS]
        if far:
            flows.append(Flow(src=src, dst=far[0], arrivals=Poisson(RATE)))
    assert len(flows) == N_FLOWS, "deployment too sparse for the workload"
    return flows


@pytest.mark.skipif(
    available_memory_bytes() < 2 * 10**9,
    reason="needs ~2 GB available memory for the 20k sparse build",
)
def test_traffic_throughput_at_scale(benchmark, capsys):
    """Conservation, delivery and the sensing edge at n = 20k sparse."""
    net = _network()
    net.sparse_backend  # build once outside the timed region
    flows = _flows(net)

    def play(mac):
        return run_traffic(
            net, flows, ROUNDS, np.random.default_rng(SEED + 1),
            mac=mac, queue_cap=32,
        )

    timings = {}
    results = {}
    for label, mac in (
        ("aloha", SlottedAloha(PERSIST, seed=3)),
        ("csma", CSMA(persist=PERSIST, seed=3)),
    ):
        t0 = time.perf_counter()
        results[label] = play(mac)
        timings[label] = time.perf_counter() - t0

    for label, result in results.items():
        assert result.conservation_ok(), f"{label}: accounting leaked"
        assert result.delivered() > 0, f"{label}: nothing delivered"
    aloha, csma = results["aloha"], results["csma"]
    assert csma.collision_rate() <= aloha.collision_rate(), (
        "carrier sensing lost to blind persistence: "
        f"csma {csma.collision_rate():.3f} vs "
        f"aloha {aloha.collision_rate():.3f}"
    )

    with capsys.disabled():
        print(f"\ntraffic n={N} ({N_FLOWS} flows x {ROUNDS} slots):")
        for label, result in results.items():
            print(
                f"  {label:<6} {ROUNDS / timings[label]:6.1f} slots/s  "
                f"delivered {result.delivered():4d}  "
                f"collision rate {result.collision_rate():.3f}"
            )
    benchmark.extra_info.update(
        {
            "n": N,
            "flows": N_FLOWS,
            "rounds": ROUNDS,
            "slots_per_sec_csma": round(ROUNDS / timings["csma"], 2),
            "slots_per_sec_aloha": round(ROUNDS / timings["aloha"], 2),
            "delivered_csma": csma.delivered(),
            "delivered_aloha": aloha.delivered(),
            "collision_rate_csma": round(csma.collision_rate(), 4),
            "collision_rate_aloha": round(aloha.collision_rate(), 4),
        }
    )
    benchmark.pedantic(
        lambda: play(CSMA(persist=PERSIST, seed=3)), rounds=1, iterations=1
    )


def test_e16_hidden_node(run_experiment):
    """E16 quick regenerates and its headline asymmetry story holds."""
    report = run_experiment("E16")
    assert report.metrics["csma_asymmetry"] > 5.0
    assert report.metrics["tdma_collision_free"] is True
    assert report.metrics["tdma_beats_csma_hidden"] is True
    assert report.metrics["all_conserved"] is True
