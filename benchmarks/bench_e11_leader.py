"""E11 — leader election: unique leader whp (Sect. 5)."""


def test_e11_leader_election(run_experiment):
    report = run_experiment("E11")
    assert report.metrics["unique_rate"] == 1.0
