"""E10 — consensus linear in log x (Sect. 5)."""


def test_e10_consensus(run_experiment):
    report = run_experiment("E10")
    assert report.metrics["correct_rate"] == 1.0
    # Rounds grow linearly in the bit-width of the message space.
    assert report.metrics["bits_fit"] == "n"
    assert report.metrics["bits_fit_r2"] > 0.9
