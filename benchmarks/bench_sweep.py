"""The sweep engine's reason to exist: batched vs sequential replication.

Three benchmarks run the same 64-seed SBroadcast sweep on the same
deployment through the three available execution paths — the batched
sweep engine, a Python loop of single-instance fastsim runs, and the
reference per-node simulator (on a replication budget scaled down by
``REFERENCE_SCALE``; its per-replication time is what the JSON records).
A fourth test asserts the acceptance criterion directly: the batched
sweep beats the sequential fastsim loop by at least 5x at B=64.

Results land in the pytest-benchmark JSON format like every other bench
module (``pytest benchmarks/bench_sweep.py --benchmark-only
--benchmark-json=...``).
"""

import time

import numpy as np
import pytest

from repro.core.broadcast_spont import run_spont_broadcast
from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim import fast_spont_broadcast, run_sweep, spawn_rngs

N_STATIONS = 64
N_REPLICATIONS = 64
SEED = 2014
#: The reference engine is orders of magnitude slower; bench a slice.
REFERENCE_SCALE = 16


@pytest.fixture(scope="module")
def net():
    return uniform_square(
        n=N_STATIONS, side=2.5, rng=np.random.default_rng(7)
    )


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


def _batched(net, constants):
    return run_sweep(
        "spont_broadcast", net, N_REPLICATIONS, SEED, constants, source=0
    )


def _looped(net, constants, n_replications=N_REPLICATIONS):
    return [
        fast_spont_broadcast(net, 0, constants, rng)
        for rng in spawn_rngs(n_replications, SEED)
    ]


def test_sweep_batched(benchmark, net, constants):
    result = benchmark.pedantic(
        lambda: _batched(net, constants), rounds=1, iterations=1
    )
    assert result.n_replications == N_REPLICATIONS
    assert result.success_rate() == 1.0


def test_sweep_looped_fastsim(benchmark, net, constants):
    outcomes = benchmark.pedantic(
        lambda: _looped(net, constants), rounds=1, iterations=1
    )
    assert all(out.success for out in outcomes)


def test_sweep_reference_simulator(benchmark, net, constants):
    outcomes = benchmark.pedantic(
        lambda: [
            run_spont_broadcast(net, 0, constants, rng)
            for rng in spawn_rngs(
                N_REPLICATIONS // REFERENCE_SCALE, SEED
            )
        ],
        rounds=1, iterations=1,
    )
    assert all(out.success for out in outcomes)


def test_batched_at_least_5x_faster_than_loop(net, constants):
    """Acceptance criterion: 64 batched replications >= 5x faster than 64
    sequential single-instance fastsim runs."""
    # Warm caches (gain matrix, eccentricity) so both paths time the
    # replication work, not the shared one-off deployment costs.
    net.gains
    _looped(net, constants, n_replications=1)

    t0 = time.perf_counter()
    sweep = _batched(net, constants)
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    outcomes = _looped(net, constants)
    looped_s = time.perf_counter() - t0

    # Same seeds => identical per-replication outcomes (sanity check that
    # the comparison is apples to apples).
    for out, single in zip(sweep.outcomes, outcomes):
        assert np.array_equal(out.informed_round, single.informed_round)

    speedup = looped_s / batched_s
    print(
        f"\nbatched {batched_s:.2f}s vs looped {looped_s:.2f}s "
        f"({speedup:.1f}x, B={N_REPLICATIONS}, n={N_STATIONS})"
    )
    assert speedup >= 5.0, (
        f"batched sweep only {speedup:.1f}x faster than the sequential "
        f"fastsim loop (need >= 5x)"
    )
