"""The grid orchestrator's reason to exist: parallel vs serial point sweeps.

One multi-point SBroadcast grid (10 deployments of growing size, batched
replications per point) runs through three paths — ``run_grid(jobs=1)``
(the serial baseline the experiments used to hand-roll), ``run_grid``
with a 4-worker fork pool and shared-memory gain matrices, and a pure
cache replay.  The acceptance criteria of the grid subsystem are asserted
directly:

* the parallel run is **bitwise result-identical** to the serial run
  (always checked — seeds are fixed at preparation time);
* at 4 workers the parallel run beats serial by **>= 3x** wall-clock
  (checked where >= 4 cores exist; wall-clock parallelism cannot exceed
  the core count, so smaller boxes record the JSON without gating).

Results land in the pytest-benchmark JSON like every other bench module
(``pytest benchmarks/bench_grid.py --benchmark-only
--benchmark-json=...``); CI uploads the JSON as ``BENCH_grid.json``.
"""

import os
import time

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim import GridPoint, GridSpec, run_grid

SEED = 2014
N_REPLICATIONS = 24
#: >= 8 points per the acceptance criterion; sizes vary so the schedule
#: is irregular (the pool must load-balance, not just stripe).
POINT_SIZES = (96, 104, 112, 120, 128, 136, 144, 152, 112, 128)
JOBS = 4


def _spec() -> GridSpec:
    points = [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=2.5, rng=rng
            ),
            n_replications=N_REPLICATIONS,
            label=f"n={n}#{i}",
            constants=ProtocolConstants.practical(),
            kwargs={"source": 0},
        )
        for i, n in enumerate(POINT_SIZES)
    ]
    return GridSpec(points=points, seed=SEED, name="bench-grid")


def _assert_complete(results):
    assert len(results) == len(POINT_SIZES)
    assert all(r.sweep.n_replications == N_REPLICATIONS for r in results)


def test_grid_serial(benchmark):
    results = benchmark.pedantic(
        lambda: run_grid(_spec(), jobs=1, cache=False),
        rounds=1, iterations=1,
    )
    _assert_complete(results)


def test_grid_parallel(benchmark):
    results = benchmark.pedantic(
        lambda: run_grid(_spec(), jobs=JOBS, cache=False),
        rounds=1, iterations=1,
    )
    _assert_complete(results)


def test_grid_cache_replay(benchmark, tmp_path):
    run_grid(_spec(), jobs=JOBS, cache_dir=tmp_path)  # populate
    results = benchmark.pedantic(
        lambda: run_grid(_spec(), jobs=1, cache_dir=tmp_path),
        rounds=1, iterations=1,
    )
    _assert_complete(results)
    assert all(r.cached for r in results)


def test_parallel_bitwise_identical_to_serial():
    """Acceptance criterion: jobs=4 and jobs=1 agree bit for bit."""
    serial = run_grid(_spec(), jobs=1, cache=False)
    parallel = run_grid(_spec(), jobs=JOBS, cache=False)
    for s, p in zip(serial, parallel):
        assert np.array_equal(s.sweep.rounds, p.sweep.rounds, equal_nan=True)
        assert np.array_equal(s.sweep.success, p.sweep.success)
        for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
            assert np.array_equal(so.informed_round, po.informed_round)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < JOBS,
    reason=f"needs >= {JOBS} cores for a {JOBS}-worker wall-clock gate",
)
def test_parallel_at_least_3x_faster_than_serial():
    """Acceptance criterion: >= 3x wall-clock at 4 workers on >= 8 points."""
    # One throwaway parallel run first: fork-pool startup, numpy caches
    # and page-cache effects land outside the timed region.
    run_grid(_spec(), jobs=JOBS, cache=False)

    t0 = time.perf_counter()
    run_grid(_spec(), jobs=1, cache=False)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_grid(_spec(), jobs=JOBS, cache=False)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s
    print(
        f"\nserial {serial_s:.2f}s vs {JOBS}-worker {parallel_s:.2f}s "
        f"({speedup:.1f}x over {len(POINT_SIZES)} points)"
    )
    assert speedup >= 3.0, (
        f"grid only {speedup:.1f}x faster at {JOBS} workers (need >= 3x)"
    )
