"""Micro-benchmarks of the simulation substrate.

Not tied to a paper claim — these track the performance of the primitives
every experiment is built on (gain matrices, reception resolution, whole
engine rounds), so regressions in the substrate are visible separately
from protocol-level changes.
"""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim import fast_coloring
from repro.sinr.gain import gain_matrix
from repro.sinr.reception import resolve_reception


@pytest.fixture(scope="module")
def medium_net():
    return uniform_square(n=256, side=4.0, rng=np.random.default_rng(1))


def test_gain_matrix_256(benchmark, medium_net):
    dist = medium_net.distances
    result = benchmark(
        gain_matrix, dist, medium_net.params.power, medium_net.params.alpha
    )
    assert result.shape == (256, 256)


def test_reception_resolution_256(benchmark, medium_net):
    gains = medium_net.gains
    rng = np.random.default_rng(2)
    tx = np.flatnonzero(rng.random(256) < 0.1)

    heard = benchmark(
        resolve_reception, gains, tx, medium_net.params.noise,
        medium_net.params.beta,
    )
    assert heard.shape == (256,)


def test_engine_round_64(benchmark):
    from repro.sim.engine import Simulator
    from repro.sim.node import NodeAlgorithm

    class Gossip(NodeAlgorithm):
        def transmission(self, round_no):
            return 0.05, "x"

        def end_round(self, reception):
            pass

    net = uniform_square(n=64, side=3.0, rng=np.random.default_rng(3))
    sim = Simulator(
        net, [Gossip(i) for i in range(64)], np.random.default_rng(4)
    )
    benchmark(sim.step)


def test_fast_coloring_128(benchmark):
    net = uniform_square(n=128, side=3.0, rng=np.random.default_rng(5))
    constants = ProtocolConstants.practical()

    result = benchmark.pedantic(
        lambda: fast_coloring(net, constants, np.random.default_rng(6)),
        rounds=1, iterations=1,
    )
    assert result.rounds == constants.coloring_total_rounds(128)
