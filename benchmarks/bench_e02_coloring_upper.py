"""E02 — Lemma 1: per-color unit-ball mass bounded by a constant."""


def test_e02_lemma1_upper_density(run_experiment):
    report = run_experiment("E02")
    # Masses stay below a small constant across sizes and geometries,
    # despite per-station probabilities spanning two orders of magnitude.
    assert report.metrics["max_mass"] < 2.0
    # Growth with n stays well below any polynomial trend.
    assert abs(report.metrics["worst_growth_exponent"]) < 0.6
