"""Shared helpers for the benchmark suite.

Each ``bench_eNN`` module regenerates one experiment of DESIGN.md §5 (the
paper's "tables and figures") under ``pytest-benchmark`` timing, prints the
result table, and asserts the experiment's headline metric so a benchmark
run doubles as a validation run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark an experiment once and print its report table."""

    def _run(exp_id: str, scale: str = "quick", seed: int = 2014):
        from repro.experiments.registry import get_experiment

        run = get_experiment(exp_id)
        report = benchmark.pedantic(
            lambda: run(scale=scale, seed=seed), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(report.render())
        return report

    return _run
