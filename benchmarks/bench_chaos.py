"""Chaos soak: a faulted fleet, a murdered coordinator, identical results.

The end-to-end acceptance gate of the crash-safety layer (DESIGN.md
§10): a sharded sweep is driven against **two real daemons** — one of
them started with ``--fault-plan``, so it stalls replies past the
request timeout, mangles reply payloads, drops connections and tears
its cache publishes on a seeded schedule — while the coordinator is
SIGKILLed mid-sweep (a scheduled kill carried as data in the same
plan) and then resumed with ``run_grid(resume=True)``.

Three assertions, none of them statistical:

* **zero lost results** — every point of the resumed run is present
  and at least the points journaled before the kill are replayed, not
  recomputed;
* **zero corrupt replays** — mangled replies and torn bus entries are
  rejected at their checksums and re-dispatched, never consumed: the
  final sweeps are **bitwise identical** to a fault-free ``jobs=1``
  run of the same spec;
* **the journal dies with the finish, not the coordinator** — SIGKILL
  leaves it on disk, the clean resume removes it.

CI uploads the pytest-benchmark JSON as ``BENCH_chaos.json``; the
headline counters (points, kills, journal replays, quarantines) land
in ``extra_info`` so the artifact is self-describing, and
``tools/bench_report.py`` merges it into the trajectory record.
"""

import hashlib
import json
import os
import pathlib
import pickle
import signal
import subprocess
import sys
import threading
import time
import warnings

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim import GridPoint, GridSpec, run_grid
from repro.fastsim.cache import ResultCache
from repro.fastsim.journal import JOURNAL_SUFFIX
from repro.faults import FaultPlan, FaultRule

SEED = 2014
PLAN_SEED = 99
N_REPLICATIONS = 6
POINT_SIZES = (64, 72, 80, 88, 96, 104, 112, 120)
#: The coordinator SIGKILLs itself once this many points are journaled.
KILL_AFTER_POINTS = 2
REQUEST_TIMEOUT = 1.5  # seconds; the stall fault sleeps past this

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def _spec() -> GridSpec:
    points = [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=2.0, rng=rng
            ),
            n_replications=N_REPLICATIONS,
            label=f"n={n}",
            constants=ProtocolConstants.practical(),
            kwargs={"source": 0},
        )
        for n in POINT_SIZES
    ]
    return GridSpec(points=points, seed=SEED, name="chaos-soak")


def _chaos_plan() -> FaultPlan:
    """The seeded schedule the faulted daemon (and the harness) run on."""
    return FaultPlan(
        rules=[
            FaultRule("service.reply.stall", max_fires=2,
                      delay_s=3 * REQUEST_TIMEOUT),
            FaultRule("service.reply.corrupt", max_fires=2),
            FaultRule("service.conn.drop", max_fires=1, after=1),
            FaultRule("cache.put.torn", p=0.5, max_fires=4),
        ],
        seed=PLAN_SEED,
        kills=[{"after_points": KILL_AFTER_POINTS,
                "target": "coordinator"}],
    )


def _digests(results) -> list:
    return [
        hashlib.sha256(pickle.dumps(r.sweep)).hexdigest()
        for r in results
    ]


def _spawn_daemon(cache_dir, fault_plan=None):
    """One real ``python -m repro.service`` daemon on the shared bus."""
    cmd = [
        sys.executable, "-m", "repro.service",
        "--tcp", "127.0.0.1:0", "--cache-dir", str(cache_dir),
    ]
    if fault_plan is not None:
        cmd += ["--fault-plan", str(fault_plan)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on "), line
    return proc, line[len("serving on "):]


def _spawn_coordinator(bus_dir, addresses, plan_path, resume):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, __file__, "coordinator", str(bus_dir),
            ",".join(addresses), str(plan_path), str(int(resume)),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )


def _soak(tmp_path):
    """One full kill-and-resume soak; returns the audit record."""
    bus = tmp_path / "bus"
    bus.mkdir(parents=True, exist_ok=True)
    plan_path = tmp_path / "chaos-plan.json"
    _chaos_plan().save(plan_path)

    daemons = []
    try:
        chaotic, addr_a = _spawn_daemon(bus, fault_plan=plan_path)
        daemons.append(chaotic)
        clean, addr_b = _spawn_daemon(bus)
        daemons.append(clean)
        addresses = [addr_a, addr_b]

        # Run 1: the victim journals points until its scheduled kill.
        victim = _spawn_coordinator(bus, addresses, plan_path, resume=0)
        victim.wait(300)
        assert victim.returncode == -signal.SIGKILL, (
            f"victim exited rc={victim.returncode}; expected the "
            f"scheduled SIGKILL\n{victim.stdout.read()}"
        )
        journals = list(bus.glob("*" + JOURNAL_SUFFIX))
        assert journals, "SIGKILL must leave the journal on disk"
        journaled_at_kill = len(
            journals[0].read_text().splitlines()
        )
        assert journaled_at_kill >= KILL_AFTER_POINTS

        # Run 2: resume against the same (faulted) fleet and bus.
        resumer = _spawn_coordinator(bus, addresses, plan_path, resume=1)
        out, _ = resumer.communicate(timeout=300)
        assert resumer.returncode == 0, out
        line = next(
            l for l in out.splitlines() if l.startswith("RESULT ")
        )
        resumed = json.loads(line[len("RESULT "):])
    finally:
        for proc in daemons:
            proc.kill()
        for proc in daemons:
            proc.wait(10)

    assert not list(bus.glob("*" + JOURNAL_SUFFIX)), (
        "clean resume must remove the journal"
    )
    audit = ResultCache(bus).verify()
    resumed["journaled_at_kill"] = journaled_at_kill
    resumed["bus_audit"] = audit
    return resumed


def test_chaos_soak_kill_resume_identity(benchmark, tmp_path, capsys):
    """The soak: zero lost results, zero corrupt replays, bitwise
    identity with a fault-free run."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        reference = run_grid(_spec(), jobs=1, cache=False)
    ref_digests = _digests(reference)

    resumed = benchmark.pedantic(
        lambda: _soak(tmp_path), rounds=1, iterations=1
    )

    stats = resumed["stats"]
    # Zero lost results: every point present, the pre-kill journal
    # replayed rather than recomputed.
    assert len(resumed["digests"]) == len(ref_digests)
    assert stats["journal_replays"] >= KILL_AFTER_POINTS
    assert stats["journal_replays"] <= stats["cached"]
    # Zero corrupt replays: stalls, mangled payloads, dropped
    # connections and torn bus publishes cost retries, never bytes —
    # the resumed sweeps are bitwise identical to the fault-free run.
    assert resumed["digests"] == ref_digests
    audit = resumed["bus_audit"]
    with capsys.disabled():
        print(
            f"\nchaos soak: {stats['points']} points, 1 coordinator "
            f"SIGKILL after {resumed['journaled_at_kill']} journaled, "
            f"{stats['journal_replays']} replayed on resume; bus audit: "
            f"{audit['verified']} verified, {audit['corrupt']} corrupt "
            f"left, {audit['quarantined']} quarantined"
        )
    benchmark.extra_info.update(
        points=stats["points"],
        kills=1,
        journaled_at_kill=resumed["journaled_at_kill"],
        journal_replays=stats["journal_replays"],
        bus_quarantined=audit["quarantined"],
        bus_corrupt_left=audit["corrupt"],
        plan_seed=PLAN_SEED,
    )


# ----------------------------------------------------------------------
# the coordinator child (re-executed by the soak; not run under pytest)
# ----------------------------------------------------------------------
def _watch_journal_and_die(bus_dir, after_points):
    """Apply the plan's scheduled coordinator kill: SIGKILL ourselves
    once ``after_points`` records are journaled (a real corpse — no
    handlers, no cleanup — is the only honest test of the journal)."""
    bus = pathlib.Path(bus_dir)
    while True:
        for journal in bus.glob("*" + JOURNAL_SUFFIX):
            try:
                lines = journal.read_text().splitlines()
            except OSError:
                continue
            if len(lines) >= after_points:
                os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(0.005)


def _child_coordinator(bus_dir, addresses, plan_path, resume_flag):
    resume = bool(int(resume_flag))
    plan = FaultPlan.load(plan_path)
    if not resume:
        for kill in plan.kills:
            if kill.get("target") == "coordinator":
                threading.Thread(
                    target=_watch_journal_and_die,
                    args=(bus_dir, kill["after_points"]),
                    daemon=True,
                ).start()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        results = run_grid(
            _spec(), workers=addresses.split(","),
            cache_dir=bus_dir, resume=resume,
            request_timeout=REQUEST_TIMEOUT,
        )
    from repro.fastsim.grid import last_grid_stats

    payload = {"stats": last_grid_stats(), "digests": _digests(results)}
    print("RESULT " + json.dumps(payload), flush=True)
    return 0


if __name__ == "__main__":
    assert sys.argv[1] == "coordinator", sys.argv
    sys.exit(_child_coordinator(*sys.argv[2:]))
