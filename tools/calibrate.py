"""Calibration sweep for the practical protocol constants.

Runs the coloring (and optionally SBroadcast) over a small bank of
canonical networks for a grid of constant settings, reporting the
Lemma 1 / Lemma 2 masses (at the paper's eps/2 radius and at the practical
effective radius) and broadcast completion.  Used to choose the defaults
in ``ProtocolConstants.practical`` — results recorded in EXPERIMENTS.md.

Usage: python tools/calibrate.py [--broadcast]
"""

import argparse
import itertools

import numpy as np

from repro import deploy
from repro.core import (
    ProtocolConstants,
    run_coloring,
    run_spont_broadcast,
    lemma1_max_color_mass,
    lemma2_min_best_mass,
)


def bank(rng):
    return [
        ("square-dense", deploy.uniform_square(n=64, side=2.0, rng=rng)),
        ("square-sparse", deploy.uniform_square(n=96, side=4.5, rng=rng)),
        ("chain", deploy.uniform_chain(32, gap=0.5)),
        ("expchain", deploy.exponential_chain(24)),
        ("dumbbell", deploy.dumbbell(20, 6, rng)),
    ]


def main():
    """Run the calibration grid and print one row per constant setting."""
    parser = argparse.ArgumentParser(
        prog="python tools/calibrate.py",
        description="Sweep practical-constant settings over a bank of "
        "canonical networks.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Calibration runs bypass the grid result cache on purpose: "
            "they probe ProtocolConstants variants, and constants are "
            "part of every cache key (kind, Network.fingerprint(), "
            "constants, seed, kwargs — DESIGN.md §6.3), so no two "
            "settings could collide anyway and caching partial "
            "calibration sweeps would only mask code changes.  "
            "Mobility never enters these keys here — calibration is "
            "static by design; dynamic sweeps key on the mobility "
            "model's identity() through the kwargs (see "
            "tools/cache_gc.py --help)."
        ),
    )
    parser.add_argument("--broadcast", action="store_true")
    args = parser.parse_args()

    rng = np.random.default_rng(123)
    nets = bank(rng)
    grid = itertools.product(
        [8.0, 12.0, 16.0],        # ceps
        [0.18, 0.3, 0.45],        # playoff_frac
        [0.08, 0.15],             # density_frac
    )
    for ceps, pf, df in grid:
        consts = ProtocolConstants.practical(
            ceps=ceps, playoff_frac=pf, density_frac=df,
            pmax=min(1.0 / 16.0, 0.9 / ceps),
        )
        row = [f"ceps={ceps:>4} pf={pf:.2f} df={df:.2f}"]
        for name, net in nets:
            res = run_coloring(net, consts, rng)
            l1 = lemma1_max_color_mass(net, res)
            l2a = lemma2_min_best_mass(net, res)
            l2b = lemma2_min_best_mass(net, res, radius=0.4)
            cell = f"{name}: L1={l1:.2f} L2={l2a:.3f}/{l2b:.3f}"
            if args.broadcast:
                out = run_spont_broadcast(net, 0, consts, rng)
                cell += f" bc={'ok' if out.success else 'FAIL'}:{out.completion_round}"
            row.append(cell)
        print(" | ".join(row), flush=True)


if __name__ == "__main__":
    main()
