"""Cross-environment cache replay probe for the kernel backend.

CI's two kernel legs (numba installed / numba absent) run this script
against one shared cache directory: the first leg ``write``s a small
deterministic grid sweep, the second leg must ``replay`` it from cache
without recomputing.  A recompute on the second leg means the cache key
or the network fingerprint started depending on the kernel environment
— exactly the regression DESIGN.md §2.3 forbids (compiled and numpy
kernels are bitwise identical, so their runs must share entries).

Usage::

    PYTHONPATH=src python tools/kernel_cache_probe.py write  CACHE_DIR
    PYTHONPATH=src python tools/kernel_cache_probe.py replay CACHE_DIR
"""

import sys

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.network.network import Network


def _spec() -> GridSpec:
    """One deterministic grid point, identical in every environment."""
    coords = np.random.default_rng(2014).uniform(0, 1.5, size=(16, 2))
    point = GridPoint(
        kind="spont_broadcast",
        deployment=lambda rng: Network(coords, name="kernel-probe"),
        n_replications=2,
        label="kernel-probe",
        constants=ProtocolConstants.practical(),
        kwargs={"source": 0},
    )
    return GridSpec(points=[point], seed=7, name="kernel-probe")


def main(argv: list) -> int:
    """Run the probe; return a process exit code."""
    if len(argv) != 3 or argv[1] not in ("write", "replay"):
        print(__doc__)
        return 2
    mode, cache_dir = argv[1], argv[2]
    result = run_grid(_spec(), jobs=1, cache_dir=cache_dir)[0]
    if not bool(result.sweep.success.all()):
        print("kernel-probe sweep failed; probe inputs are miscalibrated")
        return 1
    if mode == "replay" and not result.cached:
        print(
            "kernel-probe RECOMPUTED: the cache key depends on the kernel "
            "environment (numba present/absent), violating DESIGN.md §2.3"
        )
        return 1
    state = "replayed from cache" if result.cached else "computed"
    print(f"kernel-probe {state} ({mode} leg, cache={cache_dir})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
