"""Gate CI on public-docstring coverage for the library.

Walks every module under ``src/repro`` with ``ast`` (nothing is
imported) and counts docstrings on the public surface: modules, public
classes, public top-level functions, and public methods of public
classes (dunder methods other than ``__init__`` are exempt — their
contracts are the language's).  Floors are per package or per module,
mirroring ``tools/check_coverage.py``; the aggregate ``repro`` floor
keeps the whole tree honest while the named hot modules are pinned at
100%.

Usage::

    python tools/check_docstrings.py [summary.txt]

Exits non-zero when any floor is violated; the summary names every
undocumented definition so the fix is mechanical.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Docstring-coverage floors (percent of public definitions documented).
#: Ratchet upward only — a drop means new public API shipped
#: undocumented.  The named modules are the subsystems the generated
#: docs (tools/gen_docs.py) lean on hardest.
FLOORS = {
    "repro": 97.0,
    "repro.network": 100.0,
    "repro.sinr.sparse": 100.0,
    "repro.fastsim.grid": 100.0,
    "repro.deploy.mobility": 100.0,
    "repro.kernels": 100.0,
    "repro.service": 100.0,
    "repro.distrib": 100.0,
    "repro.faults": 100.0,
    "repro.fastsim.journal": 100.0,
    "repro.mac": 100.0,
    "repro.traffic": 100.0,
}


def _public_items(
    path: pathlib.Path,
) -> tuple[list[tuple[str, str, bool, bool]], set[str]]:
    """The module's public surface plus its documented method names.

    :returns: ``(items, documented_methods)`` where each item is
        ``(qualified name, method name or "", documented, is_override)``
        — overrides (methods of classes with base classes) may inherit
        their contract from the base's documented method of the same
        name, which the caller resolves with the tree-wide
        ``documented_methods`` set (the Sphinx ``autodoc``
        inherit-docstrings convention).
    """
    module = ".".join(path.relative_to(SRC).with_suffix("").parts)
    tree = ast.parse(path.read_text())
    items = [(module, "", ast.get_docstring(tree) is not None, False)]
    documented_methods: set[str] = set()

    def visible(name: str) -> bool:
        return not name.startswith("_") or name == "__init__"

    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and visible(node.name):
            items.append(
                (
                    f"{module}.{node.name}", "",
                    ast.get_docstring(node) is not None, False,
                )
            )
        elif isinstance(node, ast.ClassDef) and visible(node.name):
            items.append(
                (
                    f"{module}.{node.name}", "",
                    ast.get_docstring(node) is not None, False,
                )
            )
            has_bases = bool(node.bases)
            for sub in node.body:
                if not isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not visible(sub.name):
                    continue
                documented = ast.get_docstring(sub) is not None
                if documented:
                    documented_methods.add(sub.name)
                if sub.name == "__init__":
                    # The house style documents constructor parameters
                    # in the class docstring.
                    continue
                items.append(
                    (
                        f"{module}.{node.name}.{sub.name}",
                        sub.name, documented, has_bases,
                    )
                )
    return items, documented_methods


def _matches(scope: str, name: str) -> bool:
    return name == scope or name.startswith(scope + ".")


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    raw: list[tuple[str, str, bool, bool]] = []
    documented_methods: set[str] = set()
    for path in sorted((SRC / "repro").rglob("*.py")):
        if path.name == "__main__.py":
            continue
        module_items, module_docs = _public_items(path)
        raw.extend(module_items)
        documented_methods |= module_docs
    # Resolve overrides: a subclass method whose name is documented on
    # some class in the tree (in practice its ABC — NodeAlgorithm,
    # ChannelModel, MobilityModel, Metric) inherits that contract.
    items = [
        (
            name,
            documented
            or (is_override and method and method in documented_methods),
        )
        for name, method, documented, is_override in raw
    ]

    lines = []
    failed = False
    for scope, floor in sorted(FLOORS.items()):
        module_scope = scope.replace(".__init__", "")
        covered = [
            (name, documented)
            for name, documented in items
            if _matches(module_scope, name)
        ]
        if not covered:
            raise SystemExit(f"no definitions found under {scope!r}")
        documented = sum(1 for _name, ok in covered if ok)
        percent = 100.0 * documented / len(covered)
        verdict = "ok" if percent >= floor else "BELOW FLOOR"
        failed |= percent < floor
        lines.append(
            f"{scope}: {percent:.1f}% ({documented}/{len(covered)} public "
            f"definitions), floor {floor:.1f}% — {verdict}"
        )
        if percent < floor:
            for name, ok in covered:
                if not ok:
                    lines.append(f"  missing: {name}")
    summary = "\n".join(lines) + "\n"
    sys.stdout.write(summary)
    if argv:
        pathlib.Path(argv[0]).write_text(summary)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
