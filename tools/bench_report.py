"""Merge per-job ``BENCH_*.json`` artifacts into one trajectory file.

CI's benchmark jobs each upload a pytest-benchmark JSON
(``BENCH_grid.json``, ``BENCH_service.json``, ``BENCH_distrib.json``,
...), which makes run-over-run comparison a manual scavenger hunt
across artifacts.  This tool folds any number of them into a single
**trajectory** file — a list of labelled snapshots, each mapping
benchmark name to its headline numbers — so the performance story of
the repo lives in one committed document
(``benchmarks/TRAJECTORY.json``) instead of N expiring artifacts.

Usage::

    python tools/bench_report.py BENCH_*.json \
        --output benchmarks/TRAJECTORY.json --label "$GITHUB_SHA"

Snapshots are appended; re-running with an existing label *replaces*
that snapshot (idempotent CI re-runs).  ``--print`` renders the merged
snapshot as a table without writing anything.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_entries(path: "pathlib.Path") -> dict:
    """Headline numbers of every benchmark in one pytest-benchmark JSON.

    Returns ``{bench_name: {"mean_s", "min_s", "stddev_s", "rounds",
    "extra_info", "source"}}``.  Files that are not pytest-benchmark
    output raise ``ValueError`` — a merge must not silently skip an
    artifact.
    """
    with open(path) as handle:
        payload = json.load(handle)
    benches = payload.get("benchmarks")
    if not isinstance(benches, list):
        raise ValueError(
            f"{path}: not a pytest-benchmark JSON (no 'benchmarks' list)"
        )
    entries = {}
    for bench in benches:
        stats = bench.get("stats", {})
        entries[bench["name"]] = {
            "source": path.name,
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
            "extra_info": bench.get("extra_info", {}),
        }
    return entries


def merge_snapshot(paths: "list[pathlib.Path]", label: str) -> dict:
    """One trajectory snapshot from every input artifact."""
    entries: dict = {}
    machine = None
    for path in paths:
        with open(path) as handle:
            machine = machine or json.load(handle).get("machine_info")
        for name, entry in load_entries(path).items():
            entries[name] = entry
    return {
        "label": label,
        "sources": sorted(p.name for p in paths),
        "machine": {
            key: (machine or {}).get(key)
            for key in ("node", "python_version", "cpu")
        },
        "benchmarks": dict(sorted(entries.items())),
    }


def append_snapshot(trajectory_path: "pathlib.Path", snapshot: dict) -> list:
    """Append (or replace, by label) ``snapshot`` in the trajectory."""
    trajectory: list = []
    if trajectory_path.exists():
        trajectory = json.loads(trajectory_path.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(
                f"{trajectory_path}: trajectory must be a JSON list"
            )
    trajectory = [
        snap for snap in trajectory if snap.get("label") != snapshot["label"]
    ] + [snapshot]
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


def format_snapshot(snapshot: dict) -> str:
    """Human-readable table of one snapshot's headline numbers."""
    lines = [
        f"snapshot {snapshot['label']!r} "
        f"({len(snapshot['benchmarks'])} benchmarks from "
        f"{len(snapshot['sources'])} artifact(s))"
    ]
    width = max(
        (len(name) for name in snapshot["benchmarks"]), default=4
    )
    for name, entry in snapshot["benchmarks"].items():
        mean = entry.get("mean_s")
        mean_txt = f"{mean:.4f}s" if mean is not None else "-"
        lines.append(
            f"  {name:<{width}}  mean {mean_txt:<10} "
            f"[{entry['source']}]"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point (see the module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="python tools/bench_report.py",
        description="Merge BENCH_*.json artifacts into one trajectory.",
    )
    parser.add_argument(
        "inputs", nargs="+", metavar="BENCH.json",
        help="pytest-benchmark JSON files to merge",
    )
    parser.add_argument(
        "--output", default="benchmarks/TRAJECTORY.json", metavar="PATH",
        help="trajectory file to append to (default %(default)s)",
    )
    parser.add_argument(
        "--label", default="local", metavar="NAME",
        help="snapshot label, e.g. a commit SHA (default %(default)s); "
        "an existing snapshot with the same label is replaced",
    )
    parser.add_argument(
        "--print", action="store_true", dest="print_only",
        help="render the merged snapshot without writing the trajectory",
    )
    args = parser.parse_args(argv)
    paths = [pathlib.Path(p) for p in args.inputs]
    snapshot = merge_snapshot(paths, args.label)
    print(format_snapshot(snapshot))
    if not args.print_only:
        trajectory = append_snapshot(pathlib.Path(args.output), snapshot)
        print(
            f"wrote {args.output}: {len(trajectory)} snapshot(s), "
            f"latest {snapshot['label']!r}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
