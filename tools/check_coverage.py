"""Gate CI on per-package coverage floors for the hot subsystems.

Reads a ``coverage.json`` report (pytest-cov ``--cov-report=json``),
aggregates line coverage over each package listed in
``tools/coverage_baseline.json``, writes a human-readable summary (the
CI artifact) and exits non-zero if any package fell below its floor.

The floors were seeded at the level measured when the channel-model
subsystem landed (the PR that introduced this gate) and should only ever
be ratcheted *up* — a drop means new code in ``repro.sinr`` or
``repro.fastsim`` shipped without tests.

Usage::

    python tools/check_coverage.py coverage.json [summary.txt]
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).with_name("coverage_baseline.json")


def package_coverage(report: dict, package: str) -> tuple[float, int, int]:
    """Aggregate (percent, covered, statements) over one package's files.

    ``package`` may also name a single module (``repro.sinr.sparse``),
    matched by its ``.py`` file — per-module floors ratchet new hot
    files independently of their package's average.
    """
    needle = package.replace(".", "/") + "/"
    module = package.replace(".", "/") + ".py"
    covered = statements = 0
    for path, entry in report.get("files", {}).items():
        normalized = path.replace("\\", "/")
        if needle in normalized or normalized.endswith(module):
            summary = entry["summary"]
            covered += summary["covered_lines"]
            statements += summary["num_statements"]
    if statements == 0:
        raise SystemExit(
            f"no files of package {package!r} appear in the report — "
            "was pytest run with the right --cov targets?"
        )
    return 100.0 * covered / statements, covered, statements


def main(argv: list[str]) -> int:
    if not argv or len(argv) > 2:
        print(__doc__)
        return 2
    report = json.loads(pathlib.Path(argv[0]).read_text())
    floors = json.loads(BASELINE.read_text())["floors"]
    lines = []
    failed = False
    for package, floor in sorted(floors.items()):
        percent, covered, statements = package_coverage(report, package)
        verdict = "ok" if percent >= floor else "BELOW FLOOR"
        failed |= percent < floor
        lines.append(
            f"{package}: {percent:.1f}% ({covered}/{statements} lines), "
            f"floor {floor:.1f}% — {verdict}"
        )
    summary = "\n".join(lines) + "\n"
    sys.stdout.write(summary)
    if len(argv) == 2:
        pathlib.Path(argv[1]).write_text(summary)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
