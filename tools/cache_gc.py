"""Garbage-collect the on-disk grid result cache (LRU eviction).

The cache (``repro.fastsim.cache.ResultCache``) is content-addressed:
entries never go stale on input changes, so the directory grows without
bound across runs.  This tool reports usage and evicts the
least-recently-used entries (recency = file mtime, refreshed on every
cache hit) until the directory fits the given budgets.

Usage::

    python tools/cache_gc.py [--cache-dir .repro-cache]
                             [--max-mb N] [--max-entries N] [--dry-run]
    python tools/cache_gc.py --verify [--cache-dir .repro-cache]

With no budget it only reports.  The experiments CLI exposes the same
eviction as ``python -m repro.experiments ... --cache-prune MB``.

``--verify`` runs the read-only integrity audit instead: every entry's
checksum header is validated (``ResultCache.verify``), corrupt entries
and on-disk quarantines are reported, and the exit status is nonzero
when corruption is found — so a fleet cron job
(``cache_gc.py --verify || alert``) catches bit-rot before a sweep
trips over it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))


def format_report(report: dict) -> str:
    mode = "would evict" if report["dry_run"] else "evicted"
    line = (
        f"cache {report['root']}: {report['entries']} entries, "
        f"{report['bytes'] / 1e6:.1f} MB; {mode} {report['evicted']} "
        f"LRU entries -> {report['kept_entries']} entries, "
        f"{report['kept_bytes'] / 1e6:.1f} MB"
    )
    swept = report.get("tmp_swept", 0)
    if swept:
        line += f"; swept {swept} stale debris file(s)"
    quarantined = report.get("quarantined", 0)
    if quarantined:
        line += f"; {quarantined} quarantined entr(ies) present"
    return line


def format_verify_report(report: dict) -> str:
    """Human-readable line for a ``--verify`` audit report."""
    line = (
        f"cache {report['root']}: {report['entries']} entries — "
        f"{report['verified']} verified, {report['legacy']} legacy "
        f"(no checksum), {report['corrupt']} corrupt, "
        f"{report['quarantined']} quarantined"
    )
    if report["corrupt_keys"]:
        shown = ", ".join(k[:16] for k in report["corrupt_keys"][:8])
        more = len(report["corrupt_keys"]) - 8
        line += f"\n  corrupt keys: {shown}" + (
            f" (+{more} more)" if more > 0 else ""
        )
    return line


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/cache_gc.py",
        description="Report and LRU-evict the grid result cache.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "cache-key semantics (DESIGN.md §6.3): every entry is "
            "addressed by a SHA-256 of the grid point's inputs — "
            "protocol kind, Network.fingerprint() (coordinates, SINR "
            "parameters, metric, channel identity, sparse-backend "
            "marker), constants, seed, replication count, and the "
            "resolved kwargs.  Mobility sweeps carry their "
            "MobilityModel in the kwargs, so dynamic runs key on the "
            "model's identity() (knobs + trajectory seed) and can "
            "never replay a static run's result — or another "
            "mobility's.  Keys cover inputs, not code: entries never "
            "go stale on input changes, which is why this LRU sweep "
            "is the only reclamation path."
        ),
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="PATH",
        help="cache directory (the experiments CLI default)",
    )
    parser.add_argument(
        "--max-mb", type=float, default=None, metavar="N",
        help="evict oldest entries until total size is at most N MB",
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="evict oldest entries until at most N remain",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting anything",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="read-only integrity audit: validate every entry's "
        "checksum, report corrupt/quarantined entries, exit nonzero "
        "on corruption (for fleet cron alerting)",
    )
    args = parser.parse_args(argv)

    from repro.fastsim.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.verify:
        report = cache.verify()
        print(format_verify_report(report))
        return 1 if (report["corrupt"] or report["quarantined"]) else 0
    report = cache.prune(
        max_bytes=(
            None if args.max_mb is None else int(args.max_mb * 1e6)
        ),
        max_entries=args.max_entries,
        dry_run=args.dry_run,
    )
    print(format_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
