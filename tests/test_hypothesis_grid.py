"""Property-based tests for the grid orchestrator.

The parallel-equals-serial contract (DESIGN.md §6.3): for *any* grid —
random deployments, replication counts, master seed — ``run_grid`` with a
worker pool produces bitwise the same per-point ``rounds``/``success``
arrays as the in-process serial path.  Seeds are fixed at preparation
time and the workers' shared-memory gain matrices are byte copies of the
parent's, so any divergence (seed re-derivation in workers, matrix
transport corruption, point/result misalignment) breaks exact equality
immediately.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim.grid import GridPoint, GridSpec, run_grid

CONSTANTS = ProtocolConstants.practical()

KINDS = ("spont_broadcast", "nospont_broadcast", "uniform_broadcast")


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=st.lists(st.integers(6, 12), min_size=2, max_size=4),
    trials=st.integers(1, 3),
    seed=st.integers(0, 2 ** 20),
    kind_index=st.integers(0, len(KINDS) - 1),
)
def test_parallel_grid_bitwise_equals_serial(sizes, trials, seed,
                                             kind_index):
    points = [
        GridPoint(
            kind=KINDS[kind_index],
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=1.25, rng=rng
            ),
            n_replications=trials,
            label=f"p{i}-n{n}",
            constants=(
                CONSTANTS if KINDS[kind_index] != "uniform_broadcast"
                else None
            ),
            kwargs={"source": 0},
        )
        for i, n in enumerate(sizes)
    ]
    spec = GridSpec(points=points, seed=seed, name="hyp-grid")
    serial = run_grid(spec, jobs=1, cache=False)
    parallel = run_grid(spec, jobs=4, cache=False)
    for s, p in zip(serial, parallel):
        assert np.array_equal(s.sweep.rounds, p.sweep.rounds,
                              equal_nan=True)
        assert np.array_equal(s.sweep.success, p.sweep.success)
        for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
            assert np.array_equal(so.informed_round, po.informed_round)
