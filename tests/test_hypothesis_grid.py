"""Property-based tests for the grid orchestrator.

The parallel-equals-serial contract (DESIGN.md §6.3): for *any* grid —
random deployments, replication counts, master seed — ``run_grid`` with a
worker pool produces bitwise the same per-point ``rounds``/``success``
arrays as the in-process serial path.  Seeds are fixed at preparation
time and the workers' shared-memory gain matrices are byte copies of the
parent's, so any divergence (seed re-derivation in workers, matrix
transport corruption, point/result misalignment) breaks exact equality
immediately.
"""

import tempfile

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim.cache import point_key
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.network.network import Network
from repro.sinr.channel import (
    DualSlope,
    LogNormalShadowing,
    ObstacleMask,
    UniformPower,
    rectangle,
)

CONSTANTS = ProtocolConstants.practical()

KINDS = ("spont_broadcast", "nospont_broadcast", "uniform_broadcast")


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=st.lists(st.integers(6, 12), min_size=2, max_size=4),
    trials=st.integers(1, 3),
    seed=st.integers(0, 2 ** 20),
    kind_index=st.integers(0, len(KINDS) - 1),
)
def test_parallel_grid_bitwise_equals_serial(sizes, trials, seed,
                                             kind_index):
    points = [
        GridPoint(
            kind=KINDS[kind_index],
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=1.25, rng=rng
            ),
            n_replications=trials,
            label=f"p{i}-n{n}",
            constants=(
                CONSTANTS if KINDS[kind_index] != "uniform_broadcast"
                else None
            ),
            kwargs={"source": 0},
        )
        for i, n in enumerate(sizes)
    ]
    spec = GridSpec(points=points, seed=seed, name="hyp-grid")
    serial = run_grid(spec, jobs=1, cache=False)
    parallel = run_grid(spec, jobs=4, cache=False)
    for s, p in zip(serial, parallel):
        assert np.array_equal(s.sweep.rounds, p.sweep.rounds,
                              equal_nan=True)
        assert np.array_equal(s.sweep.success, p.sweep.success)
        for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
            assert np.array_equal(so.informed_round, po.informed_round)


def _channel_battery(sigma, ch_seed, breakpoint, x0):
    """Four channel models plus a second obstacle geometry, all from
    drawn parameters — the collision surface the cache must separate."""
    return [
        UniformPower(),
        LogNormalShadowing(sigma_db=sigma, seed=ch_seed),
        DualSlope(breakpoint=breakpoint),
        ObstacleMask([rectangle(x0, 0.0, x0 + 0.1, 1.0)]),
        ObstacleMask([rectangle(x0, 0.2, x0 + 0.1, 1.2)]),
    ]


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(4, 10),
    seed=st.integers(0, 2 ** 20),
    sigma=st.floats(0.5, 8.0),
    ch_seed=st.integers(0, 2 ** 10),
    breakpoint=st.floats(0.3, 2.0),
    x0=st.floats(0.2, 1.0),
)
def test_channels_never_collide_in_fingerprint_or_cache_key(
    n, seed, sigma, ch_seed, breakpoint, x0
):
    coords = np.random.default_rng(seed).uniform(0, 1.5, size=(n, 2))
    nets = [
        Network(coords, channel=ch)
        for ch in _channel_battery(sigma, ch_seed, breakpoint, x0)
    ]
    fingerprints = [net.fingerprint() for net in nets]
    assert len(set(fingerprints)) == len(nets)
    keys = {
        point_key(
            kind="spont_broadcast",
            network_fingerprint=fp,
            constants=CONSTANTS,
            seed=seed,
            n_replications=2,
            kwargs={"source": 0},
        )
        for fp in fingerprints
    }
    assert len(keys) == len(nets)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2 ** 20),
    sigma=st.floats(0.5, 6.0),
    ch_seed=st.integers(0, 2 ** 10),
)
def test_cache_misses_across_channels_and_parallel_matches_serial(
    seed, sigma, ch_seed
):
    """One deployment, two channels, one cache directory: the second
    channel must recompute, not replay — and the parallel path must carry
    the channel through its fork descriptors bitwise."""
    rng = np.random.default_rng(seed)
    xs = np.arange(6) * 0.45 + rng.uniform(-0.05, 0.05, size=6)
    coords = np.column_stack([xs, rng.uniform(-0.1, 0.1, size=6)])
    ideal = Network(coords)
    shadowed = ideal.with_channel(
        LogNormalShadowing(sigma_db=sigma, seed=ch_seed)
    )

    def spec(net):
        return GridSpec(
            points=[
                GridPoint(
                    kind="spont_broadcast",
                    deployment=lambda rng, m=net: m,
                    n_replications=2,
                    label="p",
                    constants=CONSTANTS,
                    kwargs={"source": 0},
                )
            ],
            seed=seed,
            name="hyp-channel",
        )

    with tempfile.TemporaryDirectory() as cache_dir:
        first = run_grid(spec(ideal), jobs=1, cache_dir=cache_dir)
        cross = run_grid(spec(shadowed), jobs=1, cache_dir=cache_dir)
        assert not first[0].cached
        assert not cross[0].cached  # different channel: miss, not replay
        replay = run_grid(spec(shadowed), jobs=1, cache_dir=cache_dir)
        assert replay[0].cached
    parallel = run_grid(spec(shadowed), jobs=2, cache=False)
    assert np.array_equal(
        cross[0].sweep.rounds, parallel[0].sweep.rounds, equal_nan=True
    )
    assert np.array_equal(cross[0].sweep.success, parallel[0].sweep.success)
