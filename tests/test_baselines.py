"""Tests for the baseline algorithms."""

import numpy as np
import pytest

from repro.baselines import (
    DecayNode,
    LocalBroadcastNode,
    UniformFloodNode,
    run_decay_broadcast,
    run_local_broadcast_global,
    run_uniform_broadcast,
)
from repro.baselines.local_broadcast import phase_length
from repro.errors import ProtocolError


class TestUniformFloodNode:
    def test_constant_probability(self):
        node = UniformFloodNode(0, q=0.25, source_payload="m")
        assert node.probability_for_round(0) == 0.25
        assert node.probability_for_round(100) == 0.25

    def test_rejects_bad_q(self):
        with pytest.raises(ProtocolError):
            UniformFloodNode(0, q=0.0)
        with pytest.raises(ProtocolError):
            UniformFloodNode(0, q=1.5)

    def test_uninformed_listens(self):
        node = UniformFloodNode(1, q=0.5)
        assert node.transmission(0) == (0.0, None)

    def test_informs_on_reception(self):
        from repro.sim.messages import Message, Reception

        node = UniformFloodNode(1, q=0.5)
        node.end_round(
            Reception(
                round_no=4, transmitted=False,
                message=Message(sender=0, payload="m"),
            )
        )
        assert node.informed
        assert node.informed_round == 4
        assert node.transmission(5) == (0.5, "m")


class TestDecayNode:
    def test_ladder_cycles(self):
        node = DecayNode(0, ladder_len=3, source_payload="m")
        probs = [node.probability_for_round(r) for r in range(6)]
        assert probs == [1.0, 0.5, 0.25, 1.0, 0.5, 0.25]

    def test_rejects_bad_ladder(self):
        with pytest.raises(ProtocolError):
            DecayNode(0, ladder_len=0)


class TestLocalBroadcastNode:
    def test_probability_half_over_delta(self):
        node = LocalBroadcastNode(0, max_degree=8, source_payload="m")
        assert node.probability_for_round(0) == pytest.approx(1 / 16)

    def test_rejects_bad_degree(self):
        with pytest.raises(ProtocolError):
            LocalBroadcastNode(0, max_degree=0)

    def test_phase_length_shape(self):
        assert phase_length(256, 10) == int(2.0 * (10 + 8) * 8)
        assert phase_length(256, 100) > phase_length(256, 10)


class TestRunBaselines:
    def test_uniform_completes(self, small_chain, rng):
        out = run_uniform_broadcast(small_chain, 0, q=0.5, rng=rng)
        assert out.success
        assert out.algorithm == "UniformFlood"
        assert out.extras["q"] == 0.5

    def test_uniform_default_q_from_degree(self, small_chain, rng):
        out = run_uniform_broadcast(small_chain, 0, rng=rng)
        assert out.extras["q"] == pytest.approx(
            1.0 / small_chain.max_degree
        )

    def test_decay_completes(self, small_chain, rng):
        out = run_decay_broadcast(small_chain, 0, rng=rng)
        assert out.success
        assert out.algorithm == "DecaySweep"

    def test_decay_ladder_default(self, small_chain, rng):
        out = run_decay_broadcast(small_chain, 0, rng=rng)
        assert out.extras["ladder_len"] == 5  # log2ceil(12)=4, +1

    def test_local_broadcast_completes(self, small_chain, rng):
        out = run_local_broadcast_global(small_chain, 0, rng=rng)
        assert out.success
        assert out.extras["max_degree"] == small_chain.max_degree

    def test_local_broadcast_on_square(self, small_square, rng):
        out = run_local_broadcast_global(small_square, 0, rng=rng)
        assert out.success

    def test_bad_source_rejected(self, small_chain, rng):
        for runner in (
            run_uniform_broadcast,
            run_decay_broadcast,
            run_local_broadcast_global,
        ):
            with pytest.raises(ProtocolError):
                runner(small_chain, 99, rng=rng)

    def test_tiny_budget_fails_gracefully(self, small_chain, rng):
        out = run_uniform_broadcast(
            small_chain, 0, q=0.5, rng=rng, round_budget=1
        )
        assert not out.success

    def test_informed_rounds_consistent(self, small_chain, rng):
        out = run_decay_broadcast(small_chain, 0, rng=rng)
        assert out.informed_round[0] == 0
        assert out.completion_round == out.informed_round.max()
