"""Tests for the parallel grid orchestrator and its result cache."""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import grid_chain, uniform_square
from repro.errors import ProtocolError
from repro.fastsim.cache import (
    ResultCache,
    digest,
    fingerprint_bytes,
    point_key,
)
from repro.fastsim.grid import (
    Derived,
    GridOptions,
    GridPoint,
    GridSpec,
    get_default_grid_options,
    run_grid,
    set_default_grid_options,
)

CONSTANTS = ProtocolConstants.practical()


def _uniform_point(n=12, trials=2, **overrides):
    kwargs = dict(
        kind="spont_broadcast",
        deployment=lambda rng, n=n: uniform_square(n=n, side=1.5, rng=rng),
        n_replications=trials,
        label=f"n={n}",
        constants=CONSTANTS,
        kwargs={"source": 0},
    )
    kwargs.update(overrides)
    return GridPoint(**kwargs)


def _spec(points, seed=2014):
    return GridSpec(points=points, seed=seed, name="test-grid")


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(ra.sweep.rounds, rb.sweep.rounds,
                              equal_nan=True)
        assert np.array_equal(ra.sweep.success, rb.sweep.success)
        assert ra.extras == rb.extras


class TestRunGridBasics:
    def test_results_in_point_order(self):
        spec = _spec([_uniform_point(n) for n in (8, 12, 16)])
        results = run_grid(spec, jobs=1)
        assert [r.point.label for r in results] == ["n=8", "n=12", "n=16"]
        assert [r.network.size for r in results] == [8, 12, 16]
        assert all(not r.cached for r in results)

    def test_empty_spec_rejected(self):
        with pytest.raises(ProtocolError):
            run_grid(_spec([]))

    def test_bad_deployment_rejected(self):
        point = _uniform_point(deployment=lambda rng: "not a network")
        with pytest.raises(ProtocolError):
            run_grid(_spec([point]))

    def test_pinned_seed_reaches_sweep(self):
        results = run_grid(_spec([_uniform_point(seed=77)]), jobs=1)
        assert results[0].sweep.seed == 77

    def test_spawned_seeds_differ_between_points(self):
        spec = _spec([_uniform_point(12), _uniform_point(12)])
        a, b = run_grid(spec, jobs=1)
        # Same deployment family, same kind — but independent sweeps.
        assert a.sweep.seed is not b.sweep.seed
        assert not np.array_equal(a.sweep.rounds, b.sweep.rounds)

    def test_share_deployment_single_instance(self):
        shared = dict(share_deployment="net")
        spec = _spec([
            _uniform_point(12, **shared),
            _uniform_point(12, kind="nospont_broadcast", label="nos",
                           **shared),
        ])
        a, b = run_grid(spec, jobs=1)
        assert a.network is b.network

    def test_post_hook_runs_and_lands_in_extras(self):
        point = _uniform_point(
            post=lambda net, sweep: {"n": net.size,
                                     "ok": float(sweep.success_rate())}
        )
        res = run_grid(_spec([point]), jobs=1)[0]
        assert res.extras["n"] == 12
        assert res.extras["ok"] == res.sweep.success_rate()

    def test_derived_kwargs_resolved_from_network(self):
        point = _uniform_point(
            kwargs={"source": Derived(lambda net, rng: net.size - 1)},
        )
        res = run_grid(_spec([point]), jobs=1)[0]
        # Broadcast from the last station completes: the source is
        # informed at its own round 0.
        assert res.sweep.outcomes[0].informed_round[11] == 0


class TestParallelMatchesSerial:
    def test_bitwise_identical_with_shared_and_derived(self):
        shared = dict(share_deployment="net")
        points = [
            _uniform_point(14, trials=3, **shared),
            _uniform_point(14, trials=3, kind="nospont_broadcast",
                           label="nos", **shared),
            GridPoint(
                kind="spont_broadcast",
                deployment=lambda rng: grid_chain(5, width=2, spacing=0.5),
                n_replications=3,
                label="chain",
                constants=CONSTANTS,
                kwargs={"source": Derived(lambda net, rng: 0)},
            ),
            _uniform_point(10, trials=2, label="small"),
        ]
        serial = run_grid(_spec(points), jobs=1)
        parallel = run_grid(_spec(points), jobs=3)
        _assert_same_results(serial, parallel)
        for s, p in zip(serial, parallel):
            for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
                assert np.array_equal(so.informed_round, po.informed_round)

    def test_more_jobs_than_points(self):
        spec = _spec([_uniform_point(10)])
        _assert_same_results(
            run_grid(spec, jobs=1), run_grid(spec, jobs=8)
        )


def _sparse_points(trials=4):
    """Spread-out sparse-mode points with a live far field."""
    from repro.network.network import Network

    # seed picked for a connected draw with a live far field at this
    # cutoff (spont_broadcast's default budget walks the graph)
    coords = np.random.default_rng(31).uniform(0, 4.5, size=(200, 2))

    def deployment(rng, c=coords):
        return Network(c, name="sparse-grid", backend="sparse", cutoff=1.5)

    return [
        GridPoint(
            kind="spont_broadcast",
            deployment=deployment,
            n_replications=trials,
            label=f"src={src}",
            constants=CONSTANTS,
            kwargs={"source": src},
            share_deployment="sparse-net",
        )
        for src in (0, 40, 80)
    ]


class TestSparseGridMode:
    """The grid layer ships CSR arrays through shared memory (§2.2/§6.3)."""

    def test_jobs2_bitwise_identical_to_jobs1(self):
        serial = run_grid(_spec(_sparse_points()), jobs=1)
        parallel = run_grid(_spec(_sparse_points()), jobs=2)
        _assert_same_results(serial, parallel)
        for s, p in zip(serial, parallel):
            for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
                assert np.array_equal(so.informed_round, po.informed_round)
        assert serial[0].network.backend_kind == "sparse"
        assert not serial[0].network.sparse_backend.far_empty

    def test_cache_replay_in_sparse_mode(self, tmp_path):
        first = run_grid(
            _spec(_sparse_points(trials=2)), jobs=2, cache_dir=tmp_path
        )
        replay = run_grid(
            _spec(_sparse_points(trials=2)), jobs=1, cache_dir=tmp_path
        )
        assert all(r.cached for r in replay)
        _assert_same_results(first, replay)

    def test_sparse_and_dense_cache_keys_never_collide(self, tmp_path):
        from repro.network.network import Network

        coords = np.random.default_rng(32).uniform(0, 1.5, size=(20, 2))

        def make(backend):
            return GridPoint(
                kind="spont_broadcast",
                deployment=lambda rng, b=backend: Network(
                    coords, backend=b, cutoff=2.0
                ),
                n_replications=2,
                label=backend,
                constants=CONSTANTS,
                kwargs={"source": 0},
            )

        run_grid(
            _spec([make("dense")]), jobs=1, cache_dir=tmp_path
        )
        sparse = run_grid(
            _spec([make("sparse")]), jobs=1, cache_dir=tmp_path
        )
        # same coords, same seed spawning — but the sparse point must
        # compute, not replay the dense entry
        assert not sparse[0].cached


class TestResultCache:
    def test_second_run_replays_from_cache(self, tmp_path):
        spec = _spec([_uniform_point(n) for n in (10, 14)])
        first = run_grid(spec, jobs=1, cache_dir=tmp_path)
        second = run_grid(spec, jobs=1, cache_dir=tmp_path)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        _assert_same_results(first, second)
        for s, p in zip(first, second):
            for so, po in zip(s.sweep.outcomes, p.sweep.outcomes):
                assert np.array_equal(so.informed_round, po.informed_round)

    def test_cache_false_bypasses_store(self, tmp_path):
        spec = _spec([_uniform_point()])
        run_grid(spec, jobs=1, cache_dir=tmp_path)
        again = run_grid(spec, jobs=1, cache_dir=tmp_path, cache=False)
        assert not again[0].cached

    def test_constants_change_is_a_miss(self, tmp_path):
        run_grid(_spec([_uniform_point()]), jobs=1, cache_dir=tmp_path)
        tweaked = ProtocolConstants.practical()
        tweaked = type(tweaked)(
            **{**tweaked.__dict__, "density_rounds": 13.0}
        )
        miss = run_grid(
            _spec([_uniform_point(constants=tweaked)]),
            jobs=1, cache_dir=tmp_path,
        )
        assert not miss[0].cached

    def test_kwargs_change_is_a_miss(self, tmp_path):
        run_grid(_spec([_uniform_point()]), jobs=1, cache_dir=tmp_path)
        miss = run_grid(
            _spec([_uniform_point(kwargs={"source": 1})]),
            jobs=1, cache_dir=tmp_path,
        )
        assert not miss[0].cached

    def test_seed_change_is_a_miss(self, tmp_path):
        spec = _spec([_uniform_point()])
        run_grid(spec, jobs=1, cache_dir=tmp_path)
        miss = run_grid(
            _spec([_uniform_point()], seed=999), jobs=1,
            cache_dir=tmp_path,
        )
        assert not miss[0].cached

    def test_channel_change_is_a_miss(self, tmp_path):
        """Identical coords/params under different channel models must
        never replay each other's results (the tentpole regression)."""
        from repro.sinr.channel import LogNormalShadowing

        coords = np.random.default_rng(8).uniform(0, 1.5, size=(12, 2))
        from repro.network.network import Network

        ideal = Network(coords)
        shadowed = ideal.with_channel(LogNormalShadowing(3.0, seed=4))
        assert ideal.fingerprint() != shadowed.fingerprint()
        first = run_grid(
            _spec([_uniform_point(deployment=lambda rng: ideal)]),
            jobs=1, cache_dir=tmp_path,
        )
        miss = run_grid(
            _spec([_uniform_point(deployment=lambda rng: shadowed)]),
            jobs=1, cache_dir=tmp_path,
        )
        assert not miss[0].cached
        assert not np.array_equal(
            first[0].sweep.rounds, miss[0].sweep.rounds, equal_nan=True
        ) or not np.array_equal(
            first[0].sweep.outcomes[0].informed_round,
            miss[0].sweep.outcomes[0].informed_round,
        )
        # Each network replays only its own entry afterwards.
        again = run_grid(
            _spec([_uniform_point(deployment=lambda rng: shadowed)]),
            jobs=1, cache_dir=tmp_path,
        )
        assert again[0].cached

    def test_obstacle_polygon_change_is_a_miss(self, tmp_path):
        from repro.network.network import Network
        from repro.sinr.channel import ObstacleMask, rectangle

        rng = np.random.default_rng(9)
        xs = np.arange(12) * 0.3 + rng.uniform(-0.05, 0.05, size=12)
        coords = np.column_stack([xs, rng.uniform(0.0, 0.3, size=12)])
        wall_a = Network(
            coords,
            channel=ObstacleMask([rectangle(0.7, 0.0, 0.8, 1.0)]),
        )
        wall_b = Network(
            coords,
            channel=ObstacleMask([rectangle(0.7, 0.5, 0.8, 1.5)]),
        )
        assert wall_a.fingerprint() != wall_b.fingerprint()
        run_grid(
            _spec([_uniform_point(deployment=lambda rng: wall_a)]),
            jobs=1, cache_dir=tmp_path,
        )
        miss = run_grid(
            _spec([_uniform_point(deployment=lambda rng: wall_b)]),
            jobs=1, cache_dir=tmp_path,
        )
        assert not miss[0].cached

    def test_corrupt_entry_recomputed(self, tmp_path):
        spec = _spec([_uniform_point()])
        run_grid(spec, jobs=1, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        res = run_grid(spec, jobs=1, cache_dir=tmp_path)[0]
        assert not res.cached
        # ... and the overwritten entry serves the next run.
        assert run_grid(spec, jobs=1, cache_dir=tmp_path)[0].cached

    def test_failed_point_keeps_earlier_points_cached(self, tmp_path):
        """Caching is incremental: a later point blowing up must not
        discard completed work."""
        good = _uniform_point(10)
        bad = _uniform_point(12, post=lambda net, sweep: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            run_grid(_spec([good, bad]), jobs=1, cache_dir=tmp_path)
        # Point 0's spawned seed depends only on its index, so the
        # single-point re-run addresses the same key.
        assert run_grid(_spec([good]), jobs=1,
                        cache_dir=tmp_path)[0].cached

    def test_quick_points_reused_inside_larger_grid(self, tmp_path):
        """The incremental-upgrade property: a superset grid replays the
        subset's points."""
        quick = _spec([_uniform_point(10)])
        run_grid(quick, jobs=1, cache_dir=tmp_path)
        full = _spec([_uniform_point(10), _uniform_point(14)])
        results = run_grid(full, jobs=1, cache_dir=tmp_path)
        assert results[0].cached
        assert not results[1].cached


class TestDefaultOptions:
    def test_cli_installed_defaults_are_used(self, tmp_path):
        before = get_default_grid_options()
        try:
            set_default_grid_options(
                GridOptions(jobs=1, cache_dir=str(tmp_path))
            )
            spec = _spec([_uniform_point()])
            run_grid(spec)
            assert run_grid(spec)[0].cached
        finally:
            set_default_grid_options(before)

    def test_library_default_is_serial_uncached(self):
        options = GridOptions()
        assert options.jobs == 1
        assert options.cache_dir is None


class TestFingerprinting:
    def test_dict_order_insensitive(self):
        assert fingerprint_bytes({"a": 1, "b": 2}) == fingerprint_bytes(
            {"b": 2, "a": 1}
        )

    def test_ndarray_content_sensitive(self):
        a = np.arange(4.0)
        b = np.arange(4.0)
        assert fingerprint_bytes(a) == fingerprint_bytes(b)
        b[0] = 1e-12
        assert fingerprint_bytes(a) != fingerprint_bytes(b)

    def test_seed_sequence_identity(self):
        a = np.random.SeedSequence(5)
        b = np.random.SeedSequence(5)
        assert fingerprint_bytes(a) == fingerprint_bytes(b)
        (child,) = a.spawn(1)
        assert fingerprint_bytes(a) != fingerprint_bytes(child)

    def test_point_key_separates_kinds(self):
        common = dict(
            network_fingerprint="f" * 64,
            constants=CONSTANTS,
            seed=7,
            n_replications=3,
            kwargs={"source": 0},
        )
        assert point_key(kind="spont_broadcast", **common) != point_key(
            kind="nospont_broadcast", **common
        )

    def test_digest_stable(self):
        assert digest({"x": 1.5}) == digest({"x": 1.5})


class TestResultCacheStore:
    def test_len_counts_entries(self, tmp_path):
        store = ResultCache(tmp_path)
        assert len(store) == 0
        store.put("k" * 64, ("payload", {}))
        assert len(store) == 1
        assert store.get("k" * 64) == ("payload", {})
        assert store.hits == 1

    def test_missing_entry_is_none(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.get("absent") is None
        assert store.misses == 1
