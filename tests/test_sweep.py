"""Tests for the batched multi-seed sweep engine."""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.errors import ProtocolError
from repro.fastsim import (
    fast_consensus,
    fast_coloring,
    fast_leader_election,
    fast_nospont_broadcast,
    fast_spont_broadcast,
    fast_uniform_broadcast,
    fast_wakeup,
    run_sweep,
    spawn_rngs,
    sweep_kinds,
)
from repro.fastsim.sweep import SWEEP_KINDS
from repro.sim.wakeup import WakeupSchedule


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


class TestSpawnRngs:
    def test_matches_trial_rngs(self):
        from repro.experiments.base import trial_rngs

        a = [g.random(3) for g in spawn_rngs(4, seed=11)]
        b = [g.random(3) for g in trial_rngs(4, seed=11)]
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_zero_replications(self):
        with pytest.raises(ProtocolError):
            spawn_rngs(0, seed=1)


class TestRunSweepDispatch:
    def test_kinds_listed(self):
        kinds = sweep_kinds()
        for expected in (
            "coloring", "spont_broadcast", "nospont_broadcast",
            "uniform_broadcast", "decay_broadcast", "local_broadcast",
            "adhoc_wakeup", "colored_wakeup", "consensus",
            "leader_election",
        ):
            assert expected in kinds

    def test_unknown_kind(self, small_square):
        with pytest.raises(ProtocolError):
            run_sweep("teleportation", small_square, 2, 0)

    def test_result_shape(self, small_square, constants):
        result = run_sweep(
            "spont_broadcast", small_square, 3, 7, constants, source=0
        )
        assert result.n_replications == 3
        assert result.kind == "spont_broadcast"
        assert result.seed == 7
        assert result.batched
        assert len(result.outcomes) == 3
        assert result.rounds.shape == (3,)
        assert 0.0 <= result.success_rate() <= 1.0

    def test_mean_rounds_over_successes(self, small_square, constants):
        result = run_sweep(
            "uniform_broadcast", small_square, 3, 7, q=0.2, source=0
        )
        if result.success.any():
            assert result.mean_rounds() == pytest.approx(
                float(np.mean(result.rounds[result.success]))
            )

    def test_coloring_sweep_deterministic_rounds(self, small_square,
                                                 constants):
        result = run_sweep("coloring", small_square, 2, 3, constants)
        assert np.all(result.success)
        assert np.all(
            result.rounds
            == constants.coloring_total_rounds(small_square.size)
        )

    def test_reference_fallback(self, small_square, constants):
        schedule = WakeupSchedule.single(small_square.size, 0)
        result = run_sweep(
            "adhoc_wakeup", small_square, 2, 5, constants,
            schedule=schedule, use_batch=False,
        )
        assert not result.batched
        assert result.success.all()

    def test_fallback_requires_reference(self, small_square, constants):
        assert SWEEP_KINDS["coloring"].reference is None
        with pytest.raises(ProtocolError):
            run_sweep(
                "coloring", small_square, 2, 5, constants, use_batch=False
            )


class TestSweepEqualsSequentialLoop:
    """Spot checks of the exact-equality contract (hypothesis tests in
    ``test_hypothesis_sweep.py`` cover random deployments)."""

    B = 4
    SEED = 2014

    def test_spont_broadcast(self, small_square, constants):
        sweep = run_sweep(
            "spont_broadcast", small_square, self.B, self.SEED,
            constants, source=0,
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_spont_broadcast(small_square, 0, constants, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds
            assert out.success == single.success

    def test_nospont_broadcast(self, small_chain, constants):
        # The phase loop is the only kernel mixing per-phase participant
        # masks with per-replication retirement — keep it covered at B>1.
        sweep = run_sweep(
            "nospont_broadcast", small_chain, self.B, self.SEED,
            constants, source=0,
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_nospont_broadcast(small_chain, 0, constants, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds
            assert out.extras["phases_used"] == single.extras["phases_used"]

    def test_uniform_broadcast(self, small_chain):
        sweep = run_sweep(
            "uniform_broadcast", small_chain, self.B, self.SEED,
            q=0.3, source=0,
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_uniform_broadcast(small_chain, 0, q=0.3, rng=rng)
            assert np.array_equal(out.informed_round, single.informed_round)

    def test_coloring(self, small_square, constants):
        sweep = run_sweep("coloring", small_square, self.B, self.SEED,
                          constants)
        for res, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_coloring(small_square, constants, rng)
            assert np.array_equal(res.quit_levels, single.quit_levels)
            assert np.allclose(res.colors, single.colors, equal_nan=True)

    def test_adhoc_wakeup(self, small_chain, constants):
        schedule = WakeupSchedule.staggered(
            small_chain.size, spread=40,
            rng=np.random.default_rng(0), fraction=0.5,
        )
        sweep = run_sweep(
            "adhoc_wakeup", small_chain, self.B, self.SEED, constants,
            schedule=schedule,
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_wakeup(small_chain, schedule, constants, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds

    @pytest.mark.slow
    def test_consensus_with_drawn_values(self, small_chain, constants):
        x_max = 7
        sweep = run_sweep(
            "consensus", small_chain, self.B, self.SEED, constants,
            x_max=x_max,
        )
        for res, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            values = rng.integers(0, x_max + 1, size=small_chain.size)
            single = fast_consensus(
                small_chain, values.tolist(), x_max, constants, rng
            )
            assert np.array_equal(res.decided, single.decided)
            assert res.total_rounds == single.total_rounds
            assert res.rounds_per_bit == single.rounds_per_bit

    @pytest.mark.slow
    def test_leader_election(self, small_chain, constants):
        sweep = run_sweep(
            "leader_election", small_chain, self.B, self.SEED, constants
        )
        for res, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_leader_election(small_chain, constants, rng)
            assert res.leader == single.leader
            assert np.array_equal(res.ids, single.ids)
            assert res.total_rounds == single.total_rounds
