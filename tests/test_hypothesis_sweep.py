"""Property-based tests for the batched sweep engine.

The exact-equality contract (DESIGN.md §6): for *any* small network,
batch size and master seed, the batched sweep's per-replication outputs
equal a Python loop of single-instance fast runs over the same spawned
generators — bitwise, not statistically.  Replication independence is
what the property exercises: any state leaking across the batch axis
(shared counters, wrong masking, cross-replication reductions that
reassociate floating-point sums) breaks it immediately.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.constants import ProtocolConstants
from repro.fastsim import (
    fast_coloring,
    fast_coloring_batch,
    fast_colored_wakeup,
    fast_colored_wakeup_batch,
    fast_consensus,
    fast_spont_broadcast,
    fast_uniform_broadcast,
    run_sweep,
    spawn_rngs,
)
from repro.network.network import Network
from repro.sinr.channel import DualSlope, LogNormalShadowing

CONSTANTS = ProtocolConstants.practical()


@st.composite
def small_network(draw):
    """A random connected-ish network of 2-8 distinct stations."""
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    # Chain backbone with jitter guarantees distinctness and connectivity.
    xs = np.arange(n) * 0.45 + rng.uniform(-0.05, 0.05, size=n)
    ys = rng.uniform(-0.1, 0.1, size=n)
    return Network(np.column_stack([xs, ys]))


@st.composite
def off_ideal_network(draw):
    """A 2D or 3D chain-backbone network under a non-uniform channel.

    The batched-equals-sequential property must not depend on the gain
    matrix being the idealized ``P d^-alpha`` — the kernels only ever see
    ``net.gains`` — nor on the deployment being planar.
    """
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    xs = np.arange(n) * 0.45 + rng.uniform(-0.05, 0.05, size=n)
    columns = [xs, rng.uniform(-0.1, 0.1, size=n)]
    if draw(st.booleans()):
        columns.append(rng.uniform(-0.1, 0.1, size=n))  # 3D deployment
    channel = draw(
        st.sampled_from(
            [
                LogNormalShadowing(
                    sigma_db=draw(st.floats(0.5, 6.0)),
                    seed=draw(st.integers(0, 2 ** 10)),
                ),
                DualSlope(breakpoint=draw(st.floats(0.3, 1.5))),
            ]
        )
    )
    return Network(np.column_stack(columns), channel=channel)


class TestSweepExactEquality:
    @given(
        net=small_network(),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_coloring_batch_equals_loop(self, net, batch, seed):
        rngs = spawn_rngs(batch, seed)
        result = fast_coloring_batch(net, CONSTANTS, rngs)
        for b, rng in enumerate(spawn_rngs(batch, seed)):
            single = fast_coloring(net, CONSTANTS, rng)
            assert np.array_equal(result.quit_levels[b], single.quit_levels)
            assert np.allclose(
                result.colors[b], single.colors, equal_nan=True
            )

    @given(
        net=small_network(),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_spont_sweep_equals_loop(self, net, batch, seed):
        sweep = run_sweep(
            "spont_broadcast", net, batch, seed, CONSTANTS, source=0
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(batch, seed)):
            single = fast_spont_broadcast(net, 0, CONSTANTS, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds
            assert out.success == single.success

    @given(
        net=off_ideal_network(),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_spont_sweep_equals_loop_off_ideal(self, net, batch, seed):
        """Exact equality under shadowed/dual-slope channels and 3D
        deployments — not just the default 2D uniform-power case."""
        sweep = run_sweep(
            "spont_broadcast", net, batch, seed, CONSTANTS, source=0
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(batch, seed)):
            single = fast_spont_broadcast(net, 0, CONSTANTS, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds
            assert out.success == single.success

    @given(
        net=off_ideal_network(),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=10, deadline=None)
    def test_coloring_batch_equals_loop_off_ideal(self, net, batch, seed):
        rngs = spawn_rngs(batch, seed)
        result = fast_coloring_batch(net, CONSTANTS, rngs)
        for b, rng in enumerate(spawn_rngs(batch, seed)):
            single = fast_coloring(net, CONSTANTS, rng)
            assert np.array_equal(result.quit_levels[b], single.quit_levels)
            assert np.allclose(
                result.colors[b], single.colors, equal_nan=True
            )

    @given(
        net=small_network(),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10 ** 6),
        q=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_uniform_sweep_equals_loop(self, net, batch, seed, q):
        sweep = run_sweep(
            "uniform_broadcast", net, batch, seed, q=q, source=0
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(batch, seed)):
            single = fast_uniform_broadcast(net, 0, q=q, rng=rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds

    @given(
        net=small_network(),
        batch=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=10, deadline=None)
    def test_colored_wakeup_batch_equals_loop(self, net, batch, seed):
        base = np.full(net.size, 0.05)
        outs = fast_colored_wakeup_batch(
            net, [0], base, CONSTANTS, spawn_rngs(batch, seed)
        )
        for out, rng in zip(outs, spawn_rngs(batch, seed)):
            single = fast_colored_wakeup(net, [0], base, CONSTANTS, rng)
            assert np.array_equal(out.informed_round, single.informed_round)
            assert out.total_rounds == single.total_rounds

    @given(
        net=small_network(),
        batch=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10 ** 6),
        x_max=st.sampled_from([1, 3, 7]),
    )
    @settings(max_examples=6, deadline=None)
    def test_consensus_sweep_equals_loop(self, net, batch, seed, x_max):
        sweep = run_sweep(
            "consensus", net, batch, seed, CONSTANTS, x_max=x_max
        )
        for res, rng in zip(sweep.outcomes, spawn_rngs(batch, seed)):
            values = rng.integers(0, x_max + 1, size=net.size)
            single = fast_consensus(
                net, values.tolist(), x_max, CONSTANTS, rng
            )
            assert np.array_equal(res.decided, single.decided)
            assert res.total_rounds == single.total_rounds
            assert res.rounds_per_bit == single.rounds_per_bit
            assert res.agreed == single.agreed
            assert res.correct == single.correct
