"""Tests for multi-host sweep sharding over the cache result bus.

The load-bearing claims of DESIGN.md §9, each pinned here:

* **Leases are atomically exclusive** — of any number of concurrent
  claimants exactly one wins (``O_CREAT | O_EXCL`` arbitration), an
  expired lease is stolen with read-back confirmation, and only the
  holder can refresh or release.
* **The cache is a sound multi-writer bus** — concurrent ``put`` calls
  for one key never produce a torn read (readers see a complete old or
  complete new payload), and ``prune`` racing ``get`` degrades to a
  miss, never an error.
* **Sharding is invisible** — ``run_grid(workers=[a, b])`` is bitwise
  identical to ``jobs=1``, whatever the placement.
* **Failure is per point, not per run** — dead addresses, flaky
  servers, stalled servers and SIGKILLed daemons cost retries or a
  local fallback, never a lost result (the ``_run_service`` gather bug
  this PR fixes).

Server-failure injection subclasses :class:`ServiceServer` in-process
(background thread, own loop); the SIGKILL test uses real
``python -m repro.service`` subprocesses because only a separate
process can be killed mid-point.
"""

import asyncio
import contextlib
import json
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import warnings

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.distrib import LeaseBoard, PointRequest, run_sharded
from repro.distrib.leases import LEASE_SUFFIX
from repro.fastsim.cache import ResultCache
from repro.fastsim.grid import Derived, GridPoint, GridSpec, run_grid
from repro.service import ServiceError, ServiceServer

CONSTANTS = ProtocolConstants.practical()

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# lease files
# ----------------------------------------------------------------------
class TestLeaseBoard:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path, ttl=30.0)
        b = LeaseBoard(tmp_path, ttl=30.0)
        assert a.claim("k")
        assert not b.claim("k")
        assert b.contended == 1
        assert a.path("k").name == f"k{LEASE_SUFFIX}"

    def test_reclaim_by_owner_refreshes(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30.0)
        assert board.claim("k")
        first = board.read("k")
        time.sleep(0.05)
        assert board.claim("k")
        assert board.read("k").deadline > first.deadline
        # claimed_at survives the refresh — it names the original claim.
        assert board.read("k").claimed_at == pytest.approx(
            first.claimed_at
        )

    def test_release_then_reclaim(self, tmp_path):
        a = LeaseBoard(tmp_path, ttl=30.0)
        b = LeaseBoard(tmp_path, ttl=30.0)
        assert a.claim("k")
        assert a.release("k")
        assert b.claim("k")
        assert a.released == 1

    def test_release_foreign_fails(self, tmp_path):
        a = LeaseBoard(tmp_path, ttl=30.0)
        b = LeaseBoard(tmp_path, ttl=30.0)
        assert a.claim("k")
        assert not b.release("k")
        assert a.read("k") is not None

    def test_expired_lease_is_stolen(self, tmp_path):
        dead = LeaseBoard(tmp_path, ttl=0.05)
        live = LeaseBoard(tmp_path, ttl=30.0)
        assert dead.claim("k")
        time.sleep(0.1)
        assert live.claim("k")
        assert live.stolen == 1
        assert live.read("k").owner == live.owner

    def test_refresh_extends_and_respects_ownership(self, tmp_path):
        a = LeaseBoard(tmp_path, ttl=1.0)
        b = LeaseBoard(tmp_path, ttl=1.0)
        assert a.claim("k")
        before = a.read("k").deadline
        time.sleep(0.05)
        assert a.refresh("k")
        assert a.read("k").deadline > before
        assert not b.refresh("k")
        assert not b.refresh("missing")

    def test_unreadable_lease_degrades_to_mtime_deadline(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.2)
        path = board.path("k")
        path.write_text("not json {")
        state = board.read("k")
        assert state.owner == "<unreadable>"
        assert not board.claim("k")  # fresh garbage gets its grace
        old = time.time() - 1.0
        os.utime(path, (old, old))
        assert board.claim("k")  # ...then becomes stealable
        assert json.loads(path.read_text())["owner"] == board.owner

    def test_read_missing_is_none(self, tmp_path):
        assert LeaseBoard(tmp_path).read("missing") is None

    def test_concurrent_claims_have_one_winner(self, tmp_path):
        boards = [LeaseBoard(tmp_path, ttl=30.0) for _ in range(4)]
        for round_no in range(5):
            key = f"k{round_no}"
            barrier = threading.Barrier(len(boards))
            wins: list = []

            def race(board):
                barrier.wait()
                if board.claim(key):
                    wins.append(board.owner)

            threads = [
                threading.Thread(target=race, args=(b,)) for b in boards
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(wins) == 1

    def test_stats_shape(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=2.0)
        board.claim("k")
        board.release("k")
        stats = board.stats()
        assert stats["claimed"] == 1 and stats["released"] == 1
        assert stats["ttl_s"] == 2.0 and stats["owner"] == board.owner


# ----------------------------------------------------------------------
# the cache as a multi-writer result bus
# ----------------------------------------------------------------------
def _hammer_put(root, key, n, rounds):
    """Subprocess body: repeatedly publish the deterministic payload."""
    cache = ResultCache(root)
    payload = (np.arange(n, dtype=np.float64), {"n": n})
    for _ in range(rounds):
        cache.put(key, payload)


class TestCacheBus:
    def test_concurrent_put_never_torn(self, tmp_path):
        # Two writer processes publish the same (deterministic) payload
        # for one key while this process reads in a loop: every read is
        # either a miss (nothing published yet) or the complete payload
        # — never a torn pickle, which would surface as a miss *after*
        # a hit or as a corrupted array.
        key, n = "bus-key", 50_000
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_put, args=(str(tmp_path), key, n, 40)
            )
            for _ in range(2)
        ]
        for w in writers:
            w.start()
        cache = ResultCache(tmp_path)
        seen = False
        try:
            while any(w.is_alive() for w in writers):
                hit = cache.get(key)
                if hit is None:
                    assert not seen, "hit regressed to miss (torn write)"
                    continue
                seen = True
                arr, extras = hit
                assert extras == {"n": n}
                assert arr.shape == (n,) and arr[-1] == n - 1
        finally:
            for w in writers:
                w.join(30)
        assert seen
        assert all(w.exitcode == 0 for w in writers)
        final = cache.get(key)
        assert final is not None and final[0].shape == (n,)

    def test_prune_racing_get_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(30):
            cache.put(f"k{i}", (np.arange(100), {}))
        stop = threading.Event()
        errors: list = []

        def pruner():
            try:
                while not stop.is_set():
                    cache.prune(max_entries=5)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        thread = threading.Thread(target=pruner)
        thread.start()
        try:
            deadline = time.time() + 1.0
            while time.time() < deadline:
                for i in range(30):
                    hit = cache.get(f"k{i}")
                    if hit is not None:
                        assert hit[0].shape == (100,)
        finally:
            stop.set()
            thread.join(10)
        assert not errors
        # The bus stays writable after any amount of pruning.
        cache.put("fresh", (np.arange(3), {}))
        assert cache.get("fresh") is not None


# ----------------------------------------------------------------------
# grid helpers shared by the sharding tests
# ----------------------------------------------------------------------
def _grid_points(hooked=True):
    points = [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=1.5, rng=rng
            ),
            n_replications=2,
            label=f"n={n}",
            constants=CONSTANTS,
            kwargs={"source": Derived(lambda net, rng: 0)},
        )
        for n in (10, 11, 12, 13)
    ]
    if hooked:
        points += [
            GridPoint(
                kind="spont_broadcast",
                deployment=lambda rng: uniform_square(
                    n=14, side=1.5, rng=rng
                ),
                n_replications=2,
                label=f"shared-{src}",
                constants=CONSTANTS,
                kwargs={"source": src},
                share_deployment="distrib-shared",
                post=_degree_post,
            )
            for src in (0, 5)
        ]
    return points


def _degree_post(net, sweep):
    return {"max_degree": int(net.max_degree)}


def _spec(hooked=True):
    return GridSpec(
        points=_grid_points(hooked), seed=2014, name="distrib-grid"
    )


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(
            ra.sweep.rounds, rb.sweep.rounds, equal_nan=True
        )
        assert np.array_equal(ra.sweep.success, rb.sweep.success)
        assert ra.extras == rb.extras


class _ServerThread:
    """An in-process daemon on a background thread (its own loop)."""

    def __init__(self, factory=ServiceServer, **server_kwargs):
        self.address = None
        self._ready = threading.Event()
        self._loop = None
        self._server = None
        self._thread = threading.Thread(
            target=self._run, args=(factory,), kwargs=server_kwargs,
            daemon=True,
        )
        self._thread.start()
        assert self._ready.wait(20), "service thread failed to start"

    def _run(self, factory, **server_kwargs):
        async def main():
            self._server = factory(**server_kwargs)
            await self._server.start_tcp("127.0.0.1", 0)
            host, port = self._server.tcp_address
            self.address = f"tcp:{host}:{port}"
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._server.serve_forever()

        asyncio.run(main())

    def stop(self):
        self._loop.call_soon_threadsafe(self._server.shutdown)
        self._thread.join(20)


@contextlib.contextmanager
def _server_thread(factory=ServiceServer, **server_kwargs):
    thread = _ServerThread(factory, **server_kwargs)
    try:
        yield thread.address
    finally:
        thread.stop()


class _FlakyServer(ServiceServer):
    """Fails the first ``fail_first`` sweep requests, then behaves."""

    fail_first = 0

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.sweep_calls = 0

    async def _op_sweep(self, request):
        self.sweep_calls += 1
        if self.sweep_calls <= self.fail_first:
            raise ServiceError("injected flake")
        return await super()._op_sweep(request)


class _FlakyOnce(_FlakyServer):
    """One injected failure — the single-retry path."""

    fail_first = 1


class _AlwaysFails(_FlakyServer):
    """Every sweep fails — forces the local-fallback path."""

    fail_first = 10**9


class _StalledServer(ServiceServer):
    """Accepts sweeps and never answers them (dead-but-connected peer)."""

    async def _op_sweep(self, request):
        await asyncio.sleep(3600)


# ----------------------------------------------------------------------
# sharded run_grid
# ----------------------------------------------------------------------
class TestShardedGrid:
    def test_two_workers_bitwise_identical_to_serial(self, tmp_path):
        serial = run_grid(_spec(), jobs=1)
        with _server_thread() as a, _server_thread() as b:
            sharded = run_grid(
                _spec(), workers=[a, b], cache_dir=str(tmp_path)
            )
        _assert_same_results(serial, sharded)
        assert not any(r.cached for r in sharded)
        # ...and the shard run's publishes replay in a plain CLI run.
        replay = run_grid(_spec(), jobs=1, cache_dir=str(tmp_path))
        assert all(r.cached for r in replay)
        _assert_same_results(serial, replay)

    def test_single_service_address_still_works(self):
        # `service=addr` is now sugar for `workers=[addr]`; the classic
        # path must keep its exact semantics.
        serial = run_grid(_spec(), jobs=1)
        with _server_thread() as address:
            served = run_grid(_spec(), service=address)
        _assert_same_results(serial, served)

    def test_dead_address_among_workers_is_survived(self):
        serial = run_grid(_spec(), jobs=1)
        with _server_thread() as alive:
            # Port 9 (discard) on loopback: connection refused, fast.
            sharded = run_grid(
                _spec(), workers=[alive, "tcp:127.0.0.1:9"]
            )
        _assert_same_results(serial, sharded)

    def test_all_workers_dead_falls_back_to_local(self):
        serial = run_grid(_spec(), jobs=1)
        with pytest.warns(RuntimeWarning, match="fall back to local"):
            sharded = run_grid(
                _spec(), workers=["tcp:127.0.0.1:9"]
            )
        _assert_same_results(serial, sharded)

    def test_flaky_server_point_is_retried(self):
        # One injected failure: the point is retried (same worker — the
        # server is healthy, the *point* failed) and the run completes
        # remotely, with no fallback warning.
        serial = run_grid(_spec(), jobs=1)
        with _server_thread(factory=_FlakyOnce) as address:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                served = run_grid(_spec(), workers=[address])
        _assert_same_results(serial, served)

    def test_persistent_server_failure_falls_back_locally(self):
        serial = run_grid(_spec(), jobs=1)
        with _server_thread(factory=_AlwaysFails) as address:
            with pytest.warns(
                RuntimeWarning, match="injected flake"
            ):
                served = run_grid(_spec(), workers=[address])
        _assert_same_results(serial, served)

    def test_stalled_worker_points_are_redispatched(self):
        # The straggler path: a worker that accepts requests and never
        # answers must not hang the sweep — its points time out and are
        # re-dispatched (to the healthy worker or the local fallback).
        serial = run_grid(_spec(hooked=False), jobs=1)
        with _server_thread(factory=_StalledServer) as stalled, \
                _server_thread() as healthy:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                served = run_grid(
                    _spec(hooked=False),
                    workers=[stalled, healthy],
                    request_timeout=0.5,
                )
        _assert_same_results(serial, served)


# ----------------------------------------------------------------------
# run_sharded unit level
# ----------------------------------------------------------------------
class TestRunSharded:
    def test_empty_addresses_leaves_everything(self):
        req = PointRequest(
            index=0, kind="spont_broadcast", n_replications=1, seed=1,
            constants=None, kwargs={}, use_batch=True,
            fingerprint="fp", descriptor={},
        )
        stats = run_sharded([req], [], on_sweep=lambda i, s: None)
        assert stats.leftover == [0]
        assert stats.delivered == 0

    def test_bus_recovery_skips_dispatch(self, tmp_path):
        # A point already on the bus (published by anyone) is delivered
        # without a working connection: only dead addresses are given.
        cache = ResultCache(tmp_path)
        cache.put("k0", ("payload", {}))
        req = PointRequest(
            index=0, kind="spont_broadcast", n_replications=1, seed=1,
            constants=None, kwargs={}, use_batch=True,
            fingerprint="fp", descriptor={}, key="k0",
        )
        got: dict = {}
        with _server_thread() as address:
            stats = run_sharded(
                [req], [address],
                on_sweep=lambda i, s: got.update({i: s}),
                store=cache,
            )
        assert got == {0: "payload"}
        assert stats.recovered == 1 and stats.leftover == []


# ----------------------------------------------------------------------
# real daemons, real SIGKILL
# ----------------------------------------------------------------------
def _spawn_daemon(cache_dir=None, lease_ttl=None):
    """Launch ``python -m repro.service`` and wait for its address."""
    cmd = [sys.executable, "-m", "repro.service", "--tcp", "127.0.0.1:0"]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    if lease_ttl is not None:
        cmd += ["--lease-ttl", str(lease_ttl)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on "), line
    return proc, line[len("serving on "):]


class TestDaemonKill:
    def test_sigkill_mid_sweep_loses_no_results(self, tmp_path):
        serial = run_grid(_spec(hooked=False), jobs=1)
        victim, victim_addr = _spawn_daemon(
            cache_dir=tmp_path, lease_ttl=1.0
        )
        survivor, survivor_addr = _spawn_daemon(
            cache_dir=tmp_path, lease_ttl=1.0
        )
        try:
            # SIGKILL the victim shortly into the sweep: in-flight
            # requests die with the socket; their points re-dispatch to
            # the survivor (the victim's leases expire within a ttl) or
            # to the local fallback.  Every result must still arrive.
            killer = threading.Timer(
                0.3, lambda: victim.kill()
            )
            killer.start()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                sharded = run_grid(
                    _spec(hooked=False),
                    workers=[victim_addr, survivor_addr],
                    cache_dir=str(tmp_path),
                    request_timeout=15.0,
                )
            killer.cancel()
        finally:
            victim.kill()
            if survivor.poll() is None:
                survivor.send_signal(signal.SIGTERM)
            victim.wait(10)
            survivor.wait(10)
        assert all(r is not None for r in sharded)
        _assert_same_results(serial, sharded)
        # Whatever the kill timing, no lease survives the run long-term
        # accounting: the bus holds every point's entry.
        replay = run_grid(
            _spec(hooked=False), jobs=1, cache_dir=str(tmp_path)
        )
        assert all(r.cached for r in replay)
        _assert_same_results(serial, replay)
