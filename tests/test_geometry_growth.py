"""Tests for covering numbers and growth-dimension estimation."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.growth import (
    covering_number,
    euclidean_covering_bound,
    greedy_cover,
    growth_dimension_estimate,
)
from repro.geometry.metric import pairwise_distances


def _grid_points(side):
    ys, xs = np.mgrid[0:side, 0:side]
    return np.column_stack([xs.ravel(), ys.ravel()]).astype(float)


class TestGreedyCover:
    def test_single_point(self):
        d = pairwise_distances(np.array([[0.0, 0.0]]))
        assert greedy_cover(d, 1.0) == [0]

    def test_everything_within_radius_needs_one_center(self):
        d = pairwise_distances(np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]]))
        assert len(greedy_cover(d, 1.0)) == 1

    def test_far_points_need_own_centers(self):
        d = pairwise_distances(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert len(greedy_cover(d, 1.0)) == 2

    def test_cover_is_actually_covering(self):
        pts = np.random.default_rng(0).uniform(0, 5, size=(40, 2))
        d = pairwise_distances(pts)
        centers = greedy_cover(d, 1.0)
        assert np.all(d[:, centers].min(axis=1) <= 1.0)

    def test_deterministic(self):
        pts = np.random.default_rng(1).uniform(0, 5, size=(30, 2))
        d = pairwise_distances(pts)
        assert greedy_cover(d, 0.8) == greedy_cover(d, 0.8)

    def test_rejects_nonpositive_radius(self):
        d = pairwise_distances(np.array([[0.0, 0.0]]))
        with pytest.raises(GeometryError):
            greedy_cover(d, 0.0)

    def test_smaller_radius_needs_more_centers(self):
        pts = _grid_points(6)
        d = pairwise_distances(pts)
        assert len(greedy_cover(d, 0.5)) >= len(greedy_cover(d, 2.0))


class TestCoveringNumber:
    def test_empty_ball(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        d = pairwise_distances(pts)
        # Ball of radius 1 around point 0 contains only point 0.
        assert covering_number(d, 0, 1.0, 0.5) == 1

    def test_grid_ball_covering_grows_with_ball(self):
        d = pairwise_distances(_grid_points(9))
        center = 40  # middle of the grid
        small = covering_number(d, center, 1.0, 0.5)
        large = covering_number(d, center, 4.0, 0.5)
        assert large > small

    def test_cover_radius_at_least_ball_needs_one(self):
        d = pairwise_distances(_grid_points(5))
        assert covering_number(d, 12, 2.0, 10.0) == 1


class TestGrowthDimensionEstimate:
    def test_plane_estimates_near_two(self):
        pts = np.random.default_rng(5).uniform(0, 12, size=(600, 2))
        d = pairwise_distances(pts)
        est = growth_dimension_estimate(d, base_radius=0.5)
        assert 1.2 <= est <= 2.8

    def test_line_estimates_near_one(self):
        pts = np.linspace(0, 50, 400)
        d = pairwise_distances(pts)
        est = growth_dimension_estimate(d, base_radius=0.5)
        assert 0.5 <= est <= 1.6

    def test_degenerate_single_point(self):
        d = pairwise_distances(np.array([[0.0, 0.0]]))
        assert growth_dimension_estimate(d) == 0.0

    def test_reproducible_with_default_rng(self):
        pts = np.random.default_rng(6).uniform(0, 8, size=(200, 2))
        d = pairwise_distances(pts)
        assert growth_dimension_estimate(d) == growth_dimension_estimate(d)


class TestDeploymentGrowthCertification:
    """Certify the E13 scenario families' growth dimensions.

    The estimator is biased low on finite samples (boundary balls are
    only partially full — see its docstring), so the assertions combine
    generous absolute windows with ordering checks against a matched
    uniform square: the *relative* geometry is what the experiments rely
    on.
    """

    @staticmethod
    def _square_estimate():
        from repro.deploy import uniform_square

        square = uniform_square(
            n=400, side=5.5, rng=np.random.default_rng(11)
        )
        return growth_dimension_estimate(
            square.distances, base_radius=0.3, scales=(2, 3, 4)
        )

    def test_uniform_cube_estimates_near_three(self):
        from repro.deploy import uniform_cube

        cube = uniform_cube(n=400, side=3.0, rng=np.random.default_rng(11))
        est = growth_dimension_estimate(
            cube.distances, base_radius=0.3, scales=(2, 3, 4)
        )
        assert 2.2 <= est <= 3.5
        assert est > self._square_estimate() + 0.5

    def test_fractal_clusters_match_tunable_target(self):
        from repro.deploy import fractal_clusters

        for target, window in ((1.0, 0.35), (1.5, 0.45)):
            net = fractal_clusters(
                4, 4, np.random.default_rng(13), dimension=target
            )
            est = growth_dimension_estimate(
                net.distances, base_radius=0.02, scales=(2, 4, 8)
            )
            assert abs(est - target) <= window, (target, est)

    def test_fractal_estimates_monotone_in_target(self):
        from repro.deploy import fractal_clusters

        estimates = [
            growth_dimension_estimate(
                fractal_clusters(
                    4, 4, np.random.default_rng(13), dimension=target
                ).distances,
                base_radius=0.02,
                scales=(2, 4, 8),
            )
            for target in (1.0, 1.5, 2.0)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_corridor_estimates_between_line_and_plane(self):
        from repro.deploy import corridor

        net = corridor(80, 10.0, 0.35, np.random.default_rng(17))
        est = growth_dimension_estimate(
            net.distances, base_radius=0.5, scales=(2, 3, 4)
        )
        assert 0.6 <= est <= 2.0
        assert est < self._square_estimate()


class TestEuclideanCoveringBound:
    def test_unit_scale(self):
        assert euclidean_covering_bound(1.0, 2.0) == 1

    def test_plane_scaling(self):
        assert euclidean_covering_bound(3.0, 2.0) == 9

    def test_ceil_applied_to_scale(self):
        assert euclidean_covering_bound(2.5, 2.0) == 9

    def test_rejects_bad_input(self):
        with pytest.raises(GeometryError):
            euclidean_covering_bound(0.0, 2.0)
        with pytest.raises(GeometryError):
            euclidean_covering_bound(1.0, -1.0)
