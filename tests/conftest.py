"""Shared fixtures for the test suite.

Expensive artifacts (networks, colorings) are module- or session-scoped;
randomness always flows through seeded generators so failures reproduce.
"""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import grid, uniform_chain, uniform_square
from repro.network.network import Network
from repro.sinr.params import SINRParameters


@pytest.fixture
def rng():
    """Fresh seeded generator per test."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def default_params():
    return SINRParameters.default()


@pytest.fixture(scope="session")
def practical_constants():
    return ProtocolConstants.practical()


@pytest.fixture(scope="session")
def small_square():
    """A connected 32-station uniform square (session-scoped, seed 7)."""
    return uniform_square(n=32, side=2.0, rng=np.random.default_rng(7))


@pytest.fixture(scope="session")
def small_chain():
    """A 12-station chain with 0.5 gaps."""
    return uniform_chain(12, gap=0.5)


@pytest.fixture(scope="session")
def small_grid():
    """A 3x6 grid with 0.5 spacing."""
    return grid(3, 6, spacing=0.5)


@pytest.fixture
def two_station_network():
    """Two stations 0.5 apart — the minimal communicating network."""
    return Network(np.array([[0.0, 0.0], [0.5, 0.0]]))


@pytest.fixture
def three_station_line():
    """Three stations in a row, 0.6 apart (a 2-hop path graph)."""
    return Network(np.array([[0.0, 0.0], [0.6, 0.0], [1.2, 0.0]]))
