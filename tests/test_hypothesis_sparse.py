"""Hypothesis properties of the sparse SINR backend (DESIGN.md §2.2).

Two contracts, quantified over random deployments, transmitter sets and
cutoffs:

* **covered ⇒ bitwise.**  When the cutoff covers the deployment
  (per-axis extent at most the cutoff, so the far set is empty) the
  sparse batched resolver equals the dense batched resolver bit for
  bit — same heard senders everywhere, for every batch row.
* **truncated ⇒ certified.**  With a live far field, sparse receptions
  are a subset of dense receptions (conservative acceptance), every
  discrepancy is a *rejection* whose dense SINR clears ``beta`` by less
  than the certified band explains, and the band genuinely brackets the
  true far-field interference.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.network import Network
from repro.sinr.params import SINRParameters
from repro.sinr.reception import NO_SENDER, resolve_reception_batch

PARAMS = SINRParameters.default()


def _coords(seed: int, n: int, side: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    while True:
        coords = rng.uniform(0.0, side, size=(n, 2))
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        np.fill_diagonal(dist, np.inf)
        if dist.min() > 1e-6:
            return coords


def _tx(seed: int, B: int, n: int, prob: float) -> np.ndarray:
    return np.random.default_rng(seed).random((B, n)) < prob


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 40),
    B=st.integers(1, 6),
    prob=st.floats(0.05, 0.9),
)
def test_covered_cutoff_bitwise_equal(seed, n, B, prob):
    side = 1.8
    coords = _coords(seed, n, side)
    dense = Network(coords, backend="dense")
    sparse = Network(coords, backend="sparse", cutoff=2.0)
    assert sparse.sparse_backend.far_empty
    tx = _tx(seed ^ 0xA5A5, B, n, prob)
    heard_dense = resolve_reception_batch(
        dense.gain_operator, tx, PARAMS.noise, PARAMS.beta
    )
    heard_sparse = resolve_reception_batch(
        sparse.gain_operator, tx, PARAMS.noise, PARAMS.beta
    )
    assert np.array_equal(heard_dense, heard_sparse)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(20, 80),
    B=st.integers(1, 4),
    prob=st.floats(0.02, 0.3),
    cutoff=st.sampled_from([1.0, 1.5, 2.0]),
)
def test_truncated_cutoff_certified_conservative(seed, n, B, prob, cutoff):
    side = 7.0
    coords = _coords(seed, n, side)
    dense = Network(coords, backend="dense")
    sparse = Network(coords, backend="sparse", cutoff=cutoff)
    backend = sparse.sparse_backend
    tx = _tx(seed ^ 0x5A5A, B, n, prob)
    noise, beta = PARAMS.noise, PARAMS.beta
    heard_dense = resolve_reception_batch(
        dense.gain_operator, tx, noise, beta
    )
    heard_sparse = resolve_reception_batch(
        sparse.gain_operator, tx, noise, beta
    )
    # conservative acceptance: sparse receptions are dense receptions
    assert np.all(
        (heard_sparse == NO_SENDER) | (heard_sparse == heard_dense)
    )
    gains = dense.gains
    far, band = backend.far_band(tx)
    for b in range(B):
        transmitters = np.flatnonzero(tx[b])
        if transmitters.size == 0:
            continue
        total_true = gains[transmitters].sum(axis=0)
        near_total = backend._near_scan(transmitters)[0]
        far_true = total_true - near_total
        # the certificate: the band brackets the true far field
        assert np.all(far[b] + band[b] >= far_true - 1e-9)
        assert np.all(far[b] - band[b] <= far_true + 1e-9)
        # every discrepancy is explained by the band: the dense SINR
        # clears beta, but not once the certified band is charged
        missed = (heard_sparse[b] == NO_SENDER) & (
            heard_dense[b] != NO_SENDER
        )
        for u in np.flatnonzero(missed):
            sender = heard_dense[b, u]
            signal = gains[sender, u]
            denom_true = noise + total_true[u] - signal
            denom_cons = (
                noise + near_total[u] - signal + far[b, u] + band[b, u]
            )
            assert signal / denom_true >= beta  # dense really heard
            assert signal / denom_cons < beta * (1 + 1e-12)
