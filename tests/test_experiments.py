"""Tests for the experiment harness (registry, base, reports).

The quick-scale experiments themselves run in the benchmark suite; here
we validate the harness plumbing plus the two fastest experiments end to
end (their metrics encode paper claims).
"""

import pytest

from repro.analysis.tables import render_table
from repro.errors import AnalysisError
from repro.experiments.base import (
    ExperimentReport,
    check_scale,
    fmt,
    trial_rngs,
)
from repro.experiments.registry import get_experiment, list_experiments


class TestRegistry:
    def test_sixteen_experiments(self):
        assert len(list_experiments()) == 16
        assert list_experiments()[0] == "E01"
        assert list_experiments()[-1] == "E16"

    def test_lookup_case_insensitive(self):
        assert get_experiment("e05") is get_experiment("E05")

    def test_unknown_id(self):
        with pytest.raises(AnalysisError):
            get_experiment("E99")


class TestBase:
    def test_check_scale(self):
        assert check_scale("quick") == "quick"
        with pytest.raises(AnalysisError):
            check_scale("huge")

    def test_trial_rngs_independent(self):
        a, b = list(trial_rngs(2, seed=1))
        assert a.random() != b.random()

    def test_trial_rngs_reproducible(self):
        a1 = [g.random() for g in trial_rngs(3, seed=5)]
        a2 = [g.random() for g in trial_rngs(3, seed=5)]
        assert a1 == a2

    def test_fmt(self):
        assert fmt(3.14159) == "3.1"
        assert fmt(3.14159, 3) == "3.142"

    def test_report_render(self):
        report = ExperimentReport(
            exp_id="EXX",
            title="T",
            claim="C",
            headers=["a"],
            rows=[[1]],
            metrics={"m": 2},
            notes=["n"],
        )
        text = report.render()
        assert "EXX" in text and "claim: C" in text
        assert "m=2" in text and "note: n" in text


class TestQuickExperiments:
    """Run the two cheapest experiments fully; assert their paper claims."""

    def test_e01_coloring_polylog(self):
        report = get_experiment("E01")(scale="quick")
        assert report.metrics["log_poly_r2"] > 0.999
        # Sub-polynomial growth: far below linear.
        assert report.metrics["growth_exponent"] < 0.8
        assert len(report.rows) == 5

    def test_e12_geometry_independence(self):
        report = get_experiment("E12")(scale="quick")
        # Same-graph family varies far less than different graphs.
        assert report.metrics["family_spread"] < 0.5
        assert (
            report.metrics["family_spread"]
            < report.metrics["with_controls_spread"]
        )

    def test_reports_render_as_tables(self):
        report = get_experiment("E01")(scale="quick")
        text = render_table(report.headers, report.rows)
        assert text.count("\n") >= len(report.rows)
