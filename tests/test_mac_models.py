"""Cross-MAC conformance suite (models, sessions, kernels, E16).

The contracts pinned here, per DESIGN.md §11:

* **SlottedAloha is the regression anchor** — every protocol kind run
  under the default model is bitwise identical to a bare run.
* **CSMA invariants** — no station transmits while a sense-neighbour
  holds a strictly earlier backoff sub-slot (it would have heard the
  carrier); hidden pairs are never serialized and can still collide.
* **TDMA invariants** — the slot schedule is a proper coloring of the
  interference graph: no two interference-adjacent stations share a
  slot.
* **Batched == sequential** — a batched sweep under any MAC equals a
  sequential loop of single-instance runs with fresh hooks (round-keyed
  arbitration makes this exact, not statistical).
* **Cache-key separation** — ``mac=`` kwargs land in grid point keys
  through the model's ``identity()``; no MAC can replay a bare sweep's
  cached results, or another MAC's.

Property quantification lives in ``tests/test_hypothesis_mac.py``; the
E16 experiment rides here end to end (its metrics are the acceptance
bar of the hidden-node story).
"""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.errors import ProtocolError
from repro.fastsim import run_sweep, spawn_rngs
from repro.fastsim.broadcast import fast_spont_broadcast
from repro.fastsim.cache import fingerprint_bytes, point_key
from repro.fastsim.coloring import fast_coloring
from repro.mac import (
    CSMA,
    MacModel,
    RateTable,
    SlottedAloha,
    TdmaFromColoring,
    derive_sense_range,
    mac_hook,
    pairs_within,
    round_rng,
)
from repro.network.network import Network
from repro.sim.wakeup import WakeupSchedule
from repro.sinr.channel import LogNormalShadowing
from repro.sinr.params import SINRParameters


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


def _net(n=24, side=1.8, seed=3, **kwargs):
    rng = np.random.default_rng(seed)
    return Network(rng.uniform(0, side, size=(n, 2)), **kwargs)


def _hidden_triple():
    """A-R-B: senders in comm range of R, out of sense range of each
    other (the E16 hidden cluster, sense range 1.0 < 1.30)."""
    return Network(np.array([[0.0, 0.0], [0.65, 0.0], [1.30, 0.0]]))


class TestModels:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            SlottedAloha(0.0)
        with pytest.raises(ProtocolError):
            SlottedAloha(1.5)
        with pytest.raises(ProtocolError):
            CSMA(sense_range=-1.0)
        with pytest.raises(ProtocolError):
            CSMA(cw=0)
        with pytest.raises(ProtocolError):
            CSMA(persist=0.0)
        with pytest.raises(ProtocolError):
            TdmaFromColoring(interference_scale=0.0)

    def test_identity_separates_models_and_knobs(self):
        models = [
            SlottedAloha(),
            SlottedAloha(0.5),
            SlottedAloha(0.5, seed=1),
            CSMA(),
            CSMA(seed=1),
            CSMA(cw=16),
            CSMA(persist=0.5),
            CSMA(sense_range=0.9),
            CSMA(sense_threshold=2.0),
            TdmaFromColoring(),
            TdmaFromColoring(seed=1),
            TdmaFromColoring(interference_scale=3.0),
        ]
        assert len({m.identity() for m in models}) == len(models)
        assert len({m.fingerprint() for m in models}) == len(models)

    def test_equality_and_repr(self):
        assert CSMA(cw=16, seed=2) == CSMA(cw=16, seed=2)
        assert CSMA(cw=16, seed=2) != CSMA(cw=16, seed=3)
        assert "csma" in repr(CSMA())
        assert "slotted-aloha" in repr(SlottedAloha())
        assert isinstance(TdmaFromColoring(), MacModel)

    def test_hashable_on_identity(self):
        pool = {
            CSMA(cw=16, seed=2), CSMA(cw=16, seed=2), CSMA(cw=16, seed=3),
            SlottedAloha(), TdmaFromColoring(),
            RateTable(), RateTable(),
        }
        assert len(pool) == 5
        assert hash(CSMA(cw=16, seed=2)) == hash(CSMA(cw=16, seed=2))

    def test_fingerprint_bytes_uses_model_identity(self):
        a = fingerprint_bytes(CSMA(cw=16, seed=4))
        b = fingerprint_bytes(CSMA(cw=16, seed=4))
        c = fingerprint_bytes(CSMA(cw=16, seed=5))
        assert a == b != c

    def test_round_rng_is_pure_function_of_round(self):
        assert round_rng(3, 7).random() == round_rng(3, 7).random()
        assert round_rng(3, 7).random() != round_rng(3, 8).random()
        assert round_rng(3, 7).random() != round_rng(4, 7).random()


class TestSenseRange:
    def test_derivation_matches_closed_form(self):
        # P d^-alpha = N  =>  d = (P/N)^(1/alpha) = beta^(1/alpha) * r.
        net = _net()
        p = net.params
        expected = (p.power / p.noise) ** (1.0 / p.alpha)
        assert derive_sense_range(net) == pytest.approx(expected, abs=1e-9)

    def test_threshold_override(self):
        net = _net()
        p = net.params
        expected = (p.power / (2.0 * p.noise)) ** (1.0 / p.alpha)
        assert derive_sense_range(net, 2.0 * p.noise) == pytest.approx(
            expected, abs=1e-9
        )

    def test_wider_than_comm_radius(self):
        net = _net()
        assert derive_sense_range(net) > net.params.comm_radius

    def test_non_radial_channel_requires_explicit_range(self):
        net = _net(channel=LogNormalShadowing(sigma_db=2.0, seed=0))
        with pytest.raises(ProtocolError):
            derive_sense_range(net)
        with pytest.raises(ProtocolError):
            CSMA().session(net)
        # An explicit range sidesteps the derivation entirely.
        session = CSMA(sense_range=1.0).session(net)
        assert session.sense_range == 1.0

    def test_bad_threshold(self):
        with pytest.raises(ProtocolError):
            derive_sense_range(_net(), 0.0)

    def test_pairs_within_matches_distances(self):
        net = _net()
        ii, jj = pairs_within(net, 0.8)
        dense = set(
            zip(*np.nonzero(np.triu(net.distances <= 0.8, k=1)))
        )
        assert set(zip(ii.tolist(), jj.tolist())) == dense
        with pytest.raises(ProtocolError):
            pairs_within(net, -0.1)

    @pytest.mark.parametrize("radius", [0.8, 3.0])
    def test_pairs_within_sparse_matches_dense(self, radius):
        # radius 0.8 <= cutoff delegates to the CSR backend; radius 3.0
        # exceeds it and takes the chunked brute-force fallback.
        rng = np.random.default_rng(11)
        coords = rng.uniform(0, 2.5, size=(48, 2))
        dense = Network(coords)
        sparse = Network(coords, backend="sparse", cutoff=1.0)
        expected = set(
            zip(*np.nonzero(np.triu(dense.distances <= radius, k=1)))
        )
        ii, jj = pairs_within(sparse, radius)
        assert set(zip(ii.tolist(), jj.tolist())) == expected

    def test_unbounded_sense_range_rejected(self):
        # A threshold the power-law gain never undercuts within the
        # doubling probe: the range would be unbounded.
        with pytest.raises(ProtocolError, match="unbounded"):
            derive_sense_range(_net(), 1e-300)


class TestAloha:
    def test_default_is_identity_filter(self):
        net = _net()
        session = SlottedAloha().session(net)
        intents = np.random.default_rng(0).random((2, net.size)) < 0.5
        assert np.array_equal(session.transmit_mask(0, intents, net), intents)

    def test_persistence_thins_and_replays(self):
        net = _net()
        model = SlottedAloha(0.4, seed=9)
        intents = np.ones((1, net.size), dtype=bool)
        a = model.session(net).transmit_mask(5, intents, net)
        b = model.session(net).transmit_mask(5, intents, net)
        assert np.array_equal(a, b)
        assert 0 < a.sum() < net.size
        # A different round draws a different gate.
        c = model.session(net).transmit_mask(6, intents, net)
        assert not np.array_equal(a, c)


class TestCsma:
    def test_never_transmit_against_earlier_sense_neighbour(self):
        net = _net(n=40, side=1.6, seed=5)
        model = CSMA(seed=2)
        session = model.session(net)
        intents = np.ones((1, net.size), dtype=bool)
        for round_no in range(6):
            tx = session.transmit_mask(round_no, intents, net)[0]
            backoff = session.round_backoff(round_no)
            for i, j in zip(
                session.sense_i.tolist(), session.sense_j.tolist()
            ):
                if tx[i] and tx[j]:
                    assert backoff[i] == backoff[j]
                if tx[i] and not tx[j]:
                    assert backoff[i] <= backoff[j]

    def test_hidden_pair_always_transmits_and_collides(self):
        from repro.sinr.reception import NO_SENDER, resolve_reception

        net = _hidden_triple()
        session = CSMA(seed=1).session(net)
        # A and B are out of each other's sense range: arbitration
        # never serializes them.
        intents = np.array([[True, False, True]])
        for round_no in range(8):
            tx = session.transmit_mask(round_no, intents, net)
            assert np.array_equal(tx, intents)
        heard = resolve_reception(
            net.gain_operator, np.array([0, 2]), net.params.noise,
            net.params.beta,
        )
        assert heard[1] == NO_SENDER  # equidistant senders: collision

    def test_sensed_pair_is_serialized(self):
        # Both senders inside sense range: at most one transmits unless
        # their backoffs tie.
        net = Network(np.array([[0.0, 0.0], [0.55, 0.0], [0.9, 0.0]]))
        session = CSMA(seed=3).session(net)
        intents = np.array([[True, False, True]])
        ties = both = 0
        for round_no in range(32):
            tx = session.transmit_mask(round_no, intents, net)[0]
            backoff = session.round_backoff(round_no)
            if tx[0] and tx[2]:
                both += 1
                assert backoff[0] == backoff[2]
            ties += int(backoff[0] == backoff[2])
        assert both == ties  # simultaneous starts are exactly the ties

    def test_transmitters_subset_of_intents(self):
        net = _net(n=30, seed=11)
        session = CSMA(persist=0.7, seed=4).session(net)
        intents = np.random.default_rng(1).random((3, net.size)) < 0.6
        tx = session.transmit_mask(2, intents, net)
        assert not np.any(tx & ~intents)


class TestTdma:
    def test_schedule_is_proper_interference_coloring(self):
        net = _net(n=36, side=1.5, seed=7)
        session = TdmaFromColoring(seed=2).session(net)
        ii, jj = session.interference_pairs
        assert ii.size > 0
        assert np.all(session.slots[ii] != session.slots[jj])
        assert session.frame == int(session.slots.max()) + 1
        assert np.all(session.slots >= 0)

    def test_hidden_pair_never_shares_a_slot(self):
        net = _hidden_triple()
        session = TdmaFromColoring(seed=0).session(net)
        # A and B cannot sense each other yet are interference-graph
        # neighbours (1.30 <= 2 * 0.7): the schedule separates them.
        assert session.slots[0] != session.slots[2]

    def test_transmit_only_in_own_slot(self):
        net = _net(n=20, seed=9)
        session = TdmaFromColoring(seed=1).session(net)
        intents = np.ones((2, net.size), dtype=bool)
        seen = np.zeros(net.size, dtype=bool)
        for round_no in range(session.frame):
            tx = session.transmit_mask(round_no, intents, net)
            expect = session.slots == (round_no % session.frame)
            assert np.array_equal(tx[0], expect)
            assert np.array_equal(tx[1], expect)
            seen |= tx[0]
        assert seen.all()  # every station owns a slot in each frame

    def test_schedule_reproducible_for_fixed_seed(self):
        net = _net(n=28, seed=13)
        a = TdmaFromColoring(seed=5).session(net)
        b = TdmaFromColoring(seed=5).session(net)
        assert np.array_equal(a.slots, b.slots)


class TestRateTable:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            RateTable(thresholds=(), rates=())
        with pytest.raises(ProtocolError):
            RateTable(thresholds=(2.0, 2.0), rates=(2, 3))
        with pytest.raises(ProtocolError):
            RateTable(thresholds=(4.0, 2.0), rates=(2, 3))
        with pytest.raises(ProtocolError):
            RateTable(thresholds=(2.0,), rates=(0,))
        with pytest.raises(ProtocolError):
            RateTable(thresholds=(2.0, 4.0), rates=(2,))

    def test_rate_lookup(self):
        table = RateTable(thresholds=(2.0, 4.0, 8.0), rates=(2, 3, 4))
        assert table.rate_for(0.5) == 1
        assert table.rate_for(1.99) == 1
        assert table.rate_for(2.0) == 2  # thresholds are inclusive
        assert table.rate_for(5.0) == 3
        assert table.rate_for(100.0) == 4

    def test_identity_and_equality(self):
        a = RateTable()
        b = RateTable()
        c = RateTable(thresholds=(3.0,), rates=(2,))
        assert a == b and a != c
        assert a.fingerprint() == b.fingerprint() != c.fingerprint()
        assert fingerprint_bytes(a) != fingerprint_bytes(c)
        assert "RateTable" in repr(a)


class TestAlohaAnchor:
    """Default SlottedAloha is bitwise invisible on every protocol kind."""

    B = 2
    SEED = 17

    def _pair(self, kind, network, constants, **kwargs):
        bare = run_sweep(
            kind, network, self.B, self.SEED, constants, **kwargs
        )
        anchored = run_sweep(
            kind, network, self.B, self.SEED, constants,
            mac=SlottedAloha(), **kwargs,
        )
        assert np.array_equal(bare.rounds, anchored.rounds, equal_nan=True)
        assert np.array_equal(bare.success, anchored.success)

    def test_broadcast_kinds(self, small_square, constants):
        for kind in (
            "spont_broadcast", "nospont_broadcast", "uniform_broadcast",
            "decay_broadcast", "local_broadcast",
        ):
            self._pair(kind, small_square, constants, source=0)

    def test_coloring(self, small_square, constants):
        self._pair("coloring", small_square, constants)

    def test_adhoc_wakeup(self, small_chain, constants):
        schedule = WakeupSchedule.staggered(
            small_chain.size, spread=30,
            rng=np.random.default_rng(0), fraction=0.5,
        )
        self._pair("adhoc_wakeup", small_chain, constants,
                   schedule=schedule)

    def test_colored_wakeup(self, small_chain, constants):
        colors = fast_coloring(
            small_chain, constants, np.random.default_rng(5)
        ).colors
        self._pair(
            "colored_wakeup", small_chain, constants,
            initiators=[0], base_colors=np.nan_to_num(colors),
        )

    @pytest.mark.slow
    def test_consensus_and_leader(self, small_chain, constants):
        self._pair("consensus", small_chain, constants, x_max=3)
        self._pair("leader_election", small_chain, constants)


class TestBatchedEqualsSequential:
    """Batched kernels under a real MAC equal a sequential loop with a
    fresh hook per replication (round-keyed arbitration makes the MAC
    stream independent of batch composition)."""

    B = 3
    SEED = 23

    @pytest.mark.parametrize("model", [
        SlottedAloha(0.8, seed=1),
        CSMA(persist=0.9, seed=1),
        TdmaFromColoring(seed=1),
    ], ids=["aloha", "csma", "tdma"])
    def test_spont_broadcast(self, small_square, constants, model):
        sweep = run_sweep(
            "spont_broadcast", small_square, self.B, self.SEED,
            constants, source=0, mac=model,
        )
        for out, rng in zip(sweep.outcomes, spawn_rngs(self.B, self.SEED)):
            single = fast_spont_broadcast(
                small_square, 0, constants, rng, mac_hook=mac_hook(model)
            )
            assert np.array_equal(
                out.informed_round, single.informed_round
            )
            assert out.total_rounds == single.total_rounds
            assert out.success == single.success

    def test_mac_sweep_reproducible(self, small_square, constants):
        a = run_sweep(
            "spont_broadcast", small_square, 3, seed=5, source=0,
            mac=CSMA(persist=0.9, seed=7),
        )
        b = run_sweep(
            "spont_broadcast", small_square, 3, seed=5, source=0,
            mac=CSMA(persist=0.9, seed=7),
        )
        assert np.array_equal(a.rounds, b.rounds, equal_nan=True)


class TestHookContract:
    def test_hook_intersects_with_intents(self):
        # Even a session returning all-ones may only remove, never add.
        net = _net(n=8, seed=1)

        class Loud(SlottedAloha):
            def session(self, network):
                model = self

                class S:
                    def transmit_mask(self, round_no, intents, network):
                        return np.ones_like(intents)

                return S()

        hook = mac_hook(Loud())
        intents = np.zeros((1, net.size), dtype=bool)
        intents[0, 2] = True
        assert np.array_equal(hook(0, intents, net), intents)

    def test_hook_owns_one_session(self):
        net = _net(n=10, seed=2)
        model = TdmaFromColoring(seed=4)
        hook = mac_hook(model)
        intents = np.ones((1, net.size), dtype=bool)
        first = hook(0, intents, net)
        # Re-passing a different network must not rebuild the schedule.
        other = _net(n=10, seed=3)
        again = hook(0, intents, other)
        assert np.array_equal(first, again)


class TestSweepIntegration:
    def test_mac_requires_batched_kernel(self, small_chain):
        with pytest.raises(ProtocolError):
            run_sweep(
                "leader_election", small_chain, 1, seed=1,
                mac=CSMA(), use_batch=False,
            )

    def test_cache_keys_split_bare_and_models(self, small_square):
        def key(kwargs):
            return point_key(
                kind="spont_broadcast",
                network_fingerprint=small_square.fingerprint(),
                constants=None,
                seed=1,
                n_replications=2,
                kwargs=kwargs,
            )

        keys = {
            key({"source": 0}),
            key({"source": 0, "mac": SlottedAloha(0.5, seed=1)}),
            key({"source": 0, "mac": SlottedAloha(0.5, seed=2)}),
            key({"source": 0, "mac": CSMA(seed=1)}),
            key({"source": 0, "mac": TdmaFromColoring(seed=1)}),
        }
        assert len(keys) == 5


class TestE16:
    def test_registered(self):
        from repro.experiments.registry import list_experiments

        assert "E16" in list_experiments()

    def test_quick_metrics_hold(self, tmp_path):
        from repro.experiments.registry import get_experiment
        from repro.fastsim.grid import GridOptions, set_default_grid_options

        try:
            set_default_grid_options(
                GridOptions(jobs=1, cache_dir=str(tmp_path))
            )
            report = get_experiment("E16")(scale="quick")
        finally:
            set_default_grid_options(GridOptions())
        # The asymmetry: hidden flows collide an order of magnitude more
        # than sensed ones under CSMA.
        assert report.metrics["csma_asymmetry"] > 5.0
        # The control: without sensing the sensed cluster collides too.
        assert (
            report.metrics["aloha_sensed_collisions"]
            > 4 * report.metrics["csma_sensed_collisions"]
        )
        # The paper's answer: interference-graph TDMA is conflict-free
        # and beats CSMA exactly where sensing is blind.
        assert report.metrics["tdma_collision_free"] is True
        assert report.metrics["tdma_beats_csma_hidden"] is True
        assert report.metrics["tdma_jain"] == pytest.approx(1.0)
        assert report.metrics["all_conserved"] is True

    def test_quick_jobs_identity_and_cache_replay(self, tmp_path):
        from repro.experiments.registry import get_experiment
        from repro.fastsim.grid import (
            GridOptions,
            last_grid_stats,
            set_default_grid_options,
        )

        run = get_experiment("E16")
        try:
            set_default_grid_options(
                GridOptions(jobs=1, cache_dir=str(tmp_path))
            )
            serial = run(scale="quick", seed=91)
            set_default_grid_options(
                GridOptions(jobs=2, cache_dir=str(tmp_path))
            )
            replayed = run(scale="quick", seed=91)
            stats = last_grid_stats()
            assert stats["cached"] == stats["points"] > 0
            set_default_grid_options(GridOptions(jobs=2, cache_dir=None))
            parallel = run(scale="quick", seed=91)
        finally:
            set_default_grid_options(GridOptions())
        assert serial.metrics == replayed.metrics == parallel.metrics
        assert serial.rows == parallel.rows
