"""Cross-model conformance suite for the channel models.

Every :class:`~repro.sinr.channel.ChannelModel` must honor the DESIGN.md
§2.1 contract — symmetric shape, zero diagonal, strictly positive
off-diagonal gains, a deterministic output per instance, and an
``identity()`` that separates any two models whose gains can differ.
The suite runs the same assertions over the whole battery so a new model
is conformance-tested by adding one entry to ``MODELS``.
"""

import numpy as np
import pytest

from repro.errors import GeometryError, SimulationError
from repro.geometry.metric import pairwise_distances
from repro.network.network import Network
from repro.sinr.channel import (
    ChannelModel,
    DualSlope,
    LogNormalShadowing,
    ObstacleMask,
    UniformPower,
    default_channel,
    rectangle,
)
from repro.sinr.gain import gain_matrix
from repro.sinr.params import SINRParameters

PARAMS = SINRParameters.default()

WALL = rectangle(0.9, 0.0, 1.1, 1.4)

MODELS = [
    UniformPower(),
    LogNormalShadowing(sigma_db=4.0, seed=7),
    LogNormalShadowing(sigma_db=0.0, seed=7),
    DualSlope(breakpoint=1.0),
    DualSlope(breakpoint=0.5, alpha_far=5.0),
    ObstacleMask([WALL], attenuation_db=12.0),
    ObstacleMask([WALL], attenuation_db=12.0,
                 base=LogNormalShadowing(2.0, seed=1)),
]


@pytest.fixture(scope="module")
def deployment():
    """Coordinates straddling the WALL obstacle, with their distances."""
    coords = np.random.default_rng(3).uniform(0.0, 2.0, size=(24, 2))
    return coords, pairwise_distances(coords)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: repr(m))
class TestConformance:
    def test_shape_and_diagonal(self, model, deployment):
        coords, dist = deployment
        gain = model.gain(dist, coords, PARAMS)
        assert gain.shape == dist.shape
        assert np.all(np.diag(gain) == 0.0)

    def test_strictly_positive_off_diagonal(self, model, deployment):
        coords, dist = deployment
        gain = model.gain(dist, coords, PARAMS)
        off = gain[~np.eye(gain.shape[0], dtype=bool)]
        assert np.all(off > 0.0)

    def test_symmetric(self, model, deployment):
        coords, dist = deployment
        gain = model.gain(dist, coords, PARAMS)
        assert np.array_equal(gain, gain.T)

    def test_deterministic_per_instance(self, model, deployment):
        coords, dist = deployment
        assert np.array_equal(
            model.gain(dist, coords, PARAMS),
            model.gain(dist, coords, PARAMS),
        )

    def test_identity_is_primitive_and_stable(self, model, deployment):
        ident = model.identity()
        assert isinstance(ident, tuple)
        assert ident == model.identity()
        hash(ident)  # hashable all the way down

    def test_network_routes_gains_through_model(self, model, deployment):
        coords, dist = deployment
        net = Network(coords, channel=model)
        assert np.array_equal(net.gains, model.gain(dist, coords, PARAMS))


class TestIdentitySeparation:
    def test_all_models_distinct(self):
        idents = [m.identity() for m in MODELS]
        assert len(set(idents)) == len(idents)

    def test_equal_configuration_equal_identity(self):
        assert LogNormalShadowing(4.0, seed=7) == LogNormalShadowing(
            4.0, seed=7
        )
        assert ObstacleMask([WALL], 12.0).identity() == ObstacleMask(
            [WALL.copy()], 12.0
        ).identity()

    def test_polygon_geometry_separates_masks(self):
        other = rectangle(0.5, 0.0, 0.7, 1.4)
        assert ObstacleMask([WALL], 12.0).identity() != ObstacleMask(
            [other], 12.0
        ).identity()


class TestUniformPower:
    def test_bit_identical_to_gain_matrix(self, deployment):
        coords, dist = deployment
        assert np.array_equal(
            UniformPower().gain(dist, coords, PARAMS),
            gain_matrix(dist, PARAMS.power, PARAMS.alpha),
        )

    def test_is_the_default_channel(self, deployment):
        coords, dist = deployment
        assert default_channel() == UniformPower()
        assert np.array_equal(
            Network(coords).gains,
            gain_matrix(dist, PARAMS.power, PARAMS.alpha),
        )


class TestLogNormalShadowing:
    def test_reproducible_from_seed(self, deployment):
        coords, dist = deployment
        a = LogNormalShadowing(4.0, seed=11).gain(dist, coords, PARAMS)
        b = LogNormalShadowing(4.0, seed=11).gain(dist, coords, PARAMS)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, deployment):
        coords, dist = deployment
        a = LogNormalShadowing(4.0, seed=11).gain(dist, coords, PARAMS)
        b = LogNormalShadowing(4.0, seed=12).gain(dist, coords, PARAMS)
        assert not np.array_equal(a, b)

    def test_zero_sigma_recovers_uniform_power(self, deployment):
        coords, dist = deployment
        assert np.array_equal(
            LogNormalShadowing(0.0, seed=5).gain(dist, coords, PARAMS),
            UniformPower().gain(dist, coords, PARAMS),
        )

    def test_rejects_negative_sigma(self):
        with pytest.raises(SimulationError):
            LogNormalShadowing(sigma_db=-1.0)


class TestDualSlope:
    def test_equals_uniform_below_breakpoint(self, deployment):
        coords, dist = deployment
        gain = DualSlope(breakpoint=1.0).gain(dist, coords, PARAMS)
        base = UniformPower().gain(dist, coords, PARAMS)
        near = (dist <= 1.0) & ~np.eye(dist.shape[0], dtype=bool)
        assert np.array_equal(gain[near], base[near])

    def test_steeper_beyond_breakpoint(self, deployment):
        coords, dist = deployment
        gain = DualSlope(breakpoint=1.0).gain(dist, coords, PARAMS)
        base = UniformPower().gain(dist, coords, PARAMS)
        far = dist > 1.0
        assert np.all(gain[far] < base[far])

    def test_continuous_at_breakpoint(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        below = np.array([[0.0, 1.0 - 1e-9], [1.0 - 1e-9, 0.0]])
        above = np.array([[0.0, 1.0 + 1e-9], [1.0 + 1e-9, 0.0]])
        model = DualSlope(breakpoint=1.0, alpha_far=6.0)
        g_below = model.gain(below, coords, PARAMS)[0, 1]
        g_above = model.gain(above, coords, PARAMS)[0, 1]
        assert g_below == pytest.approx(g_above, rel=1e-6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            DualSlope(breakpoint=0.0)
        with pytest.raises(SimulationError):
            DualSlope(alpha_far=-2.0)


class TestObstacleMask:
    def test_blocked_links_attenuated_unblocked_untouched(self, deployment):
        coords, dist = deployment
        mask_model = ObstacleMask([WALL], attenuation_db=12.0)
        gain = mask_model.gain(dist, coords, PARAMS)
        base = UniformPower().gain(dist, coords, PARAMS)
        blocked = mask_model.blocked_mask(coords)
        assert blocked.any() and not blocked.all()
        assert np.array_equal(blocked, blocked.T)
        assert np.allclose(
            gain[blocked], base[blocked] * 10 ** (-12.0 / 10.0)
        )
        assert np.array_equal(gain[~blocked], base[~blocked])

    def test_crossing_link_is_blocked(self):
        # Two stations on opposite sides of the wall, one pair beside it.
        coords = np.array(
            [[0.5, 0.7], [1.5, 0.7], [0.5, 1.8], [1.5, 1.8]]
        )
        blocked = ObstacleMask([WALL]).blocked_mask(coords)
        assert blocked[0, 1] and blocked[1, 0]
        assert not blocked[2, 3]  # passes above the wall
        assert not blocked[0, 2]  # same side

    def test_higher_dimensions_project_to_plane(self):
        coords3 = np.array(
            [[0.5, 0.7, 0.0], [1.5, 0.7, 0.9], [0.5, 1.8, 0.4]]
        )
        blocked = ObstacleMask([WALL]).blocked_mask(coords3)
        assert blocked[0, 1]
        assert not blocked[0, 2]

    def test_rejects_bad_obstacles(self):
        with pytest.raises(GeometryError):
            ObstacleMask([])
        with pytest.raises(GeometryError):
            ObstacleMask([np.zeros((2, 2))])
        with pytest.raises(SimulationError):
            ObstacleMask([WALL], attenuation_db=-1.0)
        with pytest.raises(GeometryError):
            rectangle(1.0, 0.0, 0.5, 1.0)

    def test_does_not_freeze_callers_polygon(self):
        poly = rectangle(0.0, 0.0, 1.0, 1.0)
        mask = ObstacleMask([poly])
        poly[0, 0] = 5.0  # caller's array stays writable...
        assert mask.obstacles[0][0, 0] == 0.0  # ...and the model's copy
        with pytest.raises(ValueError):
            mask.obstacles[0][0, 0] = 9.0  # internal copy is frozen

    def test_one_dimensional_coords_rejected(self):
        model = ObstacleMask([WALL])
        with pytest.raises(GeometryError):
            model.blocked_mask(np.zeros((4, 1)))

    def test_composes_with_base_channel(self, deployment):
        coords, dist = deployment
        shadow = LogNormalShadowing(2.0, seed=1)
        composed = ObstacleMask([WALL], 12.0, base=shadow)
        gain = composed.gain(dist, coords, PARAMS)
        blocked = composed.blocked_mask(coords)
        assert np.array_equal(
            gain[~blocked], shadow.gain(dist, coords, PARAMS)[~blocked]
        )


class TestChannelFingerprints:
    """The tentpole invariant: channels never collide in the cache."""

    def test_fingerprint_separates_channels(self, deployment):
        coords, _ = deployment
        fingerprints = {
            Network(coords, channel=m).fingerprint() for m in MODELS
        }
        assert len(fingerprints) == len(MODELS)

    def test_with_channel_preserves_graph_changes_fingerprint(
        self, deployment
    ):
        coords, _ = deployment
        net = Network(coords)
        shadowed = net.with_channel(LogNormalShadowing(3.0, seed=2))
        assert set(map(frozenset, net.graph.edges)) == set(
            map(frozenset, shadowed.graph.edges)
        )
        assert net.fingerprint() != shadowed.fingerprint()
        assert isinstance(shadowed.channel, ChannelModel)
