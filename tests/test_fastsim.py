"""Tests for the vectorized fastsim implementations."""

import numpy as np
import pytest

from repro.core.coloring import FINAL_COLOR_LEVEL, NOT_PARTICIPATING
from repro.core.constants import ProtocolConstants
from repro.core.outcome import NEVER_INFORMED
from repro.errors import ProtocolError
from repro.fastsim import (
    fast_coloring,
    fast_decay_broadcast,
    fast_local_broadcast_global,
    fast_nospont_broadcast,
    fast_spont_broadcast,
    fast_uniform_broadcast,
)
from repro.network.network import Network


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


class TestFastColoring:
    def test_colors_assigned(self, small_square, constants, rng):
        result = fast_coloring(small_square, constants, rng)
        assert np.all(result.participants)
        assert not np.any(np.isnan(result.colors))
        assert result.rounds == constants.coloring_total_rounds(
            small_square.size
        )

    def test_colors_are_ladder_values(self, small_square, constants, rng):
        result = fast_coloring(small_square, constants, rng)
        n = small_square.size
        legal = {
            constants.color_of_level(lv, n)
            for lv in range(constants.num_levels(n))
        } | {constants.survivor_color}
        for c in result.distinct_colors():
            assert any(abs(c - v) < 1e-12 for v in legal)

    def test_participants_mask(self, small_square, constants, rng):
        mask = np.zeros(small_square.size, dtype=bool)
        mask[:5] = True
        result = fast_coloring(
            small_square, constants, rng, participants=mask
        )
        assert np.array_equal(result.participants, mask)
        assert np.all(result.quit_levels[~mask] == NOT_PARTICIPATING)

    def test_empty_participants_rejected(self, small_square, constants, rng):
        with pytest.raises(ProtocolError):
            fast_coloring(
                small_square, constants, rng,
                participants=np.zeros(small_square.size, dtype=bool),
            )

    def test_single_station_survives(self, constants, rng):
        net = Network(np.array([[0.0, 0.0]]))
        result = fast_coloring(net, constants, rng)
        assert result.quit_levels[0] == FINAL_COLOR_LEVEL

    def test_informed_tracking_requires_rounds(
        self, small_square, constants, rng
    ):
        informed = np.zeros(small_square.size, dtype=bool)
        with pytest.raises(ProtocolError):
            fast_coloring(
                small_square, constants, rng, informed=informed
            )

    def test_informed_spreads_from_source(self, small_square, constants, rng):
        n = small_square.size
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        informed_round = np.full(n, NEVER_INFORMED)
        informed_round[0] = 0
        fast_coloring(
            small_square, constants, rng,
            informed=informed, informed_round=informed_round,
        )
        # The source transmits during coloring, so someone hears it.
        assert informed.sum() > 1
        newly = informed & (informed_round >= 0)
        assert np.array_equal(newly, informed)

    def test_reproducible(self, small_square, constants):
        a = fast_coloring(small_square, constants, np.random.default_rng(4))
        b = fast_coloring(small_square, constants, np.random.default_rng(4))
        assert np.array_equal(a.quit_levels, b.quit_levels)


class TestFastBroadcasts:
    def test_spont_completes(self, small_square, constants, rng):
        out = fast_spont_broadcast(small_square, 0, constants, rng)
        assert out.success
        assert out.completion_round >= 0
        assert out.informed_round[0] == 0

    def test_nospont_completes(self, small_square, constants, rng):
        out = fast_nospont_broadcast(small_square, 0, constants, rng)
        assert out.success
        assert out.extras["phases_used"] >= 1

    def test_nospont_phase_budget(self, small_chain, constants, rng):
        out = fast_nospont_broadcast(
            small_chain, 0, constants, rng, max_phases=1
        )
        # One phase may or may not finish a 11-hop chain; bounded rounds.
        assert out.total_rounds <= constants.phase_rounds(small_chain.size)

    def test_spont_budget_failure(self, small_chain, constants, rng):
        out = fast_spont_broadcast(
            small_chain, 0, constants, rng, round_budget=0
        )
        # With zero dissemination budget only coloring-stage spread happens.
        assert out.total_rounds <= small_chain.size * 1000
        if not out.success:
            assert out.completion_round == NEVER_INFORMED

    def test_uniform_completes(self, small_chain, rng):
        out = fast_uniform_broadcast(small_chain, 0, q=0.5, rng=rng)
        assert out.success

    def test_uniform_invalid_q(self, small_chain, rng):
        with pytest.raises(ProtocolError):
            fast_uniform_broadcast(small_chain, 0, q=2.0, rng=rng)

    def test_decay_completes(self, small_chain, rng):
        out = fast_decay_broadcast(small_chain, 0, rng=rng)
        assert out.success

    def test_local_completes(self, small_square, rng):
        out = fast_local_broadcast_global(small_square, 0, rng=rng)
        assert out.success

    def test_bad_source(self, small_chain, constants, rng):
        for fn in (
            lambda: fast_spont_broadcast(small_chain, 50, constants, rng),
            lambda: fast_nospont_broadcast(small_chain, 50, constants, rng),
            lambda: fast_uniform_broadcast(small_chain, 50, rng=rng),
            lambda: fast_decay_broadcast(small_chain, 50, rng=rng),
            lambda: fast_local_broadcast_global(small_chain, 50, rng=rng),
        ):
            with pytest.raises(ProtocolError):
                fn()


class TestCrossValidation:
    """Reference and fastsim implementations agree statistically."""

    def test_coloring_masses_comparable(self, small_square, constants):
        from repro.core.coloring import run_coloring
        from repro.core.properties import lemma1_max_color_mass

        ref = run_coloring(
            small_square, constants, np.random.default_rng(1)
        )
        fast = fast_coloring(
            small_square, constants, np.random.default_rng(1)
        )
        m_ref = lemma1_max_color_mass(small_square, ref)
        m_fast = lemma1_max_color_mass(small_square, fast)
        # Same algorithm, same bound scale (within 4x of each other).
        assert m_fast < 4 * m_ref + 0.5
        assert m_ref < 4 * m_fast + 0.5

    def test_coloring_color_sets_overlap(self, small_square, constants):
        from repro.core.coloring import run_coloring

        ref = run_coloring(
            small_square, constants, np.random.default_rng(2)
        )
        fast = fast_coloring(
            small_square, constants, np.random.default_rng(2)
        )
        # Both use the same ladder; the used color sets should intersect.
        assert set(ref.distinct_colors()) & set(fast.distinct_colors())

    def test_spont_rounds_same_scale(self, small_chain, constants):
        from repro.core.broadcast_spont import run_spont_broadcast

        ref_rounds, fast_rounds = [], []
        for seed in range(3):
            ref = run_spont_broadcast(
                small_chain, 0, constants, np.random.default_rng(seed)
            )
            fast = fast_spont_broadcast(
                small_chain, 0, constants, np.random.default_rng(seed)
            )
            assert ref.success and fast.success
            ref_rounds.append(ref.completion_round)
            fast_rounds.append(fast.completion_round)
        assert np.mean(fast_rounds) < 3 * np.mean(ref_rounds) + 50
        assert np.mean(ref_rounds) < 3 * np.mean(fast_rounds) + 50

    def test_nospont_rounds_same_scale(self, constants):
        from repro.core.broadcast_nospont import run_nospont_broadcast
        from repro.deploy import uniform_chain

        chain = uniform_chain(8, gap=0.5)
        ref = run_nospont_broadcast(
            chain, 0, constants, np.random.default_rng(3)
        )
        fast = fast_nospont_broadcast(
            chain, 0, constants, np.random.default_rng(3)
        )
        assert ref.success and fast.success
        assert fast.completion_round < 3 * ref.completion_round + 500
        assert ref.completion_round < 3 * fast.completion_round + 500
