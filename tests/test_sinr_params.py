"""Tests for SINR parameter algebra."""

import math

import pytest

from repro.errors import ProtocolError
from repro.sinr.params import ParameterBounds, SINRParameters


class TestSINRParameters:
    def test_default_is_normalized(self):
        p = SINRParameters.default()
        assert p.is_normalized
        assert p.broadcast_range == pytest.approx(1.0)

    def test_default_power_is_noise_times_beta(self):
        p = SINRParameters.default(beta=2.0, noise=0.5)
        assert p.power == pytest.approx(1.0)
        assert p.broadcast_range == pytest.approx(1.0)

    def test_comm_radius(self):
        p = SINRParameters.default(eps=0.3)
        assert p.comm_radius == pytest.approx(0.7)

    def test_broadcast_range_formula(self):
        p = SINRParameters(alpha=2.0, beta=1.0, noise=1.0, power=4.0)
        assert p.broadcast_range == pytest.approx(2.0)
        assert not p.is_normalized

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"beta": 0.5},
            {"noise": 0.0},
            {"power": 0.0},
            {"eps": 0.0},
            {"eps": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(alpha=3.0, beta=1.0, noise=1.0, power=3.0, eps=0.3)
        base.update(kwargs)
        with pytest.raises(ProtocolError):
            SINRParameters(**base)

    def test_with_eps(self):
        p = SINRParameters.default(eps=0.3)
        q = p.with_eps(0.1)
        assert q.eps == 0.1
        assert q.alpha == p.alpha
        assert p.eps == 0.3  # frozen original untouched

    def test_min_gap_for_range_at_full_range(self):
        p = SINRParameters.default()
        # At the full range r=1 there is no interference budget left.
        assert p.min_gap_for_range(1.0) == pytest.approx(0.0)

    def test_min_gap_grows_as_range_shrinks(self):
        p = SINRParameters.default()
        assert p.min_gap_for_range(0.5) > p.min_gap_for_range(0.9) > 0

    def test_min_gap_rejects_bad_range(self):
        with pytest.raises(ProtocolError):
            SINRParameters.default().min_gap_for_range(0.0)

    def test_frozen(self):
        p = SINRParameters.default()
        with pytest.raises(AttributeError):
            p.alpha = 4.0


class TestParameterBounds:
    def test_exact_bounds_contain_params(self):
        p = SINRParameters.default()
        b = ParameterBounds.exact(p)
        assert b.contains(p)

    def test_contains_rejects_outside(self):
        p = SINRParameters.default(alpha=3.0)
        b = ParameterBounds.exact(p)
        assert not b.contains(SINRParameters.default(alpha=4.0))

    def test_conservative_uses_worst_case(self):
        b = ParameterBounds(
            alpha_min=2.5, alpha_max=4.0,
            beta_min=1.0, beta_max=2.0,
            noise_min=0.5, noise_max=1.5,
        )
        safe = b.conservative()
        assert safe.alpha == 2.5  # smallest alpha = worst interference
        assert safe.beta == 2.0
        assert safe.noise == 1.5
        assert safe.power == pytest.approx(3.0)

    def test_conservative_range_at_least_one(self):
        b = ParameterBounds(
            alpha_min=2.5, alpha_max=4.0,
            beta_min=1.0, beta_max=2.0,
            noise_min=0.5, noise_max=1.5,
        )
        safe = b.conservative()
        assert safe.broadcast_range >= 1.0 - 1e-12

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ProtocolError):
            ParameterBounds(
                alpha_min=4.0, alpha_max=3.0,
                beta_min=1.0, beta_max=1.0,
                noise_min=1.0, noise_max=1.0,
            )

    def test_beta_min_below_one_rejected(self):
        with pytest.raises(ProtocolError):
            ParameterBounds(
                alpha_min=3.0, alpha_max=3.0,
                beta_min=0.5, beta_max=1.0,
                noise_min=1.0, noise_max=1.0,
            )

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ProtocolError):
            ParameterBounds(
                alpha_min=0.0, alpha_max=3.0,
                beta_min=1.0, beta_max=1.0,
                noise_min=1.0, noise_max=1.0,
            )
