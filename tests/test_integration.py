"""Integration tests: whole-system flows across module boundaries.

Each test exercises a realistic end-to-end scenario on a non-trivial
topology, asserting paper-level behaviour rather than unit contracts.
"""

import numpy as np
import pytest

from repro.core import (
    ProtocolConstants,
    lemma1_max_color_mass,
    lemma2_min_best_mass,
    run_coloring,
    run_nospont_broadcast,
    run_spont_broadcast,
)
from repro.deploy import (
    clustered_chain,
    dumbbell,
    exponential_chain,
    grid,
    uniform_square,
)
from repro.fastsim import fast_nospont_broadcast, fast_spont_broadcast
from repro.geometry.growth import growth_dimension_estimate
from repro.sim.trace import TraceRecorder


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


class TestEndToEndBroadcast:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng: uniform_square(n=48, side=2.5, rng=rng),
            lambda rng: grid(3, 8, spacing=0.5),
            lambda rng: exponential_chain(16),
            lambda rng: dumbbell(12, 4, rng),
            lambda rng: clustered_chain(5, 6, 0.05, hop=0.55, rng=rng),
        ],
        ids=["uniform", "grid", "expchain", "dumbbell", "clusters"],
    )
    def test_spont_broadcast_completes_everywhere(self, maker, constants):
        rng = np.random.default_rng(77)
        net = maker(rng)
        out = run_spont_broadcast(net, 0, constants, rng)
        assert out.success, f"{net.name} failed at {out.num_informed}/{net.size}"

    def test_nospont_advances_about_one_hop_per_phase(self, constants):
        net = grid(2, 12, spacing=0.5)
        rng = np.random.default_rng(3)
        out = run_nospont_broadcast(net, 0, constants, rng)
        assert out.success
        depth = net.eccentricity(0)
        phases = out.extras["phases_used"]
        # At least one hop per phase (Lemma 8), usually more.
        assert phases <= depth + 2

    def test_source_position_does_not_matter_much(self, constants):
        net = grid(3, 8, spacing=0.5)
        rng = np.random.default_rng(5)
        corner = run_spont_broadcast(net, 0, constants, rng)
        center = run_spont_broadcast(net, net.size // 2, constants, rng)
        assert corner.success and center.success
        # The center has smaller eccentricity: never slower by > 4x.
        assert center.completion_round < 4 * corner.completion_round + 100


class TestColoringThenBroadcast:
    def test_coloring_properties_support_dissemination(self, constants):
        rng = np.random.default_rng(9)
        net = uniform_square(n=64, side=3.0, rng=rng)
        coloring = run_coloring(net, constants, rng)
        l1 = lemma1_max_color_mass(net, coloring)
        l2 = lemma2_min_best_mass(net, coloring, radius=0.4)
        assert l1 < 2.0, "upper density property violated"
        assert l2 > 0.005, "lower density property violated"
        out = run_spont_broadcast(net, 0, constants, rng)
        assert out.success

    def test_phase_trace_shows_bounded_congestion(self, constants):
        rng = np.random.default_rng(13)
        net = uniform_square(n=48, side=2.0, rng=rng)
        trace = TraceRecorder()
        out = run_spont_broadcast(net, 0, constants, rng, trace=trace)
        assert out.success
        # Lemma 1's point: no round floods the channel with transmitters.
        assert trace.transmissions_per_round().max() <= net.size * 0.9


class TestGrowthDimension:
    def test_deployments_are_bounded_growth(self):
        rng = np.random.default_rng(21)
        net = uniform_square(n=300, side=6.0, rng=rng)
        est = growth_dimension_estimate(net.distances, base_radius=0.5)
        assert est <= 3.0  # consistent with gamma=2 < alpha=3

    def test_chain_is_one_dimensional(self):
        from repro.deploy import uniform_chain

        net = uniform_chain(200, gap=0.3)
        est = growth_dimension_estimate(net.distances, base_radius=0.5)
        assert est <= 2.0


class TestReferenceVsFastAgreement:
    """Both implementations validate the same theorems."""

    def test_both_satisfy_linear_in_depth(self, constants):
        rows = []
        for cols in (6, 12):
            net = grid(2, cols, spacing=0.5)
            rng = np.random.default_rng(cols)
            fast = fast_spont_broadcast(net, 0, constants, rng)
            assert fast.success
            rows.append((net.eccentricity(0), fast.completion_round))
        (d1, r1), (d2, r2) = rows
        # Doubling the depth should not blow up rounds superlinearly
        # (allowing generous noise at this scale).
        assert r2 <= (d2 / d1) * r1 * 3 + 200

    def test_fast_nospont_phases_track_reference(self, constants):
        net = grid(2, 8, spacing=0.5)
        ref = run_nospont_broadcast(
            net, 0, constants, np.random.default_rng(1)
        )
        fast = fast_nospont_broadcast(
            net, 0, constants, np.random.default_rng(1)
        )
        assert ref.success and fast.success
        assert abs(
            ref.extras["phases_used"] - fast.extras["phases_used"]
        ) <= 3


class TestWholePipeline:
    def test_experiment_harness_runs_on_fresh_network(self):
        # Exercise deploy -> fastsim -> analysis -> report in one flow.
        from repro.analysis.fitting import fit_models
        from repro.analysis.stats import aggregate_trials

        rng = np.random.default_rng(2)
        rounds = []
        sizes = [24, 48, 96]
        for n in sizes:
            net = uniform_square(n=n, side=2.5, rng=rng)
            trials = [
                fast_spont_broadcast(
                    net, 0, ProtocolConstants.practical(),
                    np.random.default_rng(s),
                ).completion_round
                for s in range(3)
            ]
            rounds.append(aggregate_trials(trials).mean)
        fits = fit_models(sizes, rounds, ["log^2 n", "n^2"])
        assert fits[0].model == "log^2 n"
