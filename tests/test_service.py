"""Tests for the resident-network query service (DESIGN.md §8).

The load-bearing claims, each pinned here:

* **Coalescing is invisible** — responses to concurrently issued SINR
  queries (folded into shared kernel calls) are bitwise identical to an
  uncoalesced server's and to direct in-process resolution.
* **The pool is a budgeted LRU** — admission past the byte budget evicts
  least-recently-used networks, never the one just admitted, and ``get``
  refreshes recency.
* **Cancellation is per-item** — a client abandoning a request mid-batch
  does not disturb the other items folded into the same kernel call.
* **The result cache is shared** — a sweep computed through the service
  replays in a plain CLI ``run_grid`` (and vice versa) because both
  address the same :func:`repro.fastsim.cache.point_key`.
* **``run_grid(service=...)`` is an execution backend** — results are
  bitwise equal to the fork pool's.

Async tests drive an in-process server over loopback TCP inside
``asyncio.run``; the grid tests run the daemon on a background thread
(its own event loop) because ``run_grid``'s service path owns the
caller's loop.
"""

import asyncio
import contextlib
import threading

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.fastsim.grid import Derived, GridPoint, GridSpec, run_grid
from repro.network.network import Network
from repro.service import (
    BatchCoalescer,
    NetworkPool,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceTimeout,
    connect,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    pack_pickle,
    read_frame,
    unpack_pickle,
)
from repro.service.server import build_network
from repro.sinr.reception import resolve_reception_many

CONSTANTS = ProtocolConstants.practical()

#: A small deterministic deployment spec reused across tests.
SPEC = {"family": "uniform_square", "seed": 7,
        "args": {"n": 30, "side": 2.0}}


def _transmitter_sets(n, count, seed=0):
    rng = np.random.default_rng(seed)
    sets = [
        np.flatnonzero(rng.random(n) < rng.uniform(0.05, 0.4))
        for _ in range(count)
    ]
    sets[0] = np.array([], dtype=int)  # one empty set in every batch
    return sets


@contextlib.asynccontextmanager
async def _serve(**server_kwargs):
    """In-process server + connected client over loopback TCP."""
    server = ServiceServer(**server_kwargs)
    await server.start_tcp("127.0.0.1", 0)
    host, port = server.tcp_address
    client = await connect(f"tcp:{host}:{port}")
    try:
        yield server, client
    finally:
        await client.aclose()
        await server.aclose()


class _ServerThread:
    """A daemon on a background thread, for tests that drive run_grid."""

    def __init__(self, **server_kwargs):
        self.address = None
        self._ready = threading.Event()
        self._loop = None
        self._server = None
        self._thread = threading.Thread(
            target=self._run, kwargs=server_kwargs, daemon=True
        )
        self._thread.start()
        assert self._ready.wait(20), "service thread failed to start"

    def _run(self, **server_kwargs):
        async def main():
            self._server = ServiceServer(**server_kwargs)
            await self._server.start_tcp("127.0.0.1", 0)
            host, port = self._server.tcp_address
            self.address = f"tcp:{host}:{port}"
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._server.serve_forever()

        asyncio.run(main())

    def stop(self):
        self._loop.call_soon_threadsafe(self._server.shutdown)
        self._thread.join(20)


@contextlib.contextmanager
def _server_thread(**server_kwargs):
    thread = _ServerThread(**server_kwargs)
    try:
        yield thread.address
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def _roundtrip(self, frame_bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame_bytes)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_frame_roundtrip(self):
        message = {"id": 3, "op": "sinr", "transmitters": [0, 2]}
        assert self._roundtrip(encode_frame(message)) == message

    def test_eof_is_none(self):
        assert self._roundtrip(b"") is None

    def test_garbage_raises(self):
        with pytest.raises(ServiceError):
            self._roundtrip(b"not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ServiceError):
            self._roundtrip(b"[1, 2]\n")

    def test_oversize_raises(self):
        async def go():
            reader = asyncio.StreamReader(limit=1 << 16)
            reader.feed_data(b"x" * (1 << 17))
            return await read_frame(reader)

        with pytest.raises(ServiceError):
            asyncio.run(go())
        assert MAX_FRAME_BYTES > (1 << 20)

    def test_pickle_roundtrip(self):
        payload = {"a": np.arange(4), "s": np.random.SeedSequence(5)}
        out = unpack_pickle(pack_pickle(payload))
        assert np.array_equal(out["a"], payload["a"])
        assert out["s"].entropy == 5


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class TestNetworkPool:
    @staticmethod
    def _net(seed, n=16):
        rng = np.random.default_rng(seed)
        net = uniform_square(n=n, side=1.5, rng=rng)
        net.gain_operator  # materialize so resident_bytes sees actuals
        return net

    def test_admit_and_get(self):
        pool = NetworkPool()
        net = self._net(0)
        fingerprint, evicted = pool.add(net)
        assert evicted == []
        assert pool.get(fingerprint) is net
        assert pool.get("missing") is None
        assert fingerprint in pool

    def test_lru_eviction_under_tight_budget(self):
        nets = [self._net(seed) for seed in range(3)]
        # Budget fits exactly two of the three resident networks
        # (equal-size deployments; eviction triggers strictly past it).
        budget = nets[0].resident_bytes() + nets[1].resident_bytes()
        pool = NetworkPool(budget_bytes=budget)
        fps = [pool.add(net)[0] for net in nets[:2]]
        assert len(pool) == 2
        # Touch the oldest so the *middle* one is least recently used.
        assert pool.get(fps[0]) is nets[0]
        fp2, evicted = pool.add(nets[2])
        assert evicted == [fps[1]]
        assert pool.get(fps[1]) is None
        assert pool.get(fps[0]) is nets[0]
        assert pool.get(fp2) is nets[2]

    def test_never_evicts_the_just_added_network(self):
        big = self._net(5, n=24)
        pool = NetworkPool(budget_bytes=1)  # nothing fits
        fingerprint, evicted = pool.add(big)
        assert evicted == []
        assert pool.get(fingerprint) is big

    def test_max_networks_cap(self):
        pool = NetworkPool(max_networks=2)
        fps = [pool.add(self._net(seed))[0] for seed in range(3)]
        assert len(pool) == 2
        assert pool.get(fps[0]) is None

    def test_stats_counters(self):
        pool = NetworkPool()
        fingerprint, _ = pool.add(self._net(1))
        pool.get(fingerprint)
        pool.get("nope")
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["networks"] == 1
        assert stats["resident_bytes"] > 0


# ----------------------------------------------------------------------
# the coalescer
# ----------------------------------------------------------------------
class TestBatchCoalescer:
    def test_folds_concurrent_submissions(self):
        calls = []

        def fold(items):
            calls.append(len(items))
            return [i * 10 for i in items]

        async def go():
            co = BatchCoalescer(fold, window=0.01, max_batch=8)
            return await asyncio.gather(*(co.submit(i) for i in range(5))), co

        results, co = asyncio.run(go())
        assert results == [0, 10, 20, 30, 40]
        assert co.stats.requests == 5
        assert co.stats.batches == len(calls) < 5
        assert co.stats.max_batch > 1

    def test_max_batch_splits(self):
        sizes = []

        def fold(items):
            sizes.append(len(items))
            return list(items)

        async def go():
            co = BatchCoalescer(fold, window=0.01, max_batch=3)
            await asyncio.gather(*(co.submit(i) for i in range(7)))

        asyncio.run(go())
        assert max(sizes) <= 3 and sum(sizes) == 7

    def test_disabled_serves_singles(self):
        sizes = []

        def fold(items):
            sizes.append(len(items))
            return list(items)

        async def go():
            co = BatchCoalescer(fold, window=0.01, enabled=False)
            await asyncio.gather(*(co.submit(i) for i in range(4)))
            return co

        co = asyncio.run(go())
        assert sizes == [1, 1, 1, 1]
        assert co.stats.folded == 0

    def test_cancellation_mid_batch_spares_batchmates(self):
        folded = []

        def fold(items):
            folded.append(sorted(items))
            return [i * 10 for i in items]

        async def go():
            co = BatchCoalescer(fold, window=0.05, max_batch=8)
            doomed = asyncio.ensure_future(co.submit(99))
            survivors = [
                asyncio.ensure_future(co.submit(i)) for i in (1, 2)
            ]
            await asyncio.sleep(0)  # all three join the pending batch
            doomed.cancel()
            results = await asyncio.gather(*survivors)
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return results, co

        results, co = asyncio.run(go())
        assert results == [10, 20]
        assert folded == [[1, 2]]  # the cancelled item never reached fold
        assert co.stats.max_batch == 2

    def test_fold_error_reaches_every_waiter(self):
        def fold(items):
            raise ValueError("kernel exploded")

        async def go():
            co = BatchCoalescer(fold, window=0.005)
            results = await asyncio.gather(
                co.submit(1), co.submit(2), return_exceptions=True
            )
            return results

        results = asyncio.run(go())
        assert all(isinstance(r, ValueError) for r in results)


# ----------------------------------------------------------------------
# serve == direct call, coalesced or not
# ----------------------------------------------------------------------
class TestCoalescedEquivalence:
    def _serve_all(self, coalesce):
        async def go():
            async with _serve(
                window=0.01, max_batch=16, coalesce=coalesce
            ) as (server, client):
                built = await client.build(SPEC)
                sets = _transmitter_sets(built["n"], 12)
                replies = await asyncio.gather(*(
                    client.sinr(built["net"], tx, full=True) for tx in sets
                ))
                return built, sets, replies, server

        return asyncio.run(go())

    def test_coalesced_matches_uncoalesced_and_direct(self):
        built, sets, coalesced, server = self._serve_all(coalesce=True)
        _, _, singles, _ = self._serve_all(coalesce=False)

        # The coalesced run actually batched (else this test is vacuous).
        stats = [
            co.stats for co in server._coalescers.values()
        ]
        assert sum(s.requests for s in stats) == len(sets)
        assert max(s.max_batch for s in stats) > 1

        # Service (both modes) == direct in-process resolution, bitwise.
        net = build_network(SPEC)
        direct = resolve_reception_many(
            net.gain_operator, sets, net.params.noise, net.params.beta
        )
        for reply_c, reply_s, heard in zip(coalesced, singles, direct):
            assert reply_c["heard"] == reply_s["heard"] == heard.tolist()

    def test_sinr_validates_indices(self):
        async def go():
            async with _serve() as (_, client):
                built = await client.build(SPEC)
                with pytest.raises(ServiceError):
                    await client.sinr(built["net"], [built["n"]])

        asyncio.run(go())


# ----------------------------------------------------------------------
# per-request timeouts (the unbounded-await bug)
# ----------------------------------------------------------------------
class _StalledSweepServer(ServiceServer):
    """Accepts ``sweep`` requests and never answers — the dead-peer
    shape (host crash, partition) that used to hang clients forever."""

    async def _op_sweep(self, request):
        await asyncio.sleep(3600)


class TestRequestTimeout:
    def test_stalled_request_raises_service_timeout(self):
        async def go():
            server = _StalledSweepServer()
            await server.start_tcp("127.0.0.1", 0)
            host, port = server.tcp_address
            client = await connect(f"tcp:{host}:{port}", timeout=0.2)
            try:
                with pytest.raises(ServiceTimeout, match="no response"):
                    await client.sweep(
                        "spont_broadcast", 1, 3,
                        descriptor={}, constants=CONSTANTS,
                    )
                # The connection survives an abandoned request: other
                # (answered) ops still work afterwards.
                assert await client.ping()
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(go())

    def test_per_request_override_beats_client_default(self):
        async def go():
            server = _StalledSweepServer()
            await server.start_tcp("127.0.0.1", 0)
            host, port = server.tcp_address
            # Client default would wait 3600s; the per-request override
            # must win.
            client = await connect(f"tcp:{host}:{port}", timeout=3600)
            try:
                start = asyncio.get_running_loop().time()
                with pytest.raises(ServiceTimeout):
                    await client.request("sweep", timeout=0.2, payload="")
                assert asyncio.get_running_loop().time() - start < 5
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(go())

    def test_timeout_none_waits_for_slow_reply(self):
        # ``timeout=None`` is "wait forever", not "wait zero": a reply
        # that takes real time must still arrive.
        async def go():
            async with _serve() as (_, client):
                client.timeout = None
                assert await client.ping()

        asyncio.run(go())


# ----------------------------------------------------------------------
# server ops
# ----------------------------------------------------------------------
class TestServerOps:
    def test_build_is_idempotent_and_pool_backed(self):
        async def go():
            async with _serve() as (server, client):
                first = await client.build(SPEC)
                again = await client.build(SPEC)
                assert again["net"] == first["net"]
                assert len(server.pool) == 1
                # The fingerprint shortcut skips the rebuild entirely.
                short = await client.build({"fingerprint": first["net"]})
                assert short["net"] == first["net"]
                return first

        built = asyncio.run(go())
        assert built["n"] == SPEC["args"]["n"]
        assert built["resident_bytes"] > 0

    def test_unknown_network_and_op_are_clean_errors(self):
        async def go():
            async with _serve() as (_, client):
                with pytest.raises(ServiceError, match="no resident"):
                    await client.sinr("f" * 64, [0])
                with pytest.raises(ServiceError, match="unknown op"):
                    await client.request("frobnicate")
                # The connection survives both errors.
                assert await client.ping()

        asyncio.run(go())

    def test_ball_graph_connected_match_direct(self):
        async def go():
            async with _serve() as (_, client):
                built = await client.build(SPEC)
                ball = await client.ball(built["net"], 0, 0.75)
                graph = await client.graph(built["net"])
                connected = await client.is_connected(built["net"])
                return ball, graph, connected

        ball, graph, connected = asyncio.run(go())
        net = build_network(SPEC)
        assert ball == np.asarray(net.ball(0, 0.75)).tolist()
        assert graph["num_edges"] == net.graph.number_of_edges()
        assert sorted(map(tuple, graph["edges"])) == sorted(
            (int(u), int(v)) for u, v in net.graph.edges()
        )
        assert connected == net.is_connected

    def test_advance_admits_successor(self):
        async def go():
            async with _serve() as (server, client):
                built = await client.build(SPEC)
                n = built["n"]
                still = await client.advance(built["net"], np.zeros((n, 2)))
                assert still["advance_mode"] == "unmoved"
                assert still["net"] == built["net"]
                rng = np.random.default_rng(1)
                moved = await client.advance(
                    built["net"], rng.normal(0, 0.01, size=(n, 2))
                )
                assert moved["net"] != built["net"]
                assert moved["net"] in server.pool
                # The successor serves queries immediately.
                reply = await client.sinr(moved["net"], [0], full=True)
                assert len(reply["heard"]) == n

        asyncio.run(go())

    def test_pool_eviction_is_visible_to_clients(self):
        async def go():
            pool = NetworkPool(max_networks=1)
            async with _serve(pool=pool) as (_, client):
                first = await client.build(SPEC)
                second = await client.build(
                    {**SPEC, "seed": 8}
                )
                assert first["net"] in second["evicted"]
                with pytest.raises(ServiceError, match="evicted"):
                    await client.sinr(first["net"], [0])

        asyncio.run(go())

    def test_stats_op(self):
        async def go():
            async with _serve() as (_, client):
                built = await client.build(SPEC)
                await client.sinr(built["net"], [0, 1])
                stats = await client.stats()
                return stats

        stats = asyncio.run(go())
        assert stats["pool"]["networks"] == 1
        assert stats["requests_served"] >= 2
        assert stats["coalescers"]
        assert stats["peak_rss_bytes"] > 0

    def test_client_timeout_mid_batch_leaves_server_healthy(self):
        # A client that stops waiting (timeout/cancel) mid-coalesce must
        # not corrupt the batch its request rode in: later requests on
        # the same connection still answer correctly.
        async def go():
            async with _serve(window=0.05) as (_, client):
                built = await client.build(SPEC)
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        client.sinr(built["net"], [0]), timeout=0.001
                    )
                reply = await client.sinr(built["net"], [0], full=True)
                return built, reply

        built, reply = asyncio.run(go())
        net = build_network(SPEC)
        direct = resolve_reception_many(
            net.gain_operator, [np.array([0])],
            net.params.noise, net.params.beta,
        )[0]
        assert reply["heard"] == direct.tolist()


# ----------------------------------------------------------------------
# sweeps, caching and the grid execution path
# ----------------------------------------------------------------------
def _grid_points():
    return [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=1.5, rng=rng
            ),
            n_replications=2,
            label=f"n={n}",
            constants=CONSTANTS,
            kwargs={"source": Derived(lambda net, rng: 0)},
        )
        for n in (10, 12)
    ] + [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng: uniform_square(n=14, side=1.5, rng=rng),
            n_replications=2,
            label=f"shared-{src}",
            constants=CONSTANTS,
            kwargs={"source": src},
            share_deployment="svc-shared",
            post=_degree_post,
        )
        for src in (0, 5)
    ]


def _degree_post(net, sweep):
    return {"max_degree": int(net.max_degree)}


def _spec():
    return GridSpec(points=_grid_points(), seed=2014, name="svc-grid")


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(
            ra.sweep.rounds, rb.sweep.rounds, equal_nan=True
        )
        assert np.array_equal(ra.sweep.success, rb.sweep.success)
        assert ra.extras == rb.extras


class TestSweepAndGrid:
    def test_sweep_server_side_cache(self, tmp_path):
        async def go():
            async with _serve(cache_dir=str(tmp_path)) as (_, client):
                built = await client.build(SPEC)
                first = await client.sweep(
                    "spont_broadcast", 2, 11, net=built["net"],
                    constants=CONSTANTS, kwargs={"source": 0},
                    key="svc-sweep-key",
                )
                second = await client.sweep(
                    "spont_broadcast", 2, 11, net=built["net"],
                    constants=CONSTANTS, kwargs={"source": 0},
                    key="svc-sweep-key",
                )
                return first, second

        first, second = asyncio.run(go())
        assert not first["cached"] and second["cached"]
        assert np.array_equal(
            first["sweep"].rounds, second["sweep"].rounds, equal_nan=True
        )

    def test_grid_service_matches_fork_pool(self):
        forked = run_grid(_spec(), jobs=2)
        with _server_thread() as address:
            served = run_grid(_spec(), service=address)
        _assert_same_results(forked, served)
        assert not any(r.cached for r in served)

    def test_service_run_populates_cli_cache(self, tmp_path):
        # Client-side writes: a service-backed grid run fills the same
        # store a plain CLI run replays from.
        with _server_thread() as address:
            served = run_grid(
                _spec(), service=address, cache_dir=str(tmp_path)
            )
        replay = run_grid(_spec(), jobs=1, cache_dir=str(tmp_path))
        assert all(r.cached for r in replay)
        _assert_same_results(served, replay)

    def test_server_cache_replays_in_cli_run(self, tmp_path):
        # Server-side writes: the daemon's own cache entries are keyed by
        # the ordinary point_key, so a CLI run against the same directory
        # replays them without recomputing.
        with _server_thread(cache_dir=str(tmp_path)) as address:
            served = run_grid(_spec(), service=address, cache=False)
        hookless = [
            r for r in run_grid(_spec(), jobs=1, cache_dir=str(tmp_path))
            if r.point.post is None
        ]
        assert hookless and all(r.cached for r in hookless)
        by_label = {r.point.label: r for r in served}
        for r in hookless:
            assert np.array_equal(
                r.sweep.rounds, by_label[r.point.label].sweep.rounds,
                equal_nan=True,
            )

    def test_pool_hits_across_grid_runs(self):
        # The cross-run win: a second service-backed run of the same spec
        # finds every deployment already resident.
        with _server_thread() as address:
            run_grid(_spec(), service=address)
            run_grid(_spec(), service=address)

            async def poolstats():
                client = await connect(address)
                try:
                    return (await client.stats())["pool"]
                finally:
                    await client.aclose()

            stats = asyncio.run(poolstats())
        assert stats["networks"] == 3  # deployments deduped, resident
        assert stats["hits"] >= 3  # second run served from the pool
