"""Tests for StabilizeProbability (reference implementation)."""

import numpy as np
import pytest

from repro.core.coloring import (
    ColoringCore,
    ColoringNode,
    FINAL_COLOR_LEVEL,
    NOT_PARTICIPATING,
    run_coloring,
)
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.core.properties import (
    coloring_report,
    lemma1_max_color_mass,
    lemma2_best_masses,
    lemma2_min_best_mass,
)
from repro.errors import AnalysisError, ProtocolError
from repro.network.network import Network


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


@pytest.fixture(scope="module")
def schedule(constants):
    return ColoringSchedule(constants, 16)


class TestColoringCore:
    def test_initial_state(self, schedule):
        core = ColoringCore(schedule)
        assert not core.has_quit
        assert core.finished_level() == FINAL_COLOR_LEVEL
        assert core.finished_color() == schedule.constants.survivor_color

    def test_density_probability(self, schedule):
        core = ColoringCore(schedule)
        assert core.transmission_probability(0) == schedule.level_probability(0)

    def test_playoff_probability_scaled(self, schedule):
        core = ColoringCore(schedule)
        p = core.transmission_probability(schedule.density_len)
        expected = min(
            1.0, schedule.level_probability(0) * schedule.constants.ceps
        )
        assert p == pytest.approx(expected)

    def test_quit_when_both_tests_pass(self, schedule):
        core = ColoringCore(schedule)
        # Feed successes on every round of the first block.
        for offset in range(schedule.block_len):
            core.observe(offset, heard=True, transmitted=False)
        assert core.has_quit
        assert core.quit_level == 0
        assert core.finished_color() == schedule.constants.pstart(16)

    def test_no_quit_when_playoff_fails(self, schedule):
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            _, _, part, _ = schedule.position(offset)
            core.observe(
                offset, heard=(part == "density"), transmitted=False
            )
        assert not core.has_quit

    def test_no_quit_when_density_fails(self, schedule):
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            _, _, part, _ = schedule.position(offset)
            core.observe(
                offset, heard=(part == "playoff"), transmitted=False
            )
        assert not core.has_quit

    def test_self_transmissions_count_for_density_only(self, schedule):
        assert schedule.constants.playoff_counts_self is False
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            core.observe(offset, heard=False, transmitted=True)
        # Density passed (sends count), playoff did not (receptions only).
        assert not core.has_quit

    def test_self_counts_in_playoff_when_enabled(self):
        constants = ProtocolConstants.practical(playoff_counts_self=True)
        schedule = ColoringSchedule(constants, 16)
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            core.observe(offset, heard=False, transmitted=True)
        assert core.has_quit

    def test_quit_station_stops_transmitting(self, schedule):
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            core.observe(offset, heard=True, transmitted=False)
        assert core.transmission_probability(schedule.block_len) == 0.0

    def test_counters_reset_between_blocks(self, schedule):
        core = ColoringCore(schedule)
        # Half the successes in block 0, half in block 1: neither passes
        # alone if the threshold exceeds half a block's successes.
        dthr = schedule.constants.density_threshold(16)
        half = max(0, dthr - 1)
        fed = 0
        for offset in range(2 * schedule.block_len):
            _, _, part, _ = schedule.position(offset)
            heard = part == "density" and fed < half
            if heard:
                fed += 1
            if offset == schedule.block_len:
                fed = 0
            core.observe(offset, heard=heard, transmitted=False)
        assert not core.has_quit

    def test_reset_restores_state(self, schedule):
        core = ColoringCore(schedule)
        for offset in range(schedule.block_len):
            core.observe(offset, heard=True, transmitted=False)
        core.reset()
        assert not core.has_quit


class TestRunColoring:
    def test_all_participants_colored(self, small_square, constants, rng):
        result = run_coloring(small_square, constants, rng)
        assert np.all(result.participants)
        assert not np.any(np.isnan(result.colors))

    def test_colors_are_ladder_values(self, small_square, constants, rng):
        result = run_coloring(small_square, constants, rng)
        n = small_square.size
        legal = {
            constants.color_of_level(lv, n)
            for lv in range(constants.num_levels(n))
        }
        legal.add(constants.survivor_color)
        for c in result.distinct_colors():
            assert any(abs(c - v) < 1e-12 for v in legal)

    def test_rounds_match_schedule(self, small_square, constants, rng):
        result = run_coloring(small_square, constants, rng)
        assert result.rounds == constants.coloring_total_rounds(
            small_square.size
        )

    def test_subset_participation(self, small_square, constants, rng):
        subset = [0, 1, 2, 3]
        result = run_coloring(
            small_square, constants, rng, participants=subset
        )
        assert list(np.flatnonzero(result.participants)) == subset
        outsiders = np.flatnonzero(~result.participants)
        assert np.all(result.quit_levels[outsiders] == NOT_PARTICIPATING)
        assert np.all(np.isnan(result.colors[outsiders]))

    def test_empty_participants_rejected(self, small_square, constants, rng):
        with pytest.raises(ProtocolError):
            run_coloring(small_square, constants, rng, participants=[])

    def test_out_of_range_participants_rejected(
        self, small_square, constants, rng
    ):
        with pytest.raises(ProtocolError):
            run_coloring(small_square, constants, rng, participants=[99])

    def test_single_station(self, constants, rng):
        net = Network(np.array([[0.0, 0.0]]))
        result = run_coloring(net, constants, rng)
        # A lone station hears nothing: it must survive the whole ladder.
        assert result.quit_levels[0] == FINAL_COLOR_LEVEL
        assert result.colors[0] == constants.survivor_color

    def test_isolated_pair_far_apart_survives(self, constants, rng):
        # Two stations out of range: no receptions, playoff never passes.
        net = Network(np.array([[0.0, 0.0], [3.0, 0.0]]))
        result = run_coloring(net, constants, rng)
        assert np.all(result.quit_levels == FINAL_COLOR_LEVEL)

    def test_color_mask(self, small_square, constants, rng):
        result = run_coloring(small_square, constants, rng)
        total = sum(
            result.color_mask(c).sum() for c in result.distinct_colors()
        )
        assert total == small_square.size

    def test_reproducible(self, small_square, constants):
        a = run_coloring(small_square, constants, np.random.default_rng(3))
        b = run_coloring(small_square, constants, np.random.default_rng(3))
        assert np.array_equal(a.quit_levels, b.quit_levels)


class TestColoringNode:
    def test_non_participant_silent(self, constants):
        schedule = ColoringSchedule(constants, 4)
        node = ColoringNode(0, schedule, participating=False)
        assert node.transmission(0) == (0.0, None)
        assert node.finished

    def test_outside_window_silent(self, constants):
        schedule = ColoringSchedule(constants, 4)
        node = ColoringNode(0, schedule, start_round=100)
        assert node.transmission(0) == (0.0, None)
        assert node.transmission(100 + schedule.total_rounds)[0] == 0.0

    def test_payload_passthrough(self, constants):
        schedule = ColoringSchedule(constants, 4)
        node = ColoringNode(0, schedule, payload=("msg", 7))
        _, payload = node.transmission(0)
        assert payload == ("msg", 7)


class TestProperties:
    @pytest.fixture(scope="class")
    def colored(self, small_square, constants):
        rng = np.random.default_rng(11)
        return run_coloring(small_square, constants, rng)

    def test_lemma1_bounded(self, small_square, colored):
        assert 0 < lemma1_max_color_mass(small_square, colored) < 2.0

    def test_lemma1_monotone_radius(self, small_square, colored):
        small = lemma1_max_color_mass(small_square, colored, radius=0.5)
        large = lemma1_max_color_mass(small_square, colored, radius=1.0)
        assert large >= small

    def test_lemma2_positive(self, small_square, colored):
        assert lemma2_min_best_mass(small_square, colored) > 0

    def test_lemma2_per_station_vector(self, small_square, colored):
        masses = lemma2_best_masses(small_square, colored, radius=0.4)
        assert masses.shape == (small_square.size,)
        assert np.all(masses > 0)

    def test_lemma2_min_is_vector_min(self, small_square, colored):
        masses = lemma2_best_masses(small_square, colored, radius=0.4)
        assert lemma2_min_best_mass(
            small_square, colored, radius=0.4
        ) == pytest.approx(masses.min())

    def test_every_station_best_mass_at_least_own_color(
        self, small_square, colored
    ):
        masses = lemma2_best_masses(small_square, colored, radius=0.0)
        for v in range(small_square.size):
            assert masses[v] >= colored.colors[v] - 1e-12

    def test_report_fields(self, small_square, colored):
        rep = coloring_report(small_square, colored)
        assert rep.n == small_square.size
        assert rep.num_participants == small_square.size
        assert rep.num_colors_used <= rep.num_colors_available
        assert rep.lemma1_mass <= rep.all_colors_mass + 1e-12

    def test_size_mismatch_rejected(self, small_chain, colored):
        with pytest.raises(AnalysisError):
            lemma1_max_color_mass(small_chain, colored)
