"""Tests for the traffic-injection workload engine (DESIGN.md §11.6).

The load-bearing properties:

* **Flow conservation** — every injected packet is delivered, queued,
  or dropped; the accounting closes under every MAC and load level.
* **Jain bounds** — the fairness index lives in ``[1/k, 1]`` and hits
  its extremes on the degenerate allocations.
* **Latency behaves** — multihop delivery takes at least one slot per
  hop, and raising the offered load never makes the (contended) mean
  latency smaller.
* **Seeded reproducibility** — a workload replays bit-for-bit across
  ``jobs=1`` / ``jobs=N`` grid execution, cache replay, and the
  resident-service path (arrivals drawn up front in flow order, queues
  advanced in station order, MAC draws round-keyed).
* **Cache-key separation** — flows, arrival processes, MAC and rate
  table all contribute identity to the grid point key.
"""

import asyncio
import contextlib
import threading

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.fastsim import run_sweep
from repro.fastsim.cache import point_key
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.mac import CSMA, RateTable, SlottedAloha, TdmaFromColoring
from repro.network.network import Network
from repro.traffic import (
    CBR,
    Flow,
    FlowStats,
    OnOff,
    Poisson,
    TrafficResult,
    jain_index,
    run_traffic,
)


def _chain(n=4, gap=0.6):
    coords = np.stack(
        [np.arange(n) * gap, np.zeros(n)], axis=1
    )
    return Network(coords)


def _converge_net():
    """Two senders converging on one receiver, all sense-adjacent."""
    return Network(np.array([[0.0, 0.0], [0.55, 0.0], [0.9, 0.0]]))


class TestArrivals:
    def test_identity_separates_processes(self):
        processes = [
            Poisson(1.0), Poisson(2.0), CBR(1.0), CBR(0.5),
            OnOff(1.0), OnOff(1.0, p_on=0.5), OnOff(1.0, start_on=False),
        ]
        assert len({p.identity() for p in processes}) == len(processes)
        assert len({p.fingerprint() for p in processes}) == len(processes)

    def test_draws_reproducible(self):
        for process in (Poisson(1.3), CBR(0.7), OnOff(2.0)):
            a = process.draw(np.random.default_rng(5), 50)
            b = process.draw(np.random.default_rng(5), 50)
            assert np.array_equal(a, b)
            assert a.shape == (50,)
            assert np.all(a >= 0)

    def test_cbr_is_deterministic_and_exact(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state["state"]["state"]
        counts = CBR(0.5).draw(rng, 10)
        after = rng.bit_generator.state["state"]["state"]
        assert before == after  # CBR consumes no randomness
        assert counts.sum() == 5
        assert np.all(counts <= 1)

    def test_onoff_stream_consumption_fixed(self):
        # The on/off chain masks counts instead of drawing lazily, so
        # the stream position after a draw depends only on `rounds` —
        # never on the chain's realized state.
        rng_a = np.random.default_rng(9)
        OnOff(1.5, p_on=0.05, p_off=0.9).draw(rng_a, 40)
        rng_b = np.random.default_rng(9)
        OnOff(1.5, p_on=0.9, p_off=0.05).draw(rng_b, 40)
        assert rng_a.random() == rng_b.random()

    def test_onoff_off_rounds_are_silent(self):
        counts = OnOff(5.0, p_on=0.2, p_off=0.2, start_on=False).draw(
            np.random.default_rng(1), 60
        )
        assert counts.sum() > 0
        assert (counts == 0).any()

    def test_validation(self):
        with pytest.raises(ProtocolError):
            Poisson(-1.0)
        with pytest.raises(ProtocolError):
            CBR(-0.5)
        with pytest.raises(ProtocolError):
            OnOff(1.0, p_on=1.5)
        with pytest.raises(ProtocolError):
            OnOff(0.0)

    def test_equality_repr_and_hash(self):
        assert Poisson(1.0) == Poisson(1.0) != Poisson(2.0)
        assert Poisson(1.0) != CBR(1.0)
        assert "Poisson" in repr(Poisson(1.0))
        assert len({CBR(0.5), CBR(0.5), CBR(1.0)}) == 2


class TestJain:
    def test_bounds_and_extremes(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        xs = [0.2, 0.9, 0.4, 0.1]
        assert 1.0 / len(xs) <= jain_index(xs) <= 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_index([0.5, -0.1])


class TestRunTrafficValidation:
    def test_bad_arguments(self):
        net = _chain()
        flow = Flow(0, 3, CBR(0.5))
        rng = np.random.default_rng(0)
        with pytest.raises(ProtocolError):
            run_traffic(net, [flow], 0, rng)
        with pytest.raises(ProtocolError):
            run_traffic(net, [], 10, rng)
        with pytest.raises(ProtocolError):
            run_traffic(net, [flow], 10, rng, queue_cap=0)
        with pytest.raises(ProtocolError):
            run_traffic(net, [Flow(0, 9, CBR(0.5))], 10, rng)
        with pytest.raises(ProtocolError):
            run_traffic(net, [Flow(2, 2, CBR(0.5))], 10, rng)

    def test_no_path_raises(self):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        with pytest.raises(ProtocolError):
            run_traffic(
                net, [Flow(0, 1, CBR(0.5))], 10,
                np.random.default_rng(0),
            )


class TestConservation:
    @pytest.mark.parametrize("mac", [
        None,
        SlottedAloha(0.6, seed=2),
        CSMA(persist=0.7, seed=2),
        TdmaFromColoring(seed=2),
    ], ids=["bare", "aloha", "csma", "tdma"])
    def test_every_packet_accounted(self, mac):
        net = _converge_net()
        flows = [Flow(0, 1, Poisson(0.8)), Flow(2, 1, Poisson(0.8))]
        result = run_traffic(
            net, flows, 200, np.random.default_rng(4), mac=mac,
            queue_cap=8,
        )
        assert result.conservation_ok()
        assert result.transmissions >= result.collisions >= 0
        for fs in result.flows:
            assert fs.injected == (
                fs.delivered + fs.queued + fs.dropped
            )

    def test_queue_cap_drops_are_counted(self):
        # Two saturated always-on senders, equidistant from the shared
        # receiver, collide every slot (neither captures): queues fill
        # to the cap and every further arrival is dropped.
        net = Network(np.array([[0.0, 0.0], [0.65, 0.0], [1.30, 0.0]]))
        flows = [Flow(0, 1, CBR(1.0)), Flow(2, 1, CBR(1.0))]
        result = run_traffic(
            net, flows, 50, np.random.default_rng(0),
            mac=SlottedAloha(), queue_cap=1,
        )
        assert result.delivered() == 0
        for fs in result.flows:
            assert fs.injected == 50
            assert fs.queued == 1
            assert fs.dropped == 49
        assert result.conservation_ok()

    def test_shared_relay_crossing_flows(self):
        # Two saturated flows cross the middle of a 3-chain in opposite
        # directions, under adaptive rates: a slot's budget only drains
        # consecutive head-of-line packets riding the *same* next-hop
        # link (the relay never splits one slot across two links), and
        # forwards beyond the relay's queue cap are dropped — counted,
        # never silently lost.
        net = _chain(n=3)
        flows = [Flow(0, 2, CBR(1.0)), Flow(2, 0, CBR(1.0))]
        result = run_traffic(
            net, flows, 300, np.random.default_rng(5),
            mac=SlottedAloha(0.5, seed=8),
            rate_table=RateTable(), queue_cap=2,
        )
        assert result.conservation_ok()
        assert all(fs.delivered > 0 for fs in result.flows)
        assert sum(fs.dropped for fs in result.flows) > 0


class TestFlowStatsAccessors:
    def test_empty_counters(self):
        fs = FlowStats(flow=Flow(0, 1, CBR(1.0)), path=(0, 1))
        assert np.isnan(fs.mean_latency())
        assert fs.throughput(0) == 0.0
        assert fs.conserved()
        empty = TrafficResult(
            flows=[fs], rounds=0, transmissions=0, collisions=0
        )
        assert empty.collision_rate() == 0.0

    def test_populated_counters(self):
        fs = FlowStats(
            flow=Flow(0, 1, CBR(1.0)), path=(0, 1),
            injected=3, delivered=2, queued=1, latencies=[1, 3],
        )
        assert fs.mean_latency() == 2.0
        result = TrafficResult(
            flows=[fs], rounds=4, transmissions=8, collisions=2
        )
        assert result.collision_rate() == 0.25


class TestLatency:
    def test_multihop_latency_is_hop_count_when_uncontended(self):
        net = _chain(n=4)
        flows = [Flow(0, 3, CBR(0.2))]  # one packet every 5 slots
        result = run_traffic(
            net, flows, 100, np.random.default_rng(0)
        )
        stats = result.flows[0]
        assert stats.delivered > 0
        assert len(stats.path) == 4
        assert all(lat == 3 for lat in stats.latencies)
        assert result.mean_latency() == pytest.approx(3.0)

    def test_latency_monotone_in_offered_load(self):
        net = _converge_net()

        def mean_latency(rate):
            flows = [Flow(0, 1, CBR(rate)), Flow(2, 1, CBR(rate))]
            result = run_traffic(
                net, flows, 400, np.random.default_rng(7),
                mac=CSMA(persist=0.8, seed=5), queue_cap=32,
            )
            assert result.delivered() > 0
            return result.mean_latency()

        assert mean_latency(0.1) <= mean_latency(0.5) <= mean_latency(1.0)

    def test_mean_latency_nan_when_nothing_delivered(self):
        # Equidistant saturated senders: guaranteed mutual collisions.
        net = Network(np.array([[0.0, 0.0], [0.65, 0.0], [1.30, 0.0]]))
        flows = [Flow(0, 1, CBR(1.0)), Flow(2, 1, CBR(1.0))]
        result = run_traffic(
            net, flows, 20, np.random.default_rng(0), mac=SlottedAloha()
        )
        assert np.isnan(result.mean_latency())


class TestRateTableIntegration:
    def test_high_sinr_carries_bursts(self):
        # A single overloaded single-hop flow: without rate adaptation
        # at most one packet leaves per slot; the short link's SINR
        # clears the top threshold, so the table drains faster.
        net = Network(np.array([[0.0, 0.0], [0.3, 0.0]]))
        flows = [Flow(0, 1, Poisson(2.0))]
        plain = run_traffic(
            net, flows, 100, np.random.default_rng(3), queue_cap=256
        )
        adaptive = run_traffic(
            net, flows, 100, np.random.default_rng(3),
            rate_table=RateTable(), queue_cap=256,
        )
        assert plain.flows[0].injected == adaptive.flows[0].injected
        assert adaptive.delivered() > plain.delivered()
        assert adaptive.conservation_ok() and plain.conservation_ok()


class TestSweep:
    def test_traffic_sweep_shape_and_headline(self):
        net = _converge_net()
        flows = [Flow(0, 1, Poisson(0.5)), Flow(2, 1, Poisson(0.5))]
        sweep = run_sweep(
            "traffic", net, 3, 11, flows=flows, rounds=80,
            mac=CSMA(persist=0.8, seed=1),
        )
        assert sweep.kind == "traffic"
        assert sweep.n_replications == 3
        assert len(sweep.outcomes) == 3
        for rounds, ok, outcome in zip(
            sweep.rounds, sweep.success, sweep.outcomes
        ):
            assert ok == (
                outcome.conservation_ok() and outcome.delivered() > 0
            )
            if ok:
                assert rounds == pytest.approx(outcome.mean_latency())

    def test_replications_differ_with_random_arrivals(self):
        net = _converge_net()
        flows = [Flow(0, 1, Poisson(0.5)), Flow(2, 1, Poisson(0.5))]
        sweep = run_sweep("traffic", net, 4, 3, flows=flows, rounds=120)
        injected = {
            sum(fs.injected for fs in out.flows)
            for out in sweep.outcomes
        }
        assert len(injected) > 1

    def test_cache_keys_split_traffic_identity(self):
        net = _converge_net()
        base = {
            "flows": [Flow(0, 1, Poisson(0.5))],
            "rounds": 100,
        }

        def key(extra):
            return point_key(
                kind="traffic",
                network_fingerprint=net.fingerprint(),
                constants=None,
                seed=1,
                n_replications=2,
                kwargs={**base, **extra},
            )

        keys = {
            key({}),
            key({"flows": [Flow(0, 1, Poisson(0.9))]}),
            key({"flows": [Flow(2, 1, Poisson(0.5))]}),
            key({"mac": CSMA(seed=1)}),
            key({"mac": CSMA(seed=2)}),
            key({"rate_table": RateTable()}),
            key({"rounds": 200}),
        }
        assert len(keys) == 7


def _traffic_spec(seed=2014):
    flows = [Flow(0, 1, Poisson(0.6)), Flow(2, 1, Poisson(0.6))]
    points = [
        GridPoint(
            kind="traffic",
            deployment=lambda rng: Network(
                np.array([[0.0, 0.0], [0.55, 0.0], [0.9, 0.0]])
            ),
            n_replications=2,
            label=f"traffic-{label}",
            kwargs={"flows": flows, "rounds": 60, "mac": mac},
            share_deployment="traffic-net",
        )
        for label, mac in [
            ("csma", CSMA(persist=0.8, seed=3)),
            ("tdma", TdmaFromColoring(seed=3)),
        ]
    ]
    return GridSpec(points=points, seed=seed, name="traffic-grid")


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(
            ra.sweep.rounds, rb.sweep.rounds, equal_nan=True
        )
        assert np.array_equal(ra.sweep.success, rb.sweep.success)
        for oa, ob in zip(ra.sweep.outcomes, rb.sweep.outcomes):
            assert [fs.delivered for fs in oa.flows] == [
                fs.delivered for fs in ob.flows
            ]
            assert [fs.latencies for fs in oa.flows] == [
                fs.latencies for fs in ob.flows
            ]


class _ServerThread:
    """A service daemon on a background thread (test_service idiom)."""

    def __init__(self, **server_kwargs):
        self.address = None
        self._ready = threading.Event()
        self._loop = None
        self._server = None
        self._thread = threading.Thread(
            target=self._run, kwargs=server_kwargs, daemon=True
        )
        self._thread.start()
        assert self._ready.wait(20), "service thread failed to start"

    def _run(self, **server_kwargs):
        from repro.service import ServiceServer

        async def main():
            self._server = ServiceServer(**server_kwargs)
            await self._server.start_tcp("127.0.0.1", 0)
            host, port = self._server.tcp_address
            self.address = f"tcp:{host}:{port}"
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._server.serve_forever()

        asyncio.run(main())

    def stop(self):
        self._loop.call_soon_threadsafe(self._server.shutdown)
        self._thread.join(20)


@contextlib.contextmanager
def _server_thread(**server_kwargs):
    thread = _ServerThread(**server_kwargs)
    try:
        yield thread.address
    finally:
        thread.stop()


class TestGridAndService:
    def test_jobs_identity_and_cache_replay(self, tmp_path):
        serial = run_grid(_traffic_spec(), jobs=1, cache_dir=str(tmp_path))
        replayed = run_grid(
            _traffic_spec(), jobs=2, cache_dir=str(tmp_path)
        )
        assert all(r.cached for r in replayed)
        parallel = run_grid(_traffic_spec(), jobs=2)
        _assert_same_results(serial, replayed)
        _assert_same_results(serial, parallel)

    def test_service_path_matches_local(self):
        local = run_grid(_traffic_spec(), jobs=1)
        with _server_thread() as address:
            served = run_grid(_traffic_spec(), service=address)
        _assert_same_results(local, served)
        assert not any(r.cached for r in served)
