"""Hypothesis properties of the MAC layer (DESIGN.md §11).

Quantified over random deployments, random intent masks, and random
model knobs:

* every session's output is a **subset of the intents** (MACs only
  remove transmitters);
* CSMA transmitters form an **independent set up to backoff ties** in
  the sense graph — two transmitting sense-neighbours always hold equal
  backoffs, and a transmitter never yields to a larger one;
* TDMA slots are a **proper coloring of the interference graph** and
  partition each frame (every station transmits exactly once per frame
  when saturated);
* :class:`~repro.mac.RateTable` lookups are **monotone** in SINR and
  bounded by the table's extremes;
* arbitration is a **pure function of ``(seed, round)``** — replaying
  any round of any session gives the identical mask.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac import CSMA, RateTable, SlottedAloha, TdmaFromColoring
from repro.network.network import Network

SIDES = {16: 1.6, 24: 2.0, 32: 2.2}


def _net(seed: int, n: int) -> Network:
    rng = np.random.default_rng(seed)
    while True:
        coords = rng.uniform(0.0, SIDES[n], size=(n, 2))
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        np.fill_diagonal(dist, np.inf)
        if dist.min() > 1e-5:
            return Network(coords)


def _intents(seed: int, shape, density: float) -> np.ndarray:
    return np.random.default_rng(seed).random(shape) < density


MODEL = st.sampled_from(["aloha", "csma", "tdma"])


def _model(kind: str, seed: int):
    if kind == "aloha":
        return SlottedAloha(0.7, seed=seed)
    if kind == "csma":
        return CSMA(cw=4, seed=seed)
    return TdmaFromColoring(seed=seed)


@given(
    net_seed=st.integers(0, 50),
    n=st.sampled_from([16, 24]),
    kind=MODEL,
    mac_seed=st.integers(0, 20),
    intent_seed=st.integers(0, 50),
    density=st.floats(0.1, 1.0),
    round_no=st.integers(0, 200),
)
@settings(max_examples=40, deadline=None)
def test_output_subset_of_intents_and_replayable(
    net_seed, n, kind, mac_seed, intent_seed, density, round_no
):
    net = _net(net_seed, n)
    model = _model(kind, mac_seed)
    intents = _intents(intent_seed, (2, n), density)
    tx = model.session(net).transmit_mask(round_no, intents, net)
    assert tx.shape == intents.shape
    assert not np.any(tx & ~intents)
    replay = model.session(net).transmit_mask(round_no, intents, net)
    assert np.array_equal(tx, replay)


@given(
    net_seed=st.integers(0, 50),
    n=st.sampled_from([16, 24, 32]),
    mac_seed=st.integers(0, 20),
    cw=st.integers(2, 12),
    intent_seed=st.integers(0, 50),
    round_no=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_csma_independent_set_up_to_ties(
    net_seed, n, mac_seed, cw, intent_seed, round_no
):
    net = _net(net_seed, n)
    session = CSMA(cw=cw, seed=mac_seed).session(net)
    intents = _intents(intent_seed, (1, n), 0.8)
    tx = session.transmit_mask(round_no, intents, net)[0]
    backoff = session.round_backoff(round_no)
    for i, j in zip(session.sense_i.tolist(), session.sense_j.tolist()):
        if tx[i] and tx[j]:
            assert backoff[i] == backoff[j]
        elif tx[i] and intents[0, j]:
            assert backoff[i] <= backoff[j]
        elif tx[j] and intents[0, i]:
            assert backoff[j] <= backoff[i]


@given(
    net_seed=st.integers(0, 50),
    n=st.sampled_from([16, 24]),
    mac_seed=st.integers(0, 20),
    scale=st.floats(1.0, 3.0),
)
@settings(max_examples=25, deadline=None)
def test_tdma_proper_coloring_and_frame_partition(
    net_seed, n, mac_seed, scale
):
    net = _net(net_seed, n)
    session = TdmaFromColoring(
        interference_scale=scale, seed=mac_seed
    ).session(net)
    ii, jj = session.interference_pairs
    assert np.all(session.slots[ii] != session.slots[jj])
    assert set(np.unique(session.slots)) <= set(range(session.frame))
    saturated = np.ones((1, n), dtype=bool)
    counts = np.zeros(n, dtype=int)
    for round_no in range(session.frame):
        counts += session.transmit_mask(round_no, saturated, net)[0]
    assert np.all(counts == 1)


@given(
    thresholds=st.lists(
        st.floats(0.5, 50.0), min_size=1, max_size=5, unique=True
    ),
    sinrs=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_rate_table_monotone_and_bounded(thresholds, sinrs):
    thresholds = sorted(thresholds)
    rates = tuple(range(2, 2 + len(thresholds)))
    table = RateTable(thresholds=tuple(thresholds), rates=rates)
    values = sorted(sinrs)
    looked_up = [table.rate_for(s) for s in values]
    assert looked_up == sorted(looked_up)
    assert all(1 <= r <= rates[-1] for r in looked_up)
    assert table.rate_for(thresholds[0] - 1e-9) == 1
    assert table.rate_for(thresholds[-1]) == rates[-1]
