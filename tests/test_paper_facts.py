"""Numerical verification of the paper's numbered Facts (Sect. 2).

Each test constructs the situation a Fact describes and checks the
conclusion against the implemented channel / probability machinery —
tying the codebase to the paper's analysis lemma by lemma.
"""

import math

import numpy as np
import pytest

from repro.geometry.metric import pairwise_distances
from repro.sinr.gain import gain_matrix
from repro.sinr.params import SINRParameters
from repro.sinr.reception import NO_SENDER, resolve_reception

PARAMS = SINRParameters.default()  # alpha=3, beta=1, N=1, P=1, r=1, eps=0.3


def _gains(coords):
    return gain_matrix(
        pairwise_distances(np.asarray(coords, dtype=float)),
        PARAMS.power,
        PARAMS.alpha,
    )


class TestFact1:
    """A transmission decodable everywhere within 1 - eps/2 of the sender
    reaches every neighbour of every station in B(sender, eps/2)."""

    def test_coverage_geometry(self):
        eps = PARAMS.eps
        # Station w within eps/2 of sender v; u a neighbour of w
        # (dist(w, u) <= 1 - eps). Then dist(v, u) <= 1 - eps/2.
        rng = np.random.default_rng(0)
        for _ in range(200):
            v = np.zeros(2)
            w = rng.normal(size=2)
            w = w / np.linalg.norm(w) * rng.uniform(0, eps / 2)
            direction = rng.normal(size=2)
            u = w + direction / np.linalg.norm(direction) * rng.uniform(
                0, 1 - eps
            )
            assert np.linalg.norm(u - v) <= 1 - eps / 2 + 1e-12

    def test_lone_transmitter_covers_that_radius(self):
        # With no interference, a transmitter is decodable at 1 - eps/2.
        coords = [[0.0, 0.0], [1.0 - PARAMS.eps / 2, 0.0]]
        heard = resolve_reception(
            _gains(coords), np.array([0]), PARAMS.noise, PARAMS.beta
        )
        assert heard[1] == 0


class TestFact2:
    """If interference at u is at most N/(2 x^alpha), u hears a
    transmitter at distance x (for x <= 2^(-1/alpha))."""

    @pytest.mark.parametrize("x", [0.3, 0.5, 0.7, 2 ** (-1 / 3.0)])
    def test_reception_under_interference_budget(self, x):
        # Sender at distance x from listener; one interferer placed so
        # its contribution is just under N / (2 x^alpha).
        budget = PARAMS.noise / (2 * x ** PARAMS.alpha)
        d_interferer = (PARAMS.power / (0.95 * budget)) ** (1 / PARAMS.alpha)
        coords = [
            [0.0, 0.0],                  # listener
            [x, 0.0],                    # sender
            [-d_interferer, 0.0],        # interferer
        ]
        heard = resolve_reception(
            _gains(coords), np.array([1, 2]), PARAMS.noise, PARAMS.beta
        )
        assert heard[0] == 1

    def test_fails_beyond_the_fact_regime(self):
        # At interference ~4x the budget, the intended sender at distance
        # x is no longer decodable (the interferer may capture instead).
        x = 0.7
        budget = PARAMS.noise / (2 * x ** PARAMS.alpha)
        d_interferer = (PARAMS.power / (4 * budget)) ** (1 / PARAMS.alpha)
        coords = [[0.0, 0.0], [x, 0.0], [-d_interferer, 0.0]]
        heard = resolve_reception(
            _gains(coords), np.array([1, 2]), PARAMS.noise, PARAMS.beta
        )
        assert heard[0] != 1


class TestFact3:
    """If interference at u is at most N*alpha*x, u hears a transmitter
    at distance 1 - x."""

    @pytest.mark.parametrize("x", [0.05, 0.1, 0.2, 0.3])
    def test_reception_near_full_range(self, x):
        budget = PARAMS.noise * PARAMS.alpha * x
        d_interferer = (PARAMS.power / (0.95 * budget)) ** (1 / PARAMS.alpha)
        coords = [[0.0, 0.0], [1.0 - x, 0.0], [-d_interferer, 0.0]]
        heard = resolve_reception(
            _gains(coords), np.array([1, 2]), PARAMS.noise, PARAMS.beta
        )
        assert heard[0] == 1

    def test_bernoulli_inequality_direction(self):
        # The proof uses (1+x)^alpha >= 1 + alpha*x.
        for x in np.linspace(0, 1, 50):
            assert (1 + x) ** PARAMS.alpha >= 1 + PARAMS.alpha * x - 1e-12


class TestFact4:
    """If sum of p_v over A is s <= 1/2, P(exactly one of A transmits)
    is between s/2 and s."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_monte_carlo_bounds(self, seed):
        rng = np.random.default_rng(seed)
        k = rng.integers(2, 12)
        probs = rng.uniform(0, 0.08, size=k)
        probs *= min(1.0, 0.5 / probs.sum())
        s = probs.sum()
        trials = 200000
        draws = rng.random((trials, k)) < probs
        exactly_one = (draws.sum(axis=1) == 1).mean()
        margin = 4 * math.sqrt(0.25 / trials)
        assert exactly_one >= s / 2 - margin
        assert exactly_one <= s + margin

    def test_exact_formula_two_stations(self):
        p, q = 0.2, 0.3
        exactly_one = p * (1 - q) + q * (1 - p)
        s = p + q
        assert s / 2 <= exactly_one <= s


class TestFact5:
    """With all p_v <= 1/2, P(nobody transmits) >= (1/4)^(sum p_v)."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_monte_carlo_bound(self, seed):
        rng = np.random.default_rng(seed)
        k = rng.integers(2, 10)
        probs = rng.uniform(0, 0.5, size=k)
        trials = 100000
        draws = rng.random((trials, k)) < probs
        none = (draws.sum(axis=1) == 0).mean()
        bound = 0.25 ** probs.sum()
        margin = 4 * math.sqrt(0.25 / trials)
        assert none >= bound - margin

    def test_analytic_inequality(self):
        # (1 - p) >= (1/4)^p for p in [0, 1/2].
        for p in np.linspace(0, 0.5, 100):
            assert (1 - p) >= 0.25 ** p - 1e-12


class TestFact6:
    """Bounded density (mass <= C per unit ball) implies effective
    communication: a lone transmitter in B(v, 2/3) is heard w.p. >= 1/2."""

    def test_effective_communication_empirically(self):
        rng = np.random.default_rng(7)
        # Dense-ish deployment; assign probabilities with per-unit-ball
        # mass ~0.3 (the calibrated C1 regime).
        n = 80
        coords = rng.uniform(0, 4, size=(n, 2))
        coords[0] = [2.0, 2.0]          # listener v
        coords[1] = [2.4, 2.0]          # sender w at distance 0.4 < 2/3
        dist = pairwise_distances(coords)
        gains = gain_matrix(dist, PARAMS.power, PARAMS.alpha)
        ball_sizes = (dist <= 1.0).sum(axis=1)
        probs = np.full(n, 0.3) / ball_sizes.max()
        probs[0] = 0.0                  # v listens
        probs[1] = 0.0                  # w's transmission is conditioned on
        successes = 0
        trials = 3000
        for _ in range(trials):
            others = np.flatnonzero(rng.random(n) < probs)
            tx = np.concatenate([[1], others])
            heard = resolve_reception(gains, tx, PARAMS.noise, PARAMS.beta)
            if heard[0] == 1:
                successes += 1
        assert successes / trials >= 0.5
