"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    DeploymentError,
    DisconnectedNetworkError,
    GeometryError,
    MetricError,
    ProtocolError,
    ReproError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc",
    [
        GeometryError,
        MetricError,
        DeploymentError,
        DisconnectedNetworkError,
        SimulationError,
        ProtocolError,
        BudgetExceededError,
        AnalysisError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    if exc is BudgetExceededError:
        instance = exc("boom", rounds=5)
    else:
        instance = exc("boom")
    assert isinstance(instance, ReproError)


def test_metric_error_is_geometry_error():
    assert issubclass(MetricError, GeometryError)


def test_disconnected_is_deployment_error():
    assert issubclass(DisconnectedNetworkError, DeploymentError)


def test_budget_exceeded_carries_progress():
    err = BudgetExceededError("out of rounds", rounds=100, progress=0.75)
    assert err.rounds == 100
    assert err.progress == 0.75
    assert "out of rounds" in str(err)


def test_budget_exceeded_default_progress():
    err = BudgetExceededError("x", rounds=1)
    assert err.progress == 0.0


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise ProtocolError("caught by base")
