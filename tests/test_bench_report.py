"""Tests for tools/bench_report.py (BENCH artifact -> trajectory merge)."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tools")
)
import bench_report  # noqa: E402  (tools/ is not a package)


def _artifact(tmp_path, name, benches):
    payload = {
        "machine_info": {"node": "ci", "python_version": "3.x",
                         "cpu": {"count": 2}},
        "benchmarks": [
            {
                "name": bench_name,
                "stats": {"mean": mean, "min": mean, "stddev": 0.0,
                          "rounds": 1},
                "extra_info": extra,
            }
            for bench_name, mean, extra in benches
        ],
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestMerge:
    def test_merges_across_artifacts(self, tmp_path):
        a = _artifact(tmp_path, "BENCH_grid.json",
                      [("bench_a", 1.5, {"jobs": 4})])
        b = _artifact(tmp_path, "BENCH_distrib.json",
                      [("bench_b", 0.5, {})])
        snap = bench_report.merge_snapshot([a, b], "abc123")
        assert snap["label"] == "abc123"
        assert set(snap["benchmarks"]) == {"bench_a", "bench_b"}
        assert snap["benchmarks"]["bench_a"]["mean_s"] == 1.5
        assert snap["benchmarks"]["bench_a"]["source"] == "BENCH_grid.json"
        assert snap["sources"] == ["BENCH_distrib.json", "BENCH_grid.json"]
        assert snap["machine"]["node"] == "ci"

    def test_non_benchmark_json_rejected(self, tmp_path):
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text(json.dumps({"not": "a benchmark"}))
        with pytest.raises(ValueError, match="not a pytest-benchmark"):
            bench_report.merge_snapshot([bogus], "x")


class TestTrajectory:
    def test_append_then_replace_by_label(self, tmp_path):
        a = _artifact(tmp_path, "BENCH_a.json", [("bench", 1.0, {})])
        out = tmp_path / "TRAJECTORY.json"
        bench_report.append_snapshot(
            out, bench_report.merge_snapshot([a], "one")
        )
        bench_report.append_snapshot(
            out, bench_report.merge_snapshot([a], "two")
        )
        trajectory = json.loads(out.read_text())
        assert [s["label"] for s in trajectory] == ["one", "two"]
        # Re-running a label replaces its snapshot, not duplicates it.
        b = _artifact(tmp_path, "BENCH_b.json", [("bench", 2.0, {})])
        bench_report.append_snapshot(
            out, bench_report.merge_snapshot([b], "one")
        )
        trajectory = json.loads(out.read_text())
        assert [s["label"] for s in trajectory] == ["two", "one"]
        assert trajectory[-1]["benchmarks"]["bench"]["mean_s"] == 2.0

    def test_cli_end_to_end(self, tmp_path, capsys):
        a = _artifact(tmp_path, "BENCH_a.json", [("bench", 1.0, {})])
        out = tmp_path / "TRAJECTORY.json"
        assert bench_report.main(
            [str(a), "--output", str(out), "--label", "sha1"]
        ) == 0
        printed = capsys.readouterr().out
        assert "snapshot 'sha1'" in printed and "bench" in printed
        assert json.loads(out.read_text())[0]["label"] == "sha1"

    def test_cli_print_only_writes_nothing(self, tmp_path, capsys):
        a = _artifact(tmp_path, "BENCH_a.json", [("bench", 1.0, {})])
        out = tmp_path / "TRAJECTORY.json"
        assert bench_report.main(
            [str(a), "--output", str(out), "--print"]
        ) == 0
        assert not out.exists()
        assert "snapshot 'local'" in capsys.readouterr().out

    def test_corrupt_trajectory_rejected(self, tmp_path):
        a = _artifact(tmp_path, "BENCH_a.json", [("bench", 1.0, {})])
        out = tmp_path / "TRAJECTORY.json"
        out.write_text(json.dumps({"oops": 1}))
        with pytest.raises(ValueError, match="must be a JSON list"):
            bench_report.append_snapshot(
                out, bench_report.merge_snapshot([a], "x")
            )
