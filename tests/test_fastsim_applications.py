"""Tests for the vectorized Sect. 5 applications.

Unit behaviour of ``fast_wakeup`` / ``fast_colored_wakeup`` /
``fast_consensus`` / ``fast_leader_election``, plus cross-validation
against the ``repro.core`` reference implementations in the style of the
coloring/broadcast checks in ``test_fastsim.py``: identical
termination/safety properties on every trial, and round-count
distributions on the same scale (the statistical-equivalence contract of
DESIGN.md §6).  The heavier distribution comparisons carry the ``slow``
marker so CI's fast lane can skip them.
"""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.core.consensus import run_consensus
from repro.core.leader_election import run_leader_election
from repro.core.outcome import NEVER_INFORMED
from repro.core.wakeup import run_adhoc_wakeup, run_colored_wakeup
from repro.deploy import uniform_chain
from repro.errors import ProtocolError
from repro.fastsim import (
    fast_adhoc_wakeup,
    fast_colored_wakeup,
    fast_coloring,
    fast_consensus,
    fast_leader_election,
    fast_wakeup,
)
from repro.sim.wakeup import WakeupSchedule


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


@pytest.fixture(scope="module")
def chain():
    return uniform_chain(8, gap=0.5)


@pytest.fixture(scope="module")
def chain_colors(chain, constants):
    result = fast_coloring(chain, constants, np.random.default_rng(5))
    return np.where(np.isnan(result.colors), 0.0, result.colors)


class TestFastAdhocWakeup:
    def test_alias(self):
        assert fast_wakeup is fast_adhoc_wakeup

    def test_single_waker_wakes_all(self, chain, constants, rng):
        schedule = WakeupSchedule.single(chain.size, 0)
        out = fast_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["wakeup_time"] >= 0
        assert out.completion_round == int(out.informed_round.max())

    def test_all_at_zero_instant(self, chain, constants, rng):
        schedule = WakeupSchedule.all_at(chain.size)
        out = fast_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["wakeup_time"] == 0

    def test_staggered_wakes_all(self, chain, constants, rng):
        schedule = WakeupSchedule.staggered(
            chain.size, spread=50, rng=rng, fraction=0.5
        )
        out = fast_wakeup(chain, schedule, constants, rng)
        assert out.success

    def test_wake_time_measured_from_first_wake(self, chain, constants, rng):
        schedule = WakeupSchedule.single(chain.size, 0, round_no=40)
        out = fast_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["first_wake"] == 40
        assert (
            out.extras["wakeup_time"] == out.completion_round - 40
        )

    def test_budget_failure_reported(self, chain, constants, rng):
        schedule = WakeupSchedule.single(chain.size, 0)
        out = fast_wakeup(chain, schedule, constants, rng, round_budget=2)
        assert not out.success
        assert out.completion_round == NEVER_INFORMED
        assert out.extras["wakeup_time"] == -1

    def test_schedule_size_mismatch(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            fast_wakeup(
                chain, WakeupSchedule.single(chain.size + 1, 0),
                constants, rng,
            )

    def test_reproducible(self, chain, constants):
        schedule = WakeupSchedule.single(chain.size, 0)
        a = fast_wakeup(chain, schedule, constants, np.random.default_rng(9))
        b = fast_wakeup(chain, schedule, constants, np.random.default_rng(9))
        assert np.array_equal(a.informed_round, b.informed_round)


class TestFastColoredWakeup:
    def test_initiators_spread_message(self, chain, constants,
                                       chain_colors, rng):
        out = fast_colored_wakeup(chain, [0], chain_colors, constants, rng)
        assert out.success
        assert out.informed_round[0] == out.extras["aux_coloring_rounds"]

    def test_no_refresh_skips_aux_stage(self, chain, constants,
                                        chain_colors, rng):
        out = fast_colored_wakeup(
            chain, [0], chain_colors, constants, rng, refresh_coloring=False
        )
        assert out.extras["aux_coloring_rounds"] == 0

    def test_needs_initiators(self, chain, constants, chain_colors, rng):
        with pytest.raises(ProtocolError):
            fast_colored_wakeup(chain, [], chain_colors, constants, rng)

    def test_initiator_out_of_range(self, chain, constants,
                                    chain_colors, rng):
        with pytest.raises(ProtocolError):
            fast_colored_wakeup(
                chain, [chain.size], chain_colors, constants, rng
            )

    def test_bad_base_colors_shape(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            fast_colored_wakeup(
                chain, [0], np.zeros(chain.size + 2), constants, rng
            )


class TestFastConsensus:
    def test_agrees_on_minimum(self, chain, constants, rng):
        values = [5, 3, 7, 3, 6, 4, 5, 7]
        result = fast_consensus(chain, values, 7, constants, rng)
        assert result.agreed
        assert result.correct
        assert int(result.decided[0]) == 3
        assert result.bits == 3
        assert len(result.rounds_per_bit) == 3

    def test_all_equal_values(self, chain, constants, rng):
        result = fast_consensus(chain, [2] * chain.size, 3, constants, rng)
        assert result.agreed and result.correct
        assert int(result.decided[0]) == 2

    def test_zero_message_space(self, chain, constants, rng):
        result = fast_consensus(chain, [0] * chain.size, 0, constants, rng)
        assert result.agreed and result.correct

    def test_value_count_mismatch(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            fast_consensus(chain, [1, 2], 3, constants, rng)

    def test_value_out_of_range(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            fast_consensus(chain, [9] * chain.size, 7, constants, rng)

    def test_negative_value(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            fast_consensus(chain, [-1] * chain.size, 7, constants, rng)

    def test_rounds_accumulate(self, chain, constants, rng):
        result = fast_consensus(chain, [1] * chain.size, 3, constants, rng)
        backbone = constants.coloring_total_rounds(chain.size)
        assert result.total_rounds == backbone + sum(result.rounds_per_bit)


class TestFastLeaderElection:
    def test_elects_unique_leader(self, chain, constants, rng):
        result = fast_leader_election(chain, constants, rng)
        assert result.success
        assert result.unique
        assert result.ids[result.leader] == result.agreed_id
        assert result.agreed_id == int(result.ids.min())

    def test_ids_match_reference_stream(self, chain, constants):
        # Fast and reference draw IDs from the same stream position, so a
        # shared seed yields identical ID vectors (makes the
        # cross-validation below apples-to-apples).
        fast = fast_leader_election(
            chain, constants, np.random.default_rng(31)
        )
        ref = run_leader_election(
            chain, constants, np.random.default_rng(31)
        )
        assert np.array_equal(fast.ids, ref.ids)


class TestCrossValidationSafety:
    """Termination/safety properties match the reference on every seed."""

    def test_wakeup_termination_agrees(self, chain, constants):
        schedule = WakeupSchedule.single(chain.size, 0)
        for seed in range(3):
            ref = run_adhoc_wakeup(
                chain, schedule, constants, np.random.default_rng(seed)
            )
            fast = fast_wakeup(
                chain, schedule, constants, np.random.default_rng(seed)
            )
            assert ref.success and fast.success
            assert np.all(fast.informed_round >= 0)

    def test_consensus_safety_agrees(self, chain, constants):
        values = [4, 2, 6, 2, 5, 3, 7, 6]
        for seed in range(3):
            ref = run_consensus(
                chain, values, 7, constants, np.random.default_rng(seed)
            )
            fast = fast_consensus(
                chain, values, 7, constants, np.random.default_rng(seed)
            )
            assert ref.agreed and fast.agreed
            assert ref.correct and fast.correct
            assert np.array_equal(ref.decided, fast.decided)
            assert ref.bits == fast.bits

    def test_leader_safety_agrees(self, chain, constants):
        for seed in range(3):
            ref = run_leader_election(
                chain, constants, np.random.default_rng(seed)
            )
            fast = fast_leader_election(
                chain, constants, np.random.default_rng(seed)
            )
            assert ref.success and fast.success
            # Same ID stream + agreement on the true minimum => same leader.
            assert ref.leader == fast.leader
            assert ref.agreed_id == fast.agreed_id


@pytest.mark.slow
class TestCrossValidationDistributions:
    """Round-count distributions agree within tolerance (DESIGN.md §6)."""

    SEEDS = range(4)

    def test_wakeup_rounds_same_scale(self, chain, constants):
        schedule = WakeupSchedule.single(chain.size, 0)
        ref_t, fast_t = [], []
        for seed in self.SEEDS:
            ref = run_adhoc_wakeup(
                chain, schedule, constants, np.random.default_rng(seed)
            )
            fast = fast_wakeup(
                chain, schedule, constants, np.random.default_rng(seed)
            )
            assert ref.success and fast.success
            ref_t.append(ref.extras["wakeup_time"])
            fast_t.append(fast.extras["wakeup_time"])
        assert np.mean(fast_t) < 3 * np.mean(ref_t) + 500
        assert np.mean(ref_t) < 3 * np.mean(fast_t) + 500

    def test_colored_wakeup_rounds_same_scale(self, chain, constants,
                                              chain_colors):
        ref_t, fast_t = [], []
        for seed in self.SEEDS:
            ref = run_colored_wakeup(
                chain, [0], chain_colors, constants,
                np.random.default_rng(seed),
            )
            fast = fast_colored_wakeup(
                chain, [0], chain_colors, constants,
                np.random.default_rng(seed),
            )
            assert ref.success and fast.success
            ref_t.append(ref.completion_round)
            fast_t.append(fast.completion_round)
        assert np.mean(fast_t) < 3 * np.mean(ref_t) + 500
        assert np.mean(ref_t) < 3 * np.mean(fast_t) + 500

    def test_consensus_rounds_same_scale(self, chain, constants):
        values = [4, 2, 6, 2, 5, 3, 7, 6]
        ref_t, fast_t = [], []
        for seed in self.SEEDS:
            ref = run_consensus(
                chain, values, 7, constants, np.random.default_rng(seed)
            )
            fast = fast_consensus(
                chain, values, 7, constants, np.random.default_rng(seed)
            )
            assert ref.correct and fast.correct
            ref_t.append(ref.total_rounds)
            fast_t.append(fast.total_rounds)
        assert np.mean(fast_t) < 3 * np.mean(ref_t) + 500
        assert np.mean(ref_t) < 3 * np.mean(fast_t) + 500

    def test_leader_rounds_same_scale(self, chain, constants):
        ref_t, fast_t = [], []
        for seed in self.SEEDS:
            ref = run_leader_election(
                chain, constants, np.random.default_rng(seed)
            )
            fast = fast_leader_election(
                chain, constants, np.random.default_rng(seed)
            )
            assert ref.success and fast.success
            ref_t.append(ref.total_rounds)
            fast_t.append(fast.total_rounds)
        assert np.mean(fast_t) < 3 * np.mean(ref_t) + 500
        assert np.mean(ref_t) < 3 * np.mean(fast_t) + 500
