"""Tests for ball/annulus queries and mass sums."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.balls import (
    annulus_indices,
    ball_indices,
    ball_mass,
    max_ball_mass,
)
from repro.geometry.metric import pairwise_distances

LINE = pairwise_distances(np.array([0.0, 1.0, 2.0, 3.0, 4.0]))


class TestBallIndices:
    def test_includes_center(self):
        assert 2 in ball_indices(LINE, 2, 0.0)

    def test_closed_ball_boundary(self):
        members = ball_indices(LINE, 0, 1.0)
        assert list(members) == [0, 1]

    def test_radius_covers_all(self):
        assert len(ball_indices(LINE, 2, 10.0)) == 5

    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            ball_indices(LINE, 0, -0.1)


class TestAnnulusIndices:
    def test_excludes_inner_ball(self):
        members = annulus_indices(LINE, 0, 1.0, 3.0)
        assert list(members) == [2, 3]

    def test_open_inner_boundary(self):
        # inner radius itself excluded: dist exactly 1 not in (1, 2]
        members = annulus_indices(LINE, 0, 1.0, 2.0)
        assert list(members) == [2]

    def test_empty_annulus(self):
        assert annulus_indices(LINE, 0, 4.0, 5.0).size == 0

    def test_bad_radii_raise(self):
        with pytest.raises(GeometryError):
            annulus_indices(LINE, 0, 2.0, 1.0)
        with pytest.raises(GeometryError):
            annulus_indices(LINE, 0, -1.0, 1.0)


class TestBallMass:
    def test_sums_weights(self):
        w = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        assert ball_mass(LINE, 0, 1.0, w) == pytest.approx(3.0)

    def test_mask_filters(self):
        w = np.ones(5)
        mask = np.array([True, False, True, False, True])
        assert ball_mass(LINE, 2, 1.0, w, mask) == pytest.approx(1.0)

    def test_full_mask_equals_unmasked(self):
        w = np.arange(5, dtype=float)
        mask = np.ones(5, dtype=bool)
        assert ball_mass(LINE, 1, 2.0, w, mask) == ball_mass(LINE, 1, 2.0, w)


class TestMaxBallMass:
    def test_uniform_weights(self):
        w = np.ones(5)
        # Radius 1 balls hold at most 3 stations (interior points).
        assert max_ball_mass(LINE, 1.0, w) == pytest.approx(3.0)

    def test_concentrated_weight(self):
        w = np.array([0.0, 0.0, 100.0, 0.0, 0.0])
        assert max_ball_mass(LINE, 0.5, w) == pytest.approx(100.0)

    def test_empty_matrix(self):
        empty = np.zeros((0, 0))
        assert max_ball_mass(empty, 1.0, np.zeros(0)) == 0.0

    def test_monotone_in_radius(self):
        w = np.random.default_rng(0).uniform(size=5)
        small = max_ball_mass(LINE, 0.5, w)
        large = max_ball_mass(LINE, 2.5, w)
        assert large >= small
