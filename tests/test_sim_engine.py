"""Tests for the synchronous round engine and node interface."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.messages import Message, Reception
from repro.sim.node import NodeAlgorithm, SilentNode
from repro.sim.trace import TraceRecorder


class AlwaysTransmit(NodeAlgorithm):
    def __init__(self, index, payload=None):
        super().__init__(index)
        self.payload = payload if payload is not None else f"msg-{index}"
        self.receptions = []

    def transmission(self, round_no):
        return 1.0, self.payload

    def end_round(self, reception):
        self.receptions.append(reception)


class Listener(SilentNode):
    pass


class BadProbability(NodeAlgorithm):
    def transmission(self, round_no):
        return 1.5, None

    def end_round(self, reception):
        pass


def _net_pair():
    return Network(np.array([[0.0, 0.0], [0.5, 0.0]]))


class TestSimulatorConstruction:
    def test_node_count_mismatch(self, rng):
        net = _net_pair()
        with pytest.raises(SimulationError):
            Simulator(net, [Listener(0)], rng)

    def test_node_index_mismatch(self, rng):
        net = _net_pair()
        with pytest.raises(SimulationError):
            Simulator(net, [Listener(1), Listener(0)], rng)


class TestStep:
    def test_lone_transmitter_delivers(self, rng):
        net = _net_pair()
        nodes = [AlwaysTransmit(0), Listener(1)]
        sim = Simulator(net, nodes, rng)
        heard = sim.step()
        assert heard[1] == 0
        assert nodes[1].heard[0].message.payload == "msg-0"

    def test_transmitter_reception_records_transmitted(self, rng):
        net = _net_pair()
        nodes = [AlwaysTransmit(0), Listener(1)]
        sim = Simulator(net, nodes, rng)
        sim.step()
        assert nodes[0].receptions[0].transmitted is True
        assert nodes[0].receptions[0].message is None

    def test_both_transmit_nobody_hears(self, rng):
        net = _net_pair()
        nodes = [AlwaysTransmit(0), AlwaysTransmit(1)]
        sim = Simulator(net, nodes, rng)
        heard = sim.step()
        assert np.all(heard == -1)

    def test_round_counter_advances(self, rng):
        net = _net_pair()
        sim = Simulator(net, [Listener(0), Listener(1)], rng)
        sim.step()
        sim.step()
        assert sim.round_no == 2

    def test_invalid_probability_raises(self, rng):
        net = _net_pair()
        sim = Simulator(net, [BadProbability(0), Listener(1)], rng)
        with pytest.raises(SimulationError):
            sim.step()

    def test_silence_reaches_all_nodes(self, rng):
        net = _net_pair()
        nodes = [Listener(0), Listener(1)]
        sim = Simulator(net, nodes, rng)
        sim.step()
        assert nodes[0].heard == [] and nodes[1].heard == []


class TestRun:
    def test_run_respects_budget(self, rng):
        net = _net_pair()
        sim = Simulator(net, [Listener(0), Listener(1)], rng)
        result = sim.run(10)
        assert result.rounds == 10
        assert not result.stopped_early

    def test_stop_condition(self, rng):
        net = _net_pair()
        nodes = [AlwaysTransmit(0), Listener(1)]
        sim = Simulator(net, nodes, rng)
        result = sim.run(100, stop=lambda s: len(nodes[1].heard) > 0)
        assert result.stopped_early
        assert result.rounds == 1

    def test_check_every_thins_stops(self, rng):
        net = _net_pair()
        nodes = [AlwaysTransmit(0), Listener(1)]
        sim = Simulator(net, nodes, rng)
        result = sim.run(
            100, stop=lambda s: len(nodes[1].heard) > 0, check_every=5
        )
        assert result.stopped_early
        assert result.rounds == 5

    def test_negative_budget_raises(self, rng):
        net = _net_pair()
        sim = Simulator(net, [Listener(0), Listener(1)], rng)
        with pytest.raises(SimulationError):
            sim.run(-1)

    def test_zero_budget(self, rng):
        net = _net_pair()
        sim = Simulator(net, [Listener(0), Listener(1)], rng)
        assert sim.run(0).rounds == 0

    def test_all_finished_default_false(self, rng):
        net = _net_pair()
        sim = Simulator(net, [Listener(0), Listener(1)], rng)
        assert not sim.all_finished()


class TestProbabilisticBehaviour:
    def test_half_probability_transmits_about_half(self, rng):
        class Half(NodeAlgorithm):
            def __init__(self, index):
                super().__init__(index)
                self.count = 0

            def transmission(self, round_no):
                return 0.5, "x"

            def end_round(self, reception):
                if reception.transmitted:
                    self.count += 1

        net = _net_pair()
        nodes = [Half(0), Half(1)]
        sim = Simulator(net, nodes, rng)
        sim.run(600)
        for node in nodes:
            assert 240 <= node.count <= 360  # ~6 sigma around 300

    def test_deterministic_given_seed(self):
        net = _net_pair()

        def run_once(seed):
            rng = np.random.default_rng(seed)

            class Half(NodeAlgorithm):
                def transmission(self, round_no):
                    return 0.5, "x"

                def end_round(self, reception):
                    pass

            sim = Simulator(net, [Half(0), Half(1)], rng)
            return [tuple(sim.step()) for _ in range(20)]

        assert run_once(9) == run_once(9)
        assert run_once(9) != run_once(10)


class TestTraceIntegration:
    def test_trace_records_rounds(self, rng):
        net = _net_pair()
        trace = TraceRecorder()
        nodes = [AlwaysTransmit(0), Listener(1)]
        sim = Simulator(net, nodes, rng, trace=trace)
        sim.run(5)
        assert trace.rounds == 5
        assert np.all(trace.transmissions_per_round() == 1)
        assert np.all(trace.receptions_per_round() == 1)

    def test_busiest_round(self, rng):
        net = _net_pair()
        trace = TraceRecorder()
        sim = Simulator(
            net, [AlwaysTransmit(0), AlwaysTransmit(1)], rng, trace=trace
        )
        sim.run(3)
        assert trace.busiest_round().num_transmitters == 2

    def test_empty_trace(self):
        trace = TraceRecorder()
        assert trace.busiest_round() is None
        assert trace.rounds == 0

    def test_transmitter_sets_kept_on_request(self, rng):
        net = _net_pair()
        trace = TraceRecorder(keep_transmitter_sets=True)
        sim = Simulator(net, [AlwaysTransmit(0), Listener(1)], rng, trace=trace)
        sim.run(2)
        assert len(trace.transmitter_sets) == 2
        assert list(trace.transmitter_sets[0]) == [0]


class TestMessages:
    def test_reception_heard_property(self):
        r = Reception(round_no=0, transmitted=False, message=None)
        assert not r.heard
        r2 = Reception(
            round_no=0, transmitted=False, message=Message(sender=1)
        )
        assert r2.heard

    def test_message_frozen(self):
        m = Message(sender=0, payload="a")
        with pytest.raises(AttributeError):
            m.sender = 1
