"""Tests for NoSBroadcast and SBroadcast (reference implementations)."""

import numpy as np
import pytest

from repro.core.broadcast_nospont import NoSBroadcastNode, run_nospont_broadcast
from repro.core.broadcast_spont import SBroadcastNode, run_spont_broadcast
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.core.outcome import NEVER_INFORMED
from repro.errors import ProtocolError
from repro.network.network import Network


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


class TestNoSBroadcastNode:
    def test_source_active_in_phase_zero(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = NoSBroadcastNode(0, schedule, source_payload="m")
        assert node.informed
        assert node.active_from_phase == 0
        prob, payload = node.transmission(0)
        assert payload == "m"

    def test_uninformed_silent(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = NoSBroadcastNode(1, schedule)
        assert not node.informed
        assert node.transmission(0) == (0.0, None)

    def test_joins_next_phase_after_hearing(self, constants):
        from repro.sim.messages import Message, Reception

        schedule = ColoringSchedule(constants, 8)
        node = NoSBroadcastNode(1, schedule)
        phase_len = constants.phase_rounds(8)
        # Hear the message mid-phase 0.
        node.end_round(
            Reception(
                round_no=3, transmitted=False,
                message=Message(sender=0, payload="m"),
            )
        )
        assert node.informed
        assert node.active_from_phase == 1
        # Still silent for the rest of phase 0...
        assert node.transmission(5) == (0.0, None)
        # ...active from phase 1 on.
        prob, payload = node.transmission(phase_len)
        assert payload == "m"

    def test_dissemination_part_probability(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = NoSBroadcastNode(0, schedule, source_payload="m")
        offset = schedule.total_rounds  # first round of part 2
        prob, _ = node.transmission(offset)
        expected = constants.dissemination_prob(
            node.core.finished_color(), 8
        )
        assert prob == pytest.approx(expected)


class TestRunNoSBroadcast:
    def test_completes_on_line(self, small_chain, constants, rng):
        out = run_nospont_broadcast(small_chain, 0, constants, rng)
        assert out.success
        assert out.algorithm == "NoSBroadcast"
        assert np.all(out.informed_round >= 0)

    def test_informed_rounds_monotone_along_chain(
        self, small_chain, constants, rng
    ):
        out = run_nospont_broadcast(small_chain, 0, constants, rng)
        rounds = out.informed_round
        # The far end cannot be informed before a middle station.
        assert rounds[-1] >= rounds[small_chain.size // 2]

    def test_source_informed_at_zero(self, small_chain, constants, rng):
        out = run_nospont_broadcast(small_chain, 2, constants, rng)
        assert out.informed_round[2] == 0

    def test_single_station(self, constants, rng):
        net = Network(np.array([[0.0, 0.0]]))
        out = run_nospont_broadcast(net, 0, constants, rng)
        assert out.success
        assert out.completion_round == 0

    def test_budget_exhaustion_reports_failure(
        self, small_chain, constants, rng
    ):
        out = run_nospont_broadcast(
            small_chain, 0, constants, rng, round_budget=5
        )
        assert not out.success
        assert out.completion_round == NEVER_INFORMED
        assert out.num_informed >= 1

    def test_invalid_source(self, small_chain, constants, rng):
        with pytest.raises(ProtocolError):
            run_nospont_broadcast(small_chain, 99, constants, rng)

    def test_none_payload_rejected(self, small_chain, constants, rng):
        with pytest.raises(ProtocolError):
            run_nospont_broadcast(
                small_chain, 0, constants, rng, payload=None
            )

    def test_extras_phase_accounting(self, small_chain, constants, rng):
        out = run_nospont_broadcast(small_chain, 0, constants, rng)
        assert out.extras["phase_rounds"] == constants.phase_rounds(
            small_chain.size
        )
        assert out.extras["phases_used"] >= 1


class TestSBroadcastNode:
    def test_source_pilot_round(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = SBroadcastNode(0, schedule, source_payload="m")
        prob, payload = node.transmission(schedule.total_rounds)
        assert prob == 1.0
        assert payload == "m"

    def test_non_source_silent_in_pilot(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = SBroadcastNode(1, schedule)
        assert node.transmission(schedule.total_rounds) == (0.0, None)

    def test_uninformed_ignores_empty_payload(self, constants):
        from repro.sim.messages import Message, Reception

        schedule = ColoringSchedule(constants, 8)
        node = SBroadcastNode(1, schedule)
        node.end_round(
            Reception(
                round_no=0, transmitted=False,
                message=Message(sender=2, payload=None),
            )
        )
        assert not node.informed

    def test_everyone_colors_in_stage_one(self, constants):
        schedule = ColoringSchedule(constants, 8)
        node = SBroadcastNode(1, schedule)
        prob, _ = node.transmission(0)
        assert prob == pytest.approx(constants.pstart(8))


class TestRunSBroadcast:
    def test_completes_on_line(self, small_chain, constants, rng):
        out = run_spont_broadcast(small_chain, 0, constants, rng)
        assert out.success
        assert out.algorithm == "SBroadcast"

    def test_completes_on_square(self, small_square, constants, rng):
        out = run_spont_broadcast(small_square, 0, constants, rng)
        assert out.success

    def test_colors_in_extras(self, small_chain, constants, rng):
        out = run_spont_broadcast(small_chain, 0, constants, rng)
        colors = out.extras["colors"]
        assert colors.shape == (small_chain.size,)
        assert np.all(colors > 0)

    def test_faster_than_nospont_on_chain(self, constants):
        from repro.deploy import uniform_chain

        chain = uniform_chain(16, gap=0.5)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        spont = run_spont_broadcast(chain, 0, constants, rng_a)
        nospont = run_nospont_broadcast(chain, 0, constants, rng_b)
        assert spont.success and nospont.success
        assert spont.completion_round < nospont.completion_round

    def test_budget_failure(self, small_chain, constants, rng):
        out = run_spont_broadcast(
            small_chain, 0, constants, rng, round_budget=1
        )
        assert not out.success

    def test_invalid_source(self, small_chain, constants, rng):
        with pytest.raises(ProtocolError):
            run_spont_broadcast(small_chain, -1, constants, rng)

    def test_progress_curve_monotone(self, small_chain, constants, rng):
        out = run_spont_broadcast(small_chain, 0, constants, rng)
        curve = out.progress_curve()
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == small_chain.size

    def test_tighten_eps_flag(self, small_chain, constants, rng):
        out = run_spont_broadcast(
            small_chain, 0, constants, rng, tighten_eps=False
        )
        assert out.success
