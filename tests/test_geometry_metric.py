"""Tests for repro.geometry.metric."""

import numpy as np
import pytest

from repro.errors import GeometryError, MetricError
from repro.geometry.metric import (
    EuclideanMetric,
    MatrixMetric,
    MIN_DISTANCE,
    pairwise_distances,
    validate_distance_matrix,
)


class TestPairwiseDistances:
    def test_two_points(self):
        d = pairwise_distances(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(5.0)

    def test_zero_diagonal(self):
        coords = np.random.default_rng(0).uniform(size=(10, 2))
        d = pairwise_distances(coords)
        assert np.all(np.diag(d) == 0)

    def test_symmetry(self):
        coords = np.random.default_rng(1).uniform(size=(15, 3))
        d = pairwise_distances(coords)
        assert np.allclose(d, d.T)

    def test_one_dimensional_input_promoted(self):
        d = pairwise_distances(np.array([0.0, 1.0, 3.0]))
        assert d.shape == (3, 3)
        assert d[0, 2] == pytest.approx(3.0)

    def test_single_point(self):
        d = pairwise_distances(np.array([[1.0, 2.0]]))
        assert d.shape == (1, 1)
        assert d[0, 0] == 0.0

    def test_triangle_inequality_random(self):
        coords = np.random.default_rng(2).uniform(size=(20, 2))
        d = pairwise_distances(coords)
        for j in range(20):
            assert np.all(d <= d[:, j][:, None] + d[j, :][None, :] + 1e-9)

    def test_rejects_3d_array(self):
        with pytest.raises(GeometryError):
            pairwise_distances(np.zeros((2, 2, 2)))


class TestValidateDistanceMatrix:
    def _valid(self):
        return pairwise_distances(
            np.random.default_rng(3).uniform(size=(8, 2))
        )

    def test_accepts_valid(self):
        m = self._valid()
        out = validate_distance_matrix(m)
        assert np.allclose(out, m)

    def test_rejects_nonsquare(self):
        with pytest.raises(MetricError):
            validate_distance_matrix(np.zeros((3, 4)))

    def test_rejects_nonzero_diagonal(self):
        m = self._valid()
        m[2, 2] = 0.5
        with pytest.raises(MetricError):
            validate_distance_matrix(m)

    def test_rejects_negative(self):
        m = self._valid()
        m[0, 1] = m[1, 0] = -1.0
        with pytest.raises(MetricError):
            validate_distance_matrix(m)

    def test_rejects_asymmetry(self):
        m = self._valid()
        m[0, 1] += 0.5
        with pytest.raises(MetricError):
            validate_distance_matrix(m)

    def test_rejects_nan(self):
        m = self._valid()
        m[0, 1] = m[1, 0] = np.nan
        with pytest.raises(MetricError):
            validate_distance_matrix(m)

    def test_rejects_triangle_violation(self):
        m = np.array(
            [[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
        )
        with pytest.raises(MetricError, match="triangle"):
            validate_distance_matrix(m)

    def test_triangle_check_can_be_skipped(self):
        m = np.array(
            [[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
        )
        out = validate_distance_matrix(m, check_triangle=False)
        assert out[0, 2] == 5.0

    def test_rejects_colocated_points(self):
        m = np.array([[0.0, MIN_DISTANCE / 2], [MIN_DISTANCE / 2, 0.0]])
        with pytest.raises(MetricError, match="co-located"):
            validate_distance_matrix(m)


class TestEuclideanMetric:
    def test_default_dimension(self):
        assert EuclideanMetric().dimension == 2

    def test_growth_dimension_equals_dimension(self):
        assert EuclideanMetric(3).growth_dimension == 3.0

    def test_rejects_bad_dimension(self):
        with pytest.raises(GeometryError):
            EuclideanMetric(0)

    def test_distance_matrix(self):
        metric = EuclideanMetric(2)
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = metric.distance_matrix(coords)
        assert d[0, 1] == pytest.approx(1.0)

    def test_distance_convenience(self):
        metric = EuclideanMetric(2)
        coords = np.array([[0.0, 0.0], [0.0, 2.0]])
        assert metric.distance(coords, 0, 1) == pytest.approx(2.0)

    def test_dimension_mismatch_raises(self):
        metric = EuclideanMetric(3)
        with pytest.raises(GeometryError):
            metric.distance_matrix(np.zeros((4, 2)))

    def test_1d_metric_accepts_flat_coords(self):
        metric = EuclideanMetric(1)
        d = metric.distance_matrix(np.array([0.0, 2.5]))
        assert d[0, 1] == pytest.approx(2.5)

    def test_repr(self):
        assert "dimension=2" in repr(EuclideanMetric(2))


class TestMatrixMetric:
    def _line_matrix(self):
        return pairwise_distances(np.array([0.0, 1.0, 2.0]))

    def test_round_trip(self):
        m = self._line_matrix()
        metric = MatrixMetric(m, growth_dimension=1.0)
        out = metric.distance_matrix(np.zeros(3))
        assert np.allclose(out, m)

    def test_size_property(self):
        metric = MatrixMetric(self._line_matrix())
        assert metric.size == 3

    def test_size_mismatch_raises(self):
        metric = MatrixMetric(self._line_matrix())
        with pytest.raises(GeometryError):
            metric.distance_matrix(np.zeros(5))

    def test_rejects_invalid_matrix(self):
        with pytest.raises(MetricError):
            MatrixMetric(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_bad_growth_dimension(self):
        with pytest.raises(GeometryError):
            MatrixMetric(self._line_matrix(), growth_dimension=0.0)

    def test_repr_mentions_size(self):
        assert "size=3" in repr(MatrixMetric(self._line_matrix()))
