"""Tests for adversarial wake-up schedules."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.wakeup import WakeupSchedule


class TestConstruction:
    def test_requires_one_spontaneous(self):
        with pytest.raises(SimulationError):
            WakeupSchedule(np.full(4, WakeupSchedule.NEVER))

    def test_requires_1d(self):
        with pytest.raises(SimulationError):
            WakeupSchedule(np.zeros((2, 2), dtype=int))

    def test_first_wake(self):
        s = WakeupSchedule(np.array([5, WakeupSchedule.NEVER, 2]))
        assert s.first_wake == 2

    def test_is_awake(self):
        s = WakeupSchedule(np.array([3, WakeupSchedule.NEVER]))
        assert not s.is_awake(0, 2)
        assert s.is_awake(0, 3)
        assert not s.is_awake(1, 1000)


class TestSingle:
    def test_single(self):
        s = WakeupSchedule.single(5, station=2, round_no=7)
        assert s.first_wake == 7
        assert s.is_awake(2, 7)
        assert not any(s.is_awake(i, 100) for i in (0, 1, 3, 4))


class TestAllAt:
    def test_all_at_zero(self):
        s = WakeupSchedule.all_at(4)
        assert all(s.is_awake(i, 0) for i in range(4))

    def test_all_at_later(self):
        s = WakeupSchedule.all_at(4, round_no=9)
        assert not s.is_awake(0, 8)
        assert s.is_awake(3, 9)


class TestStaggered:
    def test_within_spread(self, rng):
        s = WakeupSchedule.staggered(20, spread=10, rng=rng)
        waking = s.wake_rounds[s.wake_rounds >= 0]
        assert waking.size == 20
        assert waking.max() <= 10

    def test_fractional_leaves_sleepers(self, rng):
        s = WakeupSchedule.staggered(50, spread=5, rng=rng, fraction=0.3)
        sleepers = np.sum(s.wake_rounds < 0)
        assert 0 < sleepers < 50

    def test_at_least_one_wakes(self):
        # Even with a tiny fraction, someone must wake.
        for seed in range(5):
            rng = np.random.default_rng(seed)
            s = WakeupSchedule.staggered(5, spread=3, rng=rng, fraction=0.01)
            assert np.any(s.wake_rounds >= 0)

    def test_bad_args(self, rng):
        with pytest.raises(SimulationError):
            WakeupSchedule.staggered(5, spread=-1, rng=rng)
        with pytest.raises(SimulationError):
            WakeupSchedule.staggered(5, spread=1, rng=rng, fraction=0.0)


class TestFarLast:
    def test_order_respected(self):
        order = np.array([2, 0, 1])  # station 2 first, station 1 last
        s = WakeupSchedule.adversarial_far_last(3, spread=10, order=order)
        assert s.wake_rounds[2] <= s.wake_rounds[0] <= s.wake_rounds[1]
        assert s.wake_rounds[1] == 10

    def test_single_station(self):
        s = WakeupSchedule.adversarial_far_last(
            1, spread=10, order=np.array([0])
        )
        assert s.wake_rounds[0] == 0

    def test_rejects_non_permutation(self):
        with pytest.raises(SimulationError):
            WakeupSchedule.adversarial_far_last(
                3, spread=5, order=np.array([0, 0, 1])
            )
