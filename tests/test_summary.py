"""Tests for the Markdown summary writer."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.base import ExperimentReport
from repro.experiments.summary import (
    _markdown_table,
    report_to_markdown,
    reports_to_markdown,
)


def _report():
    return ExperimentReport(
        exp_id="E99",
        title="Demo",
        claim="something holds",
        headers=["n", "rounds"],
        rows=[[8, 100], [16, 220]],
        metrics={"fit": "log^2 n"},
        notes=["a caveat"],
    )


class TestMarkdownTable:
    def test_structure(self):
        table = _markdown_table(["a", "b"], [[1, 2]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_width_mismatch(self):
        with pytest.raises(AnalysisError):
            _markdown_table(["a"], [[1, 2]])

    def test_empty_headers(self):
        with pytest.raises(AnalysisError):
            _markdown_table([], [])


class TestReportToMarkdown:
    def test_contains_all_parts(self):
        md = report_to_markdown(_report())
        assert "## E99 — Demo" in md
        assert "**Claim.** something holds" in md
        assert "| 16 | 220 |" in md
        assert "`fit` = log^2 n" in md
        assert "*Note.* a caveat" in md

    def test_no_metrics_no_metrics_line(self):
        report = _report()
        report.metrics = {}
        md = report_to_markdown(report)
        assert "**Metrics.**" not in md


class TestReportsToMarkdown:
    def test_document(self):
        md = reports_to_markdown([_report(), _report()], title="T",
                                 preamble="P")
        assert md.startswith("# T")
        assert "P" in md
        assert md.count("## E99") == 2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            reports_to_markdown([])


class TestCliMarkdown:
    def test_cli_writes_markdown(self, tmp_path):
        from repro.experiments.__main__ import main
        from repro.fastsim.grid import GridOptions, set_default_grid_options

        out = tmp_path / "report.md"
        try:
            # The CLI installs process-wide GridOptions (including its
            # cache dir); restore the defaults so the leak never poisons
            # later tests' uncached run_grid calls.
            code = main(
                ["E01", "--scale", "quick", "--markdown", str(out),
                 "--cache-dir", str(tmp_path / "cache")]
            )
        finally:
            set_default_grid_options(GridOptions())
        assert code == 0
        text = out.read_text()
        assert "E01" in text
        assert "| n |" in text or "| n " in text
