"""Tests for protocol constants and the coloring schedule."""

import math

import pytest

from repro.core.constants import (
    ColoringSchedule,
    ProtocolConstants,
    converging_zeta,
    log2ceil,
)
from repro.errors import ProtocolError
from repro.sinr.params import SINRParameters


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)]
    )
    def test_values(self, n, expected):
        assert log2ceil(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ProtocolError):
            log2ceil(0)


class TestConvergingZeta:
    def test_known_value_pi_squared_over_six(self):
        assert converging_zeta(2.0) == pytest.approx(math.pi ** 2 / 6, rel=1e-6)

    def test_monotone_decreasing_in_exponent(self):
        assert converging_zeta(1.5) > converging_zeta(2.0) > converging_zeta(3.0)

    def test_diverges_rejected(self):
        with pytest.raises(ProtocolError):
            converging_zeta(1.0)


class TestProtocolConstantsValidation:
    def test_practical_valid(self):
        c = ProtocolConstants.practical()
        assert c.pmax * c.ceps <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_scale": 0.0},
            {"pmax": 0.0},
            {"pmax": 0.6},
            {"ceps": 0.5},
            {"pmax": 0.5, "ceps": 4.0},  # product > 1
            {"density_rounds": 0.0},
            {"density_frac": 0.0},
            {"density_frac": 1.0},
            {"playoff_frac": 1.5},
            {"repeats": 0},
            {"dissemination": 0.0},
            {"part2_scale": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ProtocolError):
            ProtocolConstants.practical(**kwargs)

    def test_overrides_apply(self):
        c = ProtocolConstants.practical(repeats=3)
        assert c.repeats == 3


class TestLadder:
    def test_pstart_scales_inverse_n(self):
        c = ProtocolConstants.practical()
        assert c.pstart(100) == pytest.approx(c.start_scale / 100)

    def test_pstart_capped_at_pmax(self):
        c = ProtocolConstants.practical()
        assert c.pstart(1) == c.pmax

    def test_num_levels_grows_with_n(self):
        c = ProtocolConstants.practical()
        assert c.num_levels(1024) > c.num_levels(64) >= 1

    def test_num_levels_is_log(self):
        c = ProtocolConstants.practical()
        # Doubling n adds exactly one level (once past the cap regime).
        assert c.num_levels(2048) == c.num_levels(1024) + 1

    def test_num_colors_is_levels_plus_one(self):
        c = ProtocolConstants.practical()
        assert c.num_colors(256) == c.num_levels(256) + 1

    def test_color_of_level_doubles(self):
        c = ProtocolConstants.practical()
        assert c.color_of_level(1, 512) == pytest.approx(
            2 * c.color_of_level(0, 512)
        )

    def test_color_capped_at_pmax(self):
        c = ProtocolConstants.practical()
        assert c.color_of_level(60, 512) == c.pmax

    def test_color_negative_level_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolConstants.practical().color_of_level(-1, 8)

    def test_survivor_color(self):
        c = ProtocolConstants.practical()
        assert c.survivor_color == pytest.approx(2 * c.pmax)


class TestRoundCounts:
    def test_test_lengths_scale_log(self):
        c = ProtocolConstants.practical()
        assert c.density_test_rounds(256) == round(c.density_rounds * 8)
        assert c.playoff_rounds(256) == round(c.playoff_rds * 8)

    def test_thresholds_positive(self):
        c = ProtocolConstants.practical()
        assert c.density_threshold(64) >= 1
        assert c.playoff_threshold(64) >= 1

    def test_threshold_fraction_of_length(self):
        c = ProtocolConstants.practical()
        n = 256
        assert c.density_threshold(n) == math.ceil(
            c.density_frac * c.density_test_rounds(n)
        )

    def test_coloring_total_structure(self):
        c = ProtocolConstants.practical()
        n = 128
        block = c.density_test_rounds(n) + c.playoff_rounds(n)
        assert c.coloring_total_rounds(n) == c.num_levels(n) * c.repeats * block

    def test_coloring_rounds_polylog(self):
        c = ProtocolConstants.practical()
        # O(log^2 n): ratio to n must vanish as n grows.
        assert c.coloring_total_rounds(4096) / 4096 < c.coloring_total_rounds(64) / 64

    def test_part2_rounds_log_squared(self):
        c = ProtocolConstants.practical()
        assert c.part2_rounds(256) == math.ceil(c.part2_scale * 64)

    def test_phase_is_coloring_plus_part2(self):
        c = ProtocolConstants.practical()
        assert c.phase_rounds(64) == c.coloring_total_rounds(64) + c.part2_rounds(64)


class TestDissemination:
    def test_prob_scales_with_color(self):
        c = ProtocolConstants.practical()
        assert c.dissemination_prob(0.02, 256) == pytest.approx(
            0.02 * c.dissemination / 8
        )

    def test_prob_capped_at_one(self):
        c = ProtocolConstants.practical()
        assert c.dissemination_prob(100.0, 4) == 1.0

    def test_negative_color_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolConstants.practical().dissemination_prob(-0.1, 8)

    def test_eps_prime_keeps_product_legal(self):
        c = ProtocolConstants.practical()
        c2 = c.with_eps_prime()
        assert c2.ceps >= c.ceps
        assert c2.pmax * c2.ceps <= 1.0 + 1e-9


class TestTheoretical:
    def test_theoretical_constants_exist(self):
        c = ProtocolConstants.theoretical(SINRParameters.default(), gamma=2.0)
        assert c.pmax > 0
        assert c.ceps >= 1.0

    def test_theoretical_playoff_threshold_is_tiny(self):
        # The paper's proof constants are astronomically conservative.
        c = ProtocolConstants.theoretical(SINRParameters.default(), gamma=2.0)
        assert c.playoff_frac < 1e-3

    def test_theoretical_counts_self(self):
        c = ProtocolConstants.theoretical(SINRParameters.default(), gamma=2.0)
        assert c.playoff_counts_self is True

    def test_theoretical_self_tx_cannot_pass_playoff(self):
        # The paper's inequality: p_max * c_eps stays far below c3/c2, so
        # self-transmissions alone cannot clear the Playoff threshold.
        c = ProtocolConstants.theoretical(SINRParameters.default(), gamma=2.0)
        assert c.pmax * c.ceps <= c.playoff_frac

    def test_theoretical_requires_alpha_above_gamma(self):
        with pytest.raises(ProtocolError):
            ProtocolConstants.theoretical(
                SINRParameters.default(alpha=2.0), gamma=2.0
            )

    def test_theoretical_repeats_large(self):
        c = ProtocolConstants.theoretical(SINRParameters.default(), gamma=2.0)
        assert c.repeats >= 10  # c' = chi * C1 * ceps / q is huge


class TestColoringSchedule:
    def _schedule(self, n=64):
        return ColoringSchedule(ProtocolConstants.practical(), n)

    def test_block_structure(self):
        s = self._schedule()
        assert s.block_len == s.density_len + s.playoff_len
        assert s.level_len == s.constants.repeats * s.block_len
        assert s.total_rounds == s.levels * s.level_len

    def test_position_density_start(self):
        s = self._schedule()
        level, block, part, r = s.position(0)
        assert (level, block, part, r) == (0, 0, "density", 0)

    def test_position_playoff_boundary(self):
        s = self._schedule()
        level, block, part, r = s.position(s.density_len)
        assert part == "playoff" and r == 0

    def test_position_second_level(self):
        s = self._schedule()
        level, _, _, _ = s.position(s.level_len)
        assert level == 1

    def test_position_out_of_range(self):
        s = self._schedule()
        with pytest.raises(ProtocolError):
            s.position(s.total_rounds)
        with pytest.raises(ProtocolError):
            s.position(-1)

    def test_block_end_detection(self):
        s = self._schedule()
        assert s.is_block_end(s.block_len - 1)
        assert not s.is_block_end(s.block_len - 2)

    def test_level_probability_matches_constants(self):
        s = self._schedule()
        assert s.level_probability(0) == s.constants.pstart(64)

    def test_every_offset_decomposes(self):
        s = ColoringSchedule(ProtocolConstants.practical(), 16)
        seen_levels = set()
        for offset in range(s.total_rounds):
            level, block, part, r = s.position(offset)
            assert 0 <= level < s.levels
            assert 0 <= block < s.constants.repeats
            assert part in ("density", "playoff")
            seen_levels.add(level)
        assert seen_levels == set(range(s.levels))
