"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; these tests keep them green as
the library evolves.  Each runs as a subprocess exactly like a user
would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "exponential_chain",
            "backbone_applications", "geometry_independence"} <= names
