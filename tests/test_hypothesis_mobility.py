"""Hypothesis properties of incremental mobility updates (DESIGN.md §7).

The equivalence contract of :meth:`repro.network.network.Network.advance`:
the successor's gain structure — however it was produced (sparse delta
merge, dense row patch, threshold- or grid-drift-triggered rebuild) — is
**bitwise equal** to a from-scratch ``Network`` at the same coordinates.
Quantified over random deployments, random moved subsets (including
fractions above the rebuild threshold and movers that shift the
bounding box, which invalidates the sparse cell grid), and both
backends.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.network import MOBILITY_REBUILD_FRACTION, Network
from repro.sinr.params import SINRParameters
from repro.sinr.reception import resolve_reception_batch

PARAMS = SINRParameters.default()


def _coords(seed: int, n: int, side: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    while True:
        coords = rng.uniform(0.0, side, size=(n, 2))
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        np.fill_diagonal(dist, np.inf)
        if dist.min() > 1e-5:
            return coords


def _displacements(
    seed: int, coords: np.ndarray, frac: float, scale: float,
    keep_box: bool,
) -> np.ndarray:
    """Random sparse displacement field over ``coords``.

    ``keep_box=True`` excludes the bounding-box extremes from the moved
    set and caps steps so the box (hence the sparse cell grid) is
    stable; ``False`` deliberately moves a box-defining station.
    """
    rng = np.random.default_rng(seed)
    n = coords.shape[0]
    disp = np.zeros_like(coords)
    extremes = set(
        int(i)
        for axis in range(coords.shape[1])
        for i in (coords[:, axis].argmin(), coords[:, axis].argmax())
    )
    candidates = [i for i in range(n) if i not in extremes]
    if keep_box:
        if not candidates:
            return disp
        k = max(1, int(frac * len(candidates)))
        moved = rng.choice(candidates, size=k, replace=False)
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        steps = scale * rng.standard_normal((k, coords.shape[1]))
        target = np.clip(coords[moved] + steps, lo, hi)
        disp[moved] = target - coords[moved]
    else:
        mover = int(coords[:, 0].argmin())
        disp[mover] = [-scale - 0.01, 0.0]
    return disp


def _assert_sparse_equal(advanced: Network, fresh: Network) -> None:
    a = advanced.sparse_backend
    f = fresh.sparse_backend
    assert np.array_equal(a.indptr, f.indptr)
    assert np.array_equal(a.indices, f.indices)
    assert np.array_equal(a.data, f.data)
    assert np.array_equal(a.dists, f.dists)
    assert a.cells.shape == f.cells.shape
    assert np.array_equal(a.cells.cell_of, f.cells.cell_of)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(4, 48),
    frac=st.floats(0.05, 0.9),
    scale=st.floats(0.001, 0.3),
)
def test_sparse_advance_bitwise_equals_fresh_build(seed, n, frac, scale):
    coords = _coords(seed, n, side=3.5)
    net = Network(coords, backend="sparse", cutoff=2.0)
    net.sparse_backend  # build before advancing
    disp = _displacements(seed ^ 0x5A5A, coords, frac, scale, keep_box=True)
    advanced = net.advance(disp)
    fresh = Network(coords + disp, backend="sparse", cutoff=2.0)
    if np.any(disp != 0.0):
        expected = (
            "patched-sparse"
            if (disp != 0).any(axis=1).sum()
            <= MOBILITY_REBUILD_FRACTION * n
            else "rebuild"
        )
        assert advanced.advance_mode == expected
    _assert_sparse_equal(advanced, fresh)
    tx = np.random.default_rng(seed ^ 0xC3).random((3, n)) < 0.3
    assert np.array_equal(
        resolve_reception_batch(
            advanced.gain_operator, tx, PARAMS.noise, PARAMS.beta
        ),
        resolve_reception_batch(
            fresh.gain_operator, tx, PARAMS.noise, PARAMS.beta
        ),
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(4, 40),
    frac=st.floats(0.05, 0.6),
    scale=st.floats(0.001, 0.2),
)
def test_dense_advance_bitwise_equals_fresh_build(seed, n, frac, scale):
    coords = _coords(seed, n, side=2.5)
    net = Network(coords, backend="dense")
    net.distances
    net.gains
    disp = _displacements(seed ^ 0x77, coords, frac, scale, keep_box=True)
    advanced = net.advance(disp)
    fresh = Network(coords + disp, backend="dense")
    assert np.array_equal(advanced.distances, fresh.distances)
    assert np.array_equal(advanced.gains, fresh.gains)
    if np.any(disp != 0.0):
        moved = (disp != 0).any(axis=1).sum()
        expected = (
            "patched-dense"
            if moved <= MOBILITY_REBUILD_FRACTION * n
            else "rebuild"
        )
        assert advanced.advance_mode == expected


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(6, 32),
)
def test_box_drift_falls_back_to_rebuild_and_stays_equal(seed, n):
    """Moving a bounding-box corner invalidates the sparse cell grid;
    the advance must detect it, rebuild, and still match a fresh
    network bit for bit."""
    coords = _coords(seed, n, side=3.0)
    net = Network(coords, backend="sparse", cutoff=2.0)
    net.sparse_backend
    disp = _displacements(seed, coords, 0.1, 0.2, keep_box=False)
    advanced = net.advance(disp)
    assert advanced.advance_mode == "rebuild"
    fresh = Network(coords + disp, backend="sparse", cutoff=2.0)
    _assert_sparse_equal(advanced, fresh)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 40),
    rounds=st.integers(1, 6),
)
def test_mobility_sessions_are_deterministic(seed, n, rounds):
    from repro.deploy.mobility import BrownianDrift

    coords = _coords(seed, n, side=2.0)
    model = BrownianDrift(0.05, move_prob=0.5, seed=seed % 1000)
    a = model.session(coords)
    b = model.session(coords)
    ca, cb = coords.copy(), coords.copy()
    for r in range(rounds):
        da = a.displacements(ca, r)
        db = b.displacements(cb, r)
        assert np.array_equal(da, db)
        ca = ca + da
        cb = cb + db
        assert np.all(ca >= coords.min(axis=0) - 1e-12)
        assert np.all(ca <= coords.max(axis=0) + 1e-12)
