"""Tests for the SINR channel: gain matrices and reception resolution.

These encode the paper's Facts 2/3-style reasoning as concrete channel
behaviours: lone transmitters reach their range, co-transmitters collide,
capture favours the nearest transmitter.

The whole module is parametrized over the kernel backend (via the
autouse :func:`kernel` fixture setting ``REPRO_KERNEL``), so every
resolver test here doubles as a backend-conformance test: the compiled
loops must reproduce the numpy reference bit for bit (DESIGN.md §2.3).
"""

import numpy as np
import pytest

from repro import kernels
from repro.errors import SimulationError
from repro.geometry.metric import pairwise_distances
from repro.sinr.gain import gain_matrix, interference_at, received_power
from repro.sinr.params import SINRParameters
from repro.sinr.reception import (
    NO_SENDER,
    resolve_reception,
    resolve_reception_batch,
    sinr_values,
    sinr_values_batch,
)

PARAMS = SINRParameters.default()  # alpha=3, beta=1, N=1, P=1*1... range 1


@pytest.fixture(
    autouse=True,
    params=["numpy", "compiled"],
    ids=["k-numpy", "k-compiled"],
)
def kernel(request, monkeypatch):
    """Run every test in this module under both kernel backends.

    The resolvers default to ``kernel=None`` (= ``"auto"``), which
    consults :data:`repro.kernels.KERNEL_ENV` — so one environment
    variable flips the whole module without touching any call site.
    Without numba the ``"compiled"`` leg runs the un-jitted pure-python
    loops: slow but bitwise identical, which is exactly the contract
    under test.
    """
    monkeypatch.setenv(kernels.KERNEL_ENV, request.param)
    return request.param


def _gains(positions):
    coords = np.asarray(positions, dtype=float)
    dist = pairwise_distances(coords)
    return gain_matrix(dist, PARAMS.power, PARAMS.alpha)


class TestGainMatrix:
    def test_zero_diagonal(self):
        g = _gains([[0, 0], [1, 0], [2, 0]])
        assert np.all(np.diag(g) == 0)

    def test_inverse_power_law(self):
        g = _gains([[0, 0], [0.5, 0]])
        assert g[0, 1] == pytest.approx(PARAMS.power / 0.5 ** 3)

    def test_symmetric_for_uniform_power(self):
        g = _gains(np.random.default_rng(0).uniform(size=(6, 2)))
        assert np.allclose(g, g.T)

    def test_rejects_bad_params(self):
        dist = pairwise_distances(np.array([[0.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(SimulationError):
            gain_matrix(dist, 0.0, 3.0)
        with pytest.raises(SimulationError):
            gain_matrix(dist, 1.0, -1.0)


class TestReceivedPower:
    def test_no_transmitters(self):
        g = _gains([[0, 0], [1, 0]])
        assert np.all(received_power(g, np.array([], dtype=int)) == 0)

    def test_single_transmitter(self):
        g = _gains([[0, 0], [0.5, 0]])
        total = received_power(g, np.array([0]))
        assert total[1] == pytest.approx(g[0, 1])
        assert total[0] == 0.0  # no self-contribution

    def test_additive(self):
        g = _gains([[0, 0], [1, 0], [0.5, 0.5]])
        total = received_power(g, np.array([0, 1]))
        assert total[2] == pytest.approx(g[0, 2] + g[1, 2])


class TestInterferenceAt:
    def test_excludes_designated_sender(self):
        g = _gains([[0, 0], [0.6, 0], [1.2, 0]])
        tx = np.array([0, 2])
        i = interference_at(g, tx, listener=1, sender=0)
        assert i == pytest.approx(g[2, 1])

    def test_sender_not_transmitting_is_fine(self):
        g = _gains([[0, 0], [0.6, 0], [1.2, 0]])
        i = interference_at(g, np.array([2]), listener=1, sender=0)
        assert i == pytest.approx(g[2, 1])


class TestResolveReception:
    def test_lone_transmitter_reaches_neighbors(self):
        g = _gains([[0, 0], [0.5, 0], [0.9, 0]])
        heard = resolve_reception(g, np.array([0]), PARAMS.noise, PARAMS.beta)
        assert heard[1] == 0
        assert heard[2] == 0  # 0.9 < r = 1, no interference
        assert heard[0] == NO_SENDER  # transmitters do not receive

    def test_out_of_range_not_heard(self):
        g = _gains([[0, 0], [1.5, 0]])
        heard = resolve_reception(g, np.array([0]), PARAMS.noise, PARAMS.beta)
        assert heard[1] == NO_SENDER

    def test_exactly_at_range_heard(self):
        # dist = 1 = r: SINR = P/(N * 1) = beta exactly -> received.
        g = _gains([[0, 0], [1.0, 0]])
        heard = resolve_reception(g, np.array([0]), PARAMS.noise, PARAMS.beta)
        assert heard[1] == 0

    def test_symmetric_colliders_destroy_each_other(self):
        # Two transmitters equidistant from the listener: SINR = g/(N+g) < 1.
        g = _gains([[0, 0], [1.0, 0], [0.5, 0.4]])
        heard = resolve_reception(
            g, np.array([0, 1]), PARAMS.noise, PARAMS.beta
        )
        assert heard[2] == NO_SENDER

    def test_capture_nearest_wins(self):
        # Very close transmitter survives a far co-transmitter.
        g = _gains([[0, 0], [0.1, 0], [1.0, 0]])
        heard = resolve_reception(
            g, np.array([0, 2]), PARAMS.noise, PARAMS.beta
        )
        assert heard[1] == 0

    def test_no_transmitters_nobody_hears(self):
        g = _gains([[0, 0], [0.5, 0]])
        heard = resolve_reception(
            g, np.array([], dtype=int), PARAMS.noise, PARAMS.beta
        )
        assert np.all(heard == NO_SENDER)

    def test_all_transmit_nobody_hears(self):
        g = _gains([[0, 0], [0.5, 0], [1.0, 0]])
        heard = resolve_reception(
            g, np.array([0, 1, 2]), PARAMS.noise, PARAMS.beta
        )
        assert np.all(heard == NO_SENDER)

    def test_at_most_one_sender_heard_with_beta_geq_one(self):
        rng = np.random.default_rng(3)
        coords = rng.uniform(0, 3, size=(30, 2))
        g = _gains(coords)
        for _ in range(20):
            tx = np.flatnonzero(rng.random(30) < 0.2)
            heard = resolve_reception(g, tx, PARAMS.noise, PARAMS.beta)
            receivers = np.flatnonzero(heard != NO_SENDER)
            # every heard sender must actually transmit; receivers not
            for u in receivers:
                assert heard[u] in tx
                assert u not in tx

    def test_heard_sender_is_strongest(self):
        rng = np.random.default_rng(4)
        coords = rng.uniform(0, 2, size=(12, 2))
        g = _gains(coords)
        tx = np.array([0, 3, 7])
        best, sinr = sinr_values(g, tx, PARAMS.noise)
        for u in range(12):
            if u in tx:
                continue
            assert g[best[u], u] == pytest.approx(g[tx, u].max())


class TestBatchedReception:
    """The ``(B, n)`` resolver agrees elementwise with the single form."""

    def _random_case(self, seed, n=20, B=8, density=0.25):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 2.5, size=(n, 2))
        g = _gains(coords)
        tx_mask = rng.random((B, n)) < density
        return g, tx_mask

    def test_matches_single_resolver_elementwise(self):
        for seed in range(8):
            g, tx_mask = self._random_case(seed)
            batched = resolve_reception_batch(
                g, tx_mask, PARAMS.noise, PARAMS.beta
            )
            for b in range(tx_mask.shape[0]):
                single = resolve_reception(
                    g, np.flatnonzero(tx_mask[b]), PARAMS.noise, PARAMS.beta
                )
                assert np.array_equal(batched[b], single), (seed, b)

    def test_matches_on_equal_gain_ties(self):
        # Symmetric geometry: equidistant transmitters have bitwise-equal
        # gains, so the tie-break (lowest index) must match the single
        # resolver exactly.
        g = _gains([[0, 0], [1, 0], [2, 0], [3, 0]])
        tx_mask = np.array(
            [[True, False, False, True], [False, True, True, False]]
        )
        batched = resolve_reception_batch(g, tx_mask, PARAMS.noise, 0.4)
        for b in range(2):
            single = resolve_reception(
                g, np.flatnonzero(tx_mask[b]), PARAMS.noise, 0.4
            )
            assert np.array_equal(batched[b], single)

    def test_half_duplex_across_batch(self):
        g, tx_mask = self._random_case(3, density=0.5)
        heard = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        assert np.all(heard[tx_mask] == NO_SENDER)

    def test_empty_transmitter_rows(self):
        g, tx_mask = self._random_case(4)
        tx_mask[2] = False  # one replication with nobody transmitting
        heard = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        assert np.all(heard[2] == NO_SENDER)

    def test_all_rows_empty(self):
        g = _gains([[0, 0], [0.5, 0]])
        tx_mask = np.zeros((3, 2), dtype=bool)
        heard = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        assert np.all(heard == NO_SENDER)

    def test_heard_senders_transmit_in_own_replication(self):
        # A replication must never hear a station that only transmits in
        # *another* replication of the batch.
        g, tx_mask = self._random_case(5, density=0.15)
        heard = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        for b in range(tx_mask.shape[0]):
            for u in np.flatnonzero(heard[b] != NO_SENDER):
                assert tx_mask[b, heard[b, u]]

    def test_slab_chunking_is_bitwise_neutral(self):
        g, tx_mask = self._random_case(6, n=12, B=16)
        whole = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        slabbed = resolve_reception_batch(
            g, tx_mask, PARAMS.noise, PARAMS.beta, max_elements=12 * 12
        )
        assert np.array_equal(whole, slabbed)

    def test_batch_size_is_bitwise_neutral(self):
        # Rows resolved inside a batch equal the same rows resolved alone.
        g, tx_mask = self._random_case(7)
        whole = resolve_reception_batch(g, tx_mask, PARAMS.noise, PARAMS.beta)
        for b in range(tx_mask.shape[0]):
            alone = resolve_reception_batch(
                g, tx_mask[b:b + 1], PARAMS.noise, PARAMS.beta
            )[0]
            assert np.array_equal(whole[b], alone)

    def test_sinr_values_batch_match(self):
        g, tx_mask = self._random_case(8, B=4)
        best, sinr = sinr_values_batch(g, tx_mask, PARAMS.noise)
        for b in range(4):
            tx = np.flatnonzero(tx_mask[b])
            sbest, ssinr = sinr_values(g, tx, PARAMS.noise)
            keep = ssinr > 0
            assert np.allclose(sinr[b][keep], ssinr[keep])
            assert np.array_equal(best[b][keep], sbest[keep])

    def test_rejects_bad_shape(self):
        g = _gains([[0, 0], [0.5, 0]])
        with pytest.raises(ValueError):
            sinr_values_batch(g, np.zeros((2, 3), dtype=bool), PARAMS.noise)


class TestSinrValues:
    def test_empty_transmitters(self):
        g = _gains([[0, 0], [1, 0]])
        best, sinr = sinr_values(g, np.array([], dtype=int), PARAMS.noise)
        assert np.all(best == NO_SENDER)
        assert np.all(sinr == 0)

    def test_matches_manual_sinr(self):
        g = _gains([[0, 0], [0.6, 0], [1.2, 0]])
        tx = np.array([0, 2])
        best, sinr = sinr_values(g, tx, PARAMS.noise)
        manual = g[0, 1] / (PARAMS.noise + g[2, 1])
        assert best[1] == 0
        assert sinr[1] == pytest.approx(manual)


class TestKernelEdgeCases:
    """Degenerate shapes where loop bounds and sentinels earn their keep.

    Each case also asserts explicit ``kernel="numpy"`` vs
    ``kernel="compiled"`` bitwise equality, independent of the autouse
    environment parametrization — so a broken env override cannot mask
    a divergence.
    """

    @staticmethod
    def _both(fn):
        a = fn(kernel="numpy")
        b = fn(kernel="compiled")
        assert np.array_equal(a, b)
        return a

    def test_single_station_transmitting(self):
        g = _gains([[0.0, 0.0]])  # n=1: the 1x1 zero matrix
        heard = self._both(
            lambda kernel: resolve_reception(
                g, np.array([0]), PARAMS.noise, PARAMS.beta, kernel=kernel
            )
        )
        assert heard[0] == NO_SENDER  # half-duplex, nobody to hear it

    def test_single_station_silent(self):
        g = _gains([[0.0, 0.0]])
        heard = self._both(
            lambda kernel: resolve_reception(
                g, np.array([], dtype=int), PARAMS.noise, PARAMS.beta,
                kernel=kernel,
            )
        )
        assert heard[0] == NO_SENDER

    def test_all_transmit(self):
        g = _gains([[0, 0], [0.5, 0], [1.0, 0], [0.2, 0.4]])
        heard = self._both(
            lambda kernel: resolve_reception(
                g, np.arange(4), PARAMS.noise, PARAMS.beta, kernel=kernel
            )
        )
        assert np.all(heard == NO_SENDER)

    def test_empty_transmitter_set_batched(self):
        g = _gains([[0, 0], [0.5, 0], [1.0, 0]])
        tx_mask = np.zeros((4, 3), dtype=bool)
        tx_mask[1, 0] = True  # one live row between empty ones
        heard = self._both(
            lambda kernel: resolve_reception_batch(
                g, tx_mask, PARAMS.noise, PARAMS.beta, kernel=kernel
            )
        )
        assert np.all(heard[[0, 2, 3]] == NO_SENDER)
        assert heard[1, 1] == 0

    def test_single_listener(self):
        # Everyone but station 2 transmits: one listener, full channel.
        g = _gains([[0, 0], [3.0, 0], [0.3, 0.3]])
        heard = self._both(
            lambda kernel: resolve_reception(
                g, np.array([0, 1]), PARAMS.noise, PARAMS.beta,
                kernel=kernel,
            )
        )
        assert heard[2] == 0  # station 1 is too far to interfere
        assert heard[0] == heard[1] == NO_SENDER

    def test_unsorted_duplicate_transmitters_single(self):
        # sinr_values folds in the *given* order (argmax positional
        # semantics); the compiled loop must reproduce that, not a
        # sorted variant.
        g = _gains(np.random.default_rng(11).uniform(0, 2, size=(9, 2)))
        tx = np.array([7, 2, 5, 2])
        for part in (0, 1):
            self._both(
                lambda kernel: sinr_values(
                    g, tx, PARAMS.noise, kernel=kernel
                )[part]
            )

    def test_sparse_backend_edges(self):
        from repro.sinr.sparse import SparseGainBackend

        coords = np.random.default_rng(5).uniform(0, 3, size=(16, 2))
        for tx in (
            np.array([], dtype=int),        # empty transmitter set
            np.arange(16),                  # all transmit
            np.array([3]),                  # lone transmitter
        ):
            heard = self._both(
                lambda kernel: SparseGainBackend(
                    coords, PARAMS, None, 1.5, kernel=kernel
                ).resolve_reception(tx, PARAMS.noise, PARAMS.beta)
            )
            if tx.size in (0, 16):
                assert np.all(heard == NO_SENDER)


class TestRankCacheEviction:
    """The listener-ranking cache must keep matrices in active service.

    Regression for the defensive ``.clear()`` that wiped the whole cache
    (including rankings of still-live gain matrices) whenever a 33rd
    matrix appeared: eviction is now least-recently-used, so a matrix
    that keeps being ranked survives arbitrary churn of other matrices.
    """

    @staticmethod
    def _matrix(rng, n=6):
        g = rng.random((n, n))
        np.fill_diagonal(g, 0.0)
        return g

    def test_live_ranking_survives_32_plus_matrices(self):
        from repro.sinr.reception import (
            _RANK_CACHE,
            _RANK_CACHE_LIMIT,
            _listener_ranking,
        )

        rng = np.random.default_rng(3)
        live = self._matrix(rng)
        rank0, pos0 = _listener_ranking(live)
        others = []  # held alive: finalizers must not prune for us
        for _ in range(_RANK_CACHE_LIMIT + 8):
            other = self._matrix(rng)
            others.append(other)
            _listener_ranking(other)
            # The live matrix is ranked every round (the round-loop access
            # pattern); identity proves the cache entry survived.
            rank, pos = _listener_ranking(live)
            assert rank is rank0
            assert pos is pos0
        assert len(_RANK_CACHE) <= _RANK_CACHE_LIMIT

    def test_eviction_drops_least_recently_used_first(self):
        from repro.sinr.reception import (
            _RANK_CACHE,
            _RANK_CACHE_LIMIT,
            _listener_ranking,
        )

        rng = np.random.default_rng(4)
        cold = self._matrix(rng)
        cold_rank, _ = _listener_ranking(cold)
        churn = [self._matrix(rng) for _ in range(_RANK_CACHE_LIMIT)]
        for g in churn:
            _listener_ranking(g)
        # Never re-ranked while 32 fresh matrices arrived: evicted.
        assert id(cold) not in _RANK_CACHE
        new_rank, _ = _listener_ranking(cold)
        assert new_rank is not cold_rank
        assert np.array_equal(new_rank, cold_rank)

    def test_concurrent_churn_is_safe(self):
        # Regression for the unlocked LRU: concurrent rank lookups with
        # eviction churn could hit `move_to_end`/`popitem` races (KeyError
        # out of a *read* path).  The service drives resolvers from
        # executor threads, so hammer the cache from several threads past
        # its limit and require clean results and a bounded cache.
        import threading

        from repro.sinr.reception import (
            _RANK_CACHE,
            _RANK_CACHE_LIMIT,
            _listener_ranking,
        )

        live = self._matrix(np.random.default_rng(5))
        expect_rank, expect_pos = _listener_ranking(live)
        expect_rank = expect_rank.copy()
        expect_pos = expect_pos.copy()
        errors: list = []

        def churn(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(_RANK_CACHE_LIMIT):
                    _listener_ranking(self._matrix(rng))
                    rank, pos = _listener_ranking(live)
                    if not (
                        np.array_equal(rank, expect_rank)
                        and np.array_equal(pos, expect_pos)
                    ):
                        raise AssertionError("corrupt ranking under churn")
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(100 + t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert len(_RANK_CACHE) <= _RANK_CACHE_LIMIT


class TestResolveReceptionMany:
    """The service's serving oracle: heterogeneous sets, batched once.

    Every row must be bitwise identical to resolving that transmitter
    set alone through the batched resolver — that is the contract that
    makes the daemon's request coalescing semantically invisible.
    """

    def _case(self, seed, n=10, sets=5):
        rng = np.random.default_rng(seed)
        g = _gains(rng.uniform(0, 1.5, size=(n, 2)))
        transmitter_sets = [
            np.flatnonzero(rng.random(n) < rng.uniform(0.0, 0.5))
            for _ in range(sets)
        ]
        transmitter_sets.append(np.array([], dtype=int))  # empty set row
        transmitter_sets.append(np.arange(n))             # all-transmit row
        return g, transmitter_sets

    def test_rows_match_singleton_batches(self):
        from repro.sinr.reception import resolve_reception_many

        g, sets = self._case(9)
        many = resolve_reception_many(g, sets, PARAMS.noise, PARAMS.beta)
        assert len(many) == len(sets)
        for tx, heard in zip(sets, many):
            mask = np.zeros((1, g.shape[0]), dtype=bool)
            mask[0, tx] = True
            alone = resolve_reception_batch(
                g, mask, PARAMS.noise, PARAMS.beta
            )[0]
            assert np.array_equal(heard, alone)

    def test_ragged_sets_accepted(self):
        from repro.sinr.reception import resolve_reception_many

        g, _ = self._case(10, n=6)
        many = resolve_reception_many(
            g, [[0], [0, 1, 2], []], PARAMS.noise, PARAMS.beta
        )
        assert [m.shape for m in many] == [(6,), (6,), (6,)]
        assert np.all(many[2] == NO_SENDER)

    def test_empty_request_list(self):
        from repro.sinr.reception import resolve_reception_many

        g, _ = self._case(11, n=4)
        assert resolve_reception_many(g, [], PARAMS.noise, PARAMS.beta) == []

    def test_sparse_backend_rows_match(self):
        from repro.sinr.reception import resolve_reception_many
        from repro.sinr.sparse import SparseGainBackend

        rng = np.random.default_rng(12)
        coords = rng.uniform(0, 2.0, size=(14, 2))
        backend = SparseGainBackend(coords, PARAMS, None, 1.5)
        sets = [np.array([0, 5]), np.array([], dtype=int), np.arange(7)]
        many = resolve_reception_many(
            backend, sets, PARAMS.noise, PARAMS.beta
        )
        for tx, heard in zip(sets, many):
            mask = np.zeros((1, 14), dtype=bool)
            mask[0, tx] = True
            alone = backend.resolve_reception_batch(
                mask, PARAMS.noise, PARAMS.beta
            )[0]
            assert np.array_equal(heard, alone)
