"""Tests for result-cache LRU pruning and the cache_gc tool."""

import os
import sys
import time

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tools")
)
import cache_gc  # noqa: E402  (tools/ is not a package)

from repro.fastsim.cache import ResultCache  # noqa: E402


def _fill(cache, keys, size=1000):
    for i, key in enumerate(keys):
        cache.put(key, (b"x" * size, {"i": i}))
        # distinct mtimes so LRU order is deterministic
        past = time.time() - 1000 + i
        os.utime(cache._path(key), (past, past))


class TestPrune:
    def test_report_only_without_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c"])
        report = cache.prune()
        assert report["entries"] == 3
        assert report["evicted"] == 0
        assert len(cache) == 3

    def test_max_entries_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["old", "mid", "new"])
        report = cache.prune(max_entries=2)
        assert report["evicted"] == 1
        assert cache.get("old") is None
        assert cache.get("mid") is not None
        assert cache.get("new") is not None

    def test_max_bytes_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c", "d"], size=1000)
        _, total = cache.usage()
        report = cache.prune(max_bytes=total // 2)
        assert report["kept_bytes"] <= total // 2
        assert report["evicted"] >= 2

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["stale", "hot"])
        # "stale" is newer on disk, but a hit on "hot" must protect it
        past = time.time() - 10
        os.utime(cache._path("stale"), (past, past))
        assert cache.get("hot") is not None  # refreshes mtime to now
        cache.prune(max_entries=1)
        assert cache.get("hot") is not None
        assert cache.get("stale") is None

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        report = cache.prune(max_entries=0, dry_run=True)
        assert report["evicted"] == 2
        assert len(cache) == 2

    def test_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        report = cache.prune(max_entries=1)
        assert report["entries"] == 0
        assert report["evicted"] == 0


class TestTmpSweep:
    """Regression: a crashed ``put`` leaks a ``.{key}.tmp`` that the
    ``*.pkl`` accounting never saw and nothing ever deleted.  ``prune``
    now sweeps such debris (and stale ``*.lease`` files) past a grace
    window."""

    @staticmethod
    def _debris(tmp_path, name, age_s):
        path = tmp_path / name
        path.write_bytes(b"orphan")
        old = time.time() - age_s
        os.utime(path, (old, old))
        return path

    def test_stale_tmp_and_lease_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a"])
        stale_tmp = self._debris(tmp_path, ".abcd1234.x7.tmp", 7200)
        stale_lease = self._debris(tmp_path, "deadbeef.lease", 7200)
        report = cache.prune()
        assert report["tmp_swept"] == 2
        assert not stale_tmp.exists() and not stale_lease.exists()
        assert cache.get("a") is not None  # entries untouched

    def test_fresh_debris_gets_grace(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh_tmp = self._debris(tmp_path, ".abcd1234.x7.tmp", 0)
        fresh_lease = self._debris(tmp_path, "deadbeef.lease", 0)
        report = cache.prune()
        assert report["tmp_swept"] == 0
        assert fresh_tmp.exists() and fresh_lease.exists()
        # A tighter grace collects them; None skips the sweep entirely.
        assert cache.prune(tmp_grace_s=None)["tmp_swept"] == 0
        report = cache.prune(tmp_grace_s=0.0)
        assert report["tmp_swept"] == 2

    def test_dry_run_reports_without_deleting(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = self._debris(tmp_path, ".abcd1234.x7.tmp", 7200)
        report = cache.prune(dry_run=True)
        assert report["tmp_swept"] == 1
        assert stale.exists()

    def test_debris_invisible_to_entry_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        self._debris(tmp_path, ".abcd1234.x7.tmp", 7200)
        assert len(cache) == 2
        entries, _size = cache.usage()
        assert entries == 2

    def test_cli_reports_sweep(self, tmp_path, capsys):
        self._debris(tmp_path, "deadbeef.lease", 7200)
        assert cache_gc.main(["--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "swept 1 stale debris file(s)" in out


class TestClockSkew:
    """Regression (PR 9 satellite): future file mtimes — a skewed NFS
    client, a container with a broken clock — must not pin entries in
    the cache as 'freshest forever' or make debris unsweepable."""

    @staticmethod
    def _future(path, ahead_s):
        future = time.time() + ahead_s
        os.utime(path, (future, future))

    def test_future_entry_ranks_oldest_not_freshest(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["honest_old", "honest_new"])
        cache.put("skewed", (b"x" * 1000, {}))
        self._future(cache._path("skewed"), 86400)
        cache.prune(max_entries=2, tmp_grace_s=None)
        # The skewed entry is evicted first; honestly-dated entries
        # keep their LRU order.
        assert cache.get("skewed") is None
        assert cache.get("honest_old") is not None
        assert cache.get("honest_new") is not None

    def test_mild_skew_within_tolerance_is_freshest(self, tmp_path):
        from repro.fastsim.cache import CLOCK_SKEW_TOLERANCE_S

        cache = ResultCache(tmp_path)
        _fill(cache, ["old", "new"])
        cache.put("slightly_ahead", (b"x" * 1000, {}))
        self._future(
            cache._path("slightly_ahead"), CLOCK_SKEW_TOLERANCE_S / 2
        )
        cache.prune(max_entries=2, tmp_grace_s=None)
        # Sub-tolerance skew (mtime granularity, small drift) still
        # ranks by mtime: the genuinely old entry goes first.
        assert cache.get("old") is None
        assert cache.get("slightly_ahead") is not None

    def test_far_future_debris_swept_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        debris = tmp_path / ".abcd1234.x7.tmp"
        debris.write_bytes(b"orphan")
        self._future(debris, 86400)
        # Never ages into the grace horizon by waiting — the skew
        # tolerance catches it on the next sweep.
        report = cache.prune()
        assert report["tmp_swept"] == 1
        assert not debris.exists()


class TestQuarantineSweep:
    """Quarantined entries are preserved for inspection, surfaced in
    prune() stats, and aged out like other debris."""

    def test_prune_counts_and_ages_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, ["good"])
        bad = tmp_path / "bad.quarantine"
        bad.write_bytes(b"preserved corpse")
        report = cache.prune()
        assert report["quarantined"] == 1
        assert bad.exists()  # younger than the grace window
        old = time.time() - 7200
        os.utime(bad, (old, old))
        report = cache.prune()
        assert report["tmp_swept"] == 1
        assert not bad.exists()
        assert cache.get("good") is not None


class TestVerifyCli:
    """``cache_gc.py --verify``: read-only audit, nonzero exit on
    corruption (the fleet-cron alerting contract)."""

    def test_clean_cache_exits_zero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        assert cache_gc.main(
            ["--cache-dir", str(tmp_path), "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 verified" in out and "0 corrupt" in out

    def test_corrupt_entry_exits_nonzero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        path = cache._path("b")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache_gc.main(
            ["--cache-dir", str(tmp_path), "--verify"]
        ) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "b" in out
        # Read-only: the corrupt entry is reported, not renamed.
        assert path.exists()

    def test_quarantine_exits_nonzero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a"])
        (tmp_path / "dead.quarantine").write_bytes(b"x")
        assert cache_gc.main(
            ["--cache-dir", str(tmp_path), "--verify"]
        ) == 1
        assert "1 quarantined" in capsys.readouterr().out

    def test_legacy_entries_are_not_corruption(self, tmp_path, capsys):
        import pickle

        cache = ResultCache(tmp_path)
        (tmp_path / "old.pkl").write_bytes(pickle.dumps(("v", {})))
        assert cache_gc.main(
            ["--cache-dir", str(tmp_path), "--verify"]
        ) == 0
        assert "1 legacy" in capsys.readouterr().out


class TestCacheGcCli:
    def test_reports_and_prunes(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b", "c"])
        assert cache_gc.main(
            ["--cache-dir", str(tmp_path), "--max-entries", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 2" in out
        assert len(cache) == 1

    def test_dry_run_flag(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, ["a", "b"])
        cache_gc.main(
            ["--cache-dir", str(tmp_path), "--max-entries", "0",
             "--dry-run"]
        )
        assert "would evict 2" in capsys.readouterr().out
        assert len(cache) == 2

    def test_format_report(self):
        text = cache_gc.format_report(
            {
                "root": "/x", "entries": 5, "bytes": 2e6, "evicted": 1,
                "kept_entries": 4, "kept_bytes": 1.5e6, "dry_run": False,
            }
        )
        assert "5 entries" in text and "evicted 1" in text


@pytest.mark.parametrize("flag", [[], ["--no-cache"]])
def test_cli_cache_prune_flag(tmp_path, capsys, flag, monkeypatch):
    """--cache-prune runs after the experiments, even with --no-cache
    (that flag only disables the cache during the run)."""
    from repro.experiments.__main__ import main

    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"
    rc = main(
        ["E01", "--scale", "quick", "--cache-dir", str(cache_dir),
         "--cache-prune", "0"] + flag
    )
    assert rc == 0
    assert "cache prune" in capsys.readouterr().out
    assert len(ResultCache(cache_dir)) == 0
