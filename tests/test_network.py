"""Tests for the Network aggregate and communication-graph utilities."""

import numpy as np
import pytest

from repro.errors import (
    DeploymentError,
    DisconnectedNetworkError,
    GeometryError,
)
from repro.network.graph import (
    bfs_layers,
    communication_graph,
    diameter,
    eccentricity,
    granularity,
    max_degree,
)
from repro.network.network import Network
from repro.sinr.params import SINRParameters


class TestCommunicationGraph:
    def test_edge_iff_within_radius(self, three_station_line):
        g = three_station_line.graph
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 2)  # distance 1.2 > 0.7

    def test_no_self_loops(self, small_square):
        assert all(u != v for u, v in small_square.graph.edges)

    def test_rejects_bad_radius(self):
        with pytest.raises(GeometryError):
            communication_graph(np.zeros((2, 2)), 0.0)

    def test_isolated_station(self):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        assert net.graph.number_of_edges() == 0
        assert not net.is_connected


class TestDiameterAndEccentricity:
    def test_path_graph_diameter(self, three_station_line):
        assert three_station_line.diameter == 2

    def test_single_station(self):
        net = Network(np.array([[0.0, 0.0]]))
        assert net.diameter == 0

    def test_disconnected_raises(self):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        with pytest.raises(DisconnectedNetworkError):
            _ = net.diameter

    def test_eccentricity_from_end(self, three_station_line):
        assert three_station_line.eccentricity(0) == 2
        assert three_station_line.eccentricity(1) == 1

    def test_eccentricity_unknown_source(self, three_station_line):
        with pytest.raises(GeometryError):
            eccentricity(three_station_line.graph, 99)

    def test_diameter_at_most_twice_eccentricity(self, small_square):
        d = small_square.diameter
        e = small_square.eccentricity(0)
        assert e <= d <= 2 * e


class TestBfsLayers:
    def test_layers_of_path(self, three_station_line):
        layers = three_station_line.bfs_layers(0)
        assert layers == [[0], [1], [2]]

    def test_layers_partition_stations(self, small_square):
        layers = small_square.bfs_layers(0)
        flat = [v for layer in layers for v in layer]
        assert sorted(flat) == list(range(small_square.size))

    def test_layer_count_is_ecc_plus_one(self, small_square):
        layers = small_square.bfs_layers(0)
        assert len(layers) == small_square.eccentricity(0) + 1

    def test_unknown_source_raises(self, three_station_line):
        with pytest.raises(GeometryError):
            bfs_layers(three_station_line.graph, 10)


class TestDegreeAndGranularity:
    def test_max_degree_path(self, three_station_line):
        assert three_station_line.max_degree == 2

    def test_max_degree_empty(self):
        import networkx as nx

        assert max_degree(nx.Graph()) == 0

    def test_granularity_uniform_chain(self, small_chain):
        # Edges: length 0.5 (hops) and 1.0 (two-hop shortcuts? 1.0 > 0.7 no)
        assert small_chain.granularity == pytest.approx(1.0)

    def test_granularity_mixed_edges(self):
        net = Network(np.array([[0.0, 0.0], [0.1, 0.0], [0.7, 0.0]]))
        # Edges: (0,1) len 0.1, (1,2) len 0.6, (0,2) len 0.7.
        assert net.granularity == pytest.approx(7.0)

    def test_granularity_no_edges(self):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        assert net.granularity == 1.0


class TestNetwork:
    def test_len(self, small_square):
        assert len(small_square) == 32

    def test_rejects_empty(self):
        with pytest.raises(DeploymentError):
            Network(np.zeros((0, 2)))

    def test_rejects_colocated(self):
        net = Network(np.array([[0.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(DeploymentError):
            _ = net.distances

    def test_coords_read_only(self, small_square):
        with pytest.raises(ValueError):
            small_square.coords[0, 0] = 99.0

    def test_distances_cached(self, small_square):
        assert small_square.distances is small_square.distances

    def test_gains_shape(self, small_square):
        assert small_square.gains.shape == (32, 32)

    def test_one_dimensional_coords_promoted(self):
        net = Network(np.array([0.0, 0.5, 1.0]))
        assert net.coords.shape == (3, 2) or net.coords.shape == (3, 1)
        assert net.size == 3

    def test_ball_query(self, three_station_line):
        assert list(three_station_line.ball(0, 0.7)) == [0, 1]

    def test_with_params_changes_graph(self, three_station_line):
        tight = three_station_line.with_params(
            SINRParameters.default(eps=0.5)
        )
        # comm radius 0.5 < 0.6: the line disconnects.
        assert not tight.is_connected
        assert three_station_line.is_connected  # original untouched

    def test_describe_keys(self, small_square):
        d = small_square.describe()
        for key in ("name", "n", "connected", "diameter", "max_degree",
                    "granularity", "alpha", "beta", "eps"):
            assert key in d

    def test_describe_disconnected(self):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        d = net.describe()
        assert d["connected"] is False
        assert d["diameter"] is None

    def test_repr(self, small_square):
        assert "n=32" in repr(small_square)

    def test_neighbors_sorted(self, small_grid):
        nbrs = small_grid.neighbors(0)
        assert nbrs == sorted(nbrs)
        assert 0 not in nbrs


class TestNetworkCachesAndFingerprint:
    def test_max_degree_cached(self):
        coords = np.random.default_rng(6).random((16, 2)) * 2.0
        net = Network(coords)
        first = net.max_degree
        assert net._max_degree == first
        # Cached value is served without re-walking the graph.
        net._max_degree = first + 99
        assert net.max_degree == first + 99

    def test_fingerprint_stable_across_instances(self):
        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        a = Network(coords, name="a")
        b = Network(coords.copy(), name="b")
        assert a.fingerprint() == b.fingerprint()  # name is cosmetic

    def test_fingerprint_changes_with_coords(self):
        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        moved = coords.copy()
        moved[0, 0] += 1e-9
        assert (
            Network(coords).fingerprint() != Network(moved).fingerprint()
        )

    def test_fingerprint_changes_with_params(self):
        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        assert (
            Network(coords).fingerprint()
            != Network(
                coords, params=SINRParameters.default(alpha=4.0)
            ).fingerprint()
        )

    def test_fingerprint_is_cached(self, small_square):
        assert small_square.fingerprint() is small_square.fingerprint()

    def test_fingerprint_changes_with_channel(self):
        from repro.sinr.channel import DualSlope, LogNormalShadowing

        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        prints = {
            Network(coords).fingerprint(),
            Network(
                coords, channel=LogNormalShadowing(3.0, seed=1)
            ).fingerprint(),
            Network(
                coords, channel=LogNormalShadowing(3.0, seed=2)
            ).fingerprint(),
            Network(coords, channel=DualSlope()).fingerprint(),
        }
        assert len(prints) == 4

    def test_default_channel_keeps_fingerprint(self):
        from repro.sinr.channel import UniformPower

        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        assert (
            Network(coords).fingerprint()
            == Network(coords, channel=UniformPower()).fingerprint()
        )

    def test_with_channel_copies(self, small_square):
        from repro.sinr.channel import LogNormalShadowing

        shadowed = small_square.with_channel(LogNormalShadowing(2.0, 3))
        assert shadowed is not small_square
        assert np.array_equal(shadowed.coords, small_square.coords)
        assert shadowed.params is small_square.params
        assert not np.array_equal(shadowed.gains, small_square.gains)

    def test_mac_and_traffic_identity_lives_in_point_key(self):
        # The MAC/traffic mirror of the channel-identity regression
        # above: strategy objects are deliberately NOT part of the
        # network fingerprint — they reach cache keys through the sweep
        # kwargs, so runs under different MACs / workloads share a
        # fingerprint yet never alias each other's cached results.
        from repro.fastsim.cache import point_key
        from repro.mac import CSMA, RateTable, SlottedAloha
        from repro.traffic import Flow, Poisson

        coords = np.random.default_rng(5).random((8, 2)) * 3.0
        net = Network(coords)
        assert net.fingerprint() == Network(coords).fingerprint()

        def key(kwargs):
            return point_key(
                kind="spont_broadcast",
                network_fingerprint=net.fingerprint(),
                constants=None, seed=1, n_replications=2, kwargs=kwargs,
            )

        keys = {
            key({"source": 0}),
            key({"source": 0, "mac": SlottedAloha(0.5)}),
            key({"source": 0, "mac": CSMA()}),
            key({"source": 0, "rate_table": RateTable()}),
            key({"source": 0, "flows": [Flow(0, 1, Poisson(1.0))]}),
        }
        assert len(keys) == 5
