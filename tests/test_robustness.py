"""Robustness scenarios: parameter uncertainty and failure injection.

The paper's model grants stations only *bounds* on the physical
parameters (Sect. 1.1); the first group runs the full pipeline with the
conservative parameter choice while the channel uses different true
parameters inside the bounds.  The second group injects adversarial
behaviour the model allows — permanently transmitting jammers — through
the public node API, checking the protocols degrade predictably rather
than silently corrupting state.
"""

import numpy as np
import pytest

from repro.core import ProtocolConstants, run_spont_broadcast
from repro.core.broadcast_spont import SBroadcastNode
from repro.core.constants import ColoringSchedule
from repro.core.outcome import NEVER_INFORMED
from repro.deploy import uniform_chain, uniform_square
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.node import NodeAlgorithm
from repro.sinr.params import ParameterBounds, SINRParameters


class TestParameterUncertainty:
    """Protocols run with conservative parameters on a different channel."""

    def _bounds(self):
        return ParameterBounds(
            alpha_min=2.8, alpha_max=3.5,
            beta_min=1.0, beta_max=1.3,
            noise_min=0.8, noise_max=1.2,
        )

    def test_conservative_choice_is_inside_bounds(self):
        bounds = self._bounds()
        safe = bounds.conservative()
        assert bounds.contains(safe)

    def test_broadcast_with_conservative_params(self, rng):
        # The *channel* uses a benign truth inside the bounds; the network
        # object given to the protocol carries the conservative params.
        bounds = self._bounds()
        safe_params = bounds.conservative(eps=0.3)
        coords = uniform_chain(10, gap=0.45).coords
        net = Network(np.array(coords), params=safe_params)
        out = run_spont_broadcast(
            net, 0, ProtocolConstants.practical(), rng
        )
        assert out.success

    def test_conservative_range_shrinks_comm_graph(self):
        # Conservative beta/noise shrink nothing (power compensates), but
        # the conservative alpha changes interference math; the comm
        # radius stays (1-eps): the graph is defined by the safe params.
        bounds = self._bounds()
        safe = bounds.conservative(eps=0.3)
        assert safe.comm_radius == pytest.approx(0.7)

    def test_true_params_easier_than_conservative(self, rng):
        # Same deployment; truth has weaker noise -> strictly more edges
        # possible, so a protocol sized for the conservative graph works.
        truth = SINRParameters(
            alpha=3.5, beta=1.0, noise=0.8, power=1.56, eps=0.3
        )
        coords = uniform_chain(8, gap=0.45).coords
        net_true = Network(np.array(coords), params=truth)
        out = run_spont_broadcast(
            net_true, 0, ProtocolConstants.practical(), rng
        )
        assert out.success


class JammerNode(NodeAlgorithm):
    """A faulty station that transmits garbage every round."""

    def transmission(self, round_no):
        return 1.0, None  # None payload: never informs anyone

    def end_round(self, reception):
        pass


class TestJammerInjection:
    """Failure injection through the public node API."""

    def _run_with_jammer(self, net, jammer_index, rng, budget=4000):
        constants = ProtocolConstants.practical()
        schedule = ColoringSchedule(constants, net.size)
        nodes = []
        for i in range(net.size):
            if i == jammer_index:
                nodes.append(JammerNode(i))
            else:
                payload = "m" if i == 0 else None
                nodes.append(SBroadcastNode(i, schedule, payload))
        sim = Simulator(net, nodes, rng)
        sim.run(
            budget,
            stop=lambda s: all(
                getattr(node, "informed", True) for node in s.nodes
            ),
            check_every=8,
        )
        informed = np.array(
            [getattr(node, "informed_round", 0) for node in nodes]
        )
        return informed

    def test_far_jammer_does_not_block_broadcast(self, rng):
        # Jammer sits far beyond interference relevance of the chain end.
        coords = np.vstack([
            uniform_chain(8, gap=0.5).coords,
            [[50.0, 50.0]],
        ])
        net = Network(coords)
        informed = self._run_with_jammer(net, net.size - 1, rng)
        others = np.delete(informed, net.size - 1)
        assert np.all(others != NEVER_INFORMED)

    def test_adjacent_jammer_deafens_its_neighbourhood(self, rng):
        # A jammer 0.05 from a station saturates its SINR: that station
        # can never receive, so broadcast must NOT complete there, and the
        # run must end cleanly at its budget anyway.
        chain = uniform_chain(6, gap=0.5)
        victim = 3
        jam_pos = chain.coords[victim] + np.array([0.05, 0.0])
        net = Network(np.vstack([chain.coords, [jam_pos]]))
        informed = self._run_with_jammer(net, net.size - 1, rng, budget=1500)
        assert informed[victim] == NEVER_INFORMED

    def test_jammer_blocks_only_locally(self, rng):
        # Stations upstream of the jammed victim still get informed.
        chain = uniform_chain(6, gap=0.5)
        victim = 3
        jam_pos = chain.coords[victim] + np.array([0.05, 0.0])
        net = Network(np.vstack([chain.coords, [jam_pos]]))
        informed = self._run_with_jammer(net, net.size - 1, rng, budget=1500)
        assert informed[1] != NEVER_INFORMED
        assert informed[2] != NEVER_INFORMED


class TestDegenerateInputs:
    """Boundary conditions across the pipeline."""

    def test_two_station_network_broadcast(self, rng):
        net = Network(np.array([[0.0, 0.0], [0.5, 0.0]]))
        out = run_spont_broadcast(
            net, 0, ProtocolConstants.practical(), rng
        )
        assert out.success
        assert out.informed_round[1] >= 0

    def test_complete_graph_broadcast(self, rng):
        # All stations mutually adjacent: one hop suffices.
        net = uniform_square(n=20, side=0.5, rng=rng)
        out = run_spont_broadcast(
            net, 0, ProtocolConstants.practical(), rng
        )
        assert out.success

    def test_minimal_constants_still_legal(self):
        constants = ProtocolConstants.practical(
            density_rounds=1.0, playoff_rds=1.0, repeats=1
        )
        assert constants.coloring_total_rounds(4) >= 1

    def test_very_large_n_schedule_arithmetic(self):
        constants = ProtocolConstants.practical()
        schedule = ColoringSchedule(constants, 10 ** 6)
        assert schedule.total_rounds < 10 ** 6  # polylog, not linear
        level, _, part, _ = schedule.position(schedule.total_rounds - 1)
        assert level == schedule.levels - 1
        assert part == "playoff"
