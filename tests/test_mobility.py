"""Unit tests for the mobility layer (models, advance, E15 plumbing).

The bitwise advance-equals-fresh-build property is quantified in
``tests/test_hypothesis_mobility.py``; here live the deterministic
contracts: model validation and identity separation, session semantics
(exact-zero rows, reflection), ``Network.advance`` edge cases, the
sweep/grid integration (dynamic results key on the mobility
``identity()`` and ``jobs=2`` replays ``jobs=1`` bit for bit), and the
E15 experiment end to end.
"""

import numpy as np
import pytest

from repro.deploy.mobility import (
    BrownianDrift,
    GroupDrift,
    MobilityModel,
    RandomWaypoint,
    mobility_hook,
)
from repro.errors import DeploymentError, ProtocolError
from repro.fastsim.cache import fingerprint_bytes, point_key
from repro.fastsim.sweep import run_sweep
from repro.geometry.metric import MatrixMetric
from repro.network.network import Network


def _net(n=32, side=2.2, seed=3, **kwargs):
    rng = np.random.default_rng(seed)
    return Network(rng.uniform(0, side, size=(n, 2)), **kwargs)


class TestModels:
    def test_validation(self):
        with pytest.raises(DeploymentError):
            BrownianDrift(-0.1)
        with pytest.raises(DeploymentError):
            BrownianDrift(0.1, move_prob=1.5)
        with pytest.raises(DeploymentError):
            RandomWaypoint(0.0)
        with pytest.raises(DeploymentError):
            RandomWaypoint(0.1, pause=-1)
        with pytest.raises(DeploymentError):
            GroupDrift(0.1, n_groups=0)
        with pytest.raises(DeploymentError):
            BrownianDrift(0.1, box=([1.0, 1.0], [0.0, 0.0])).session(
                np.zeros((2, 2))
            )

    def test_identity_separates_models_and_knobs(self):
        models = [
            BrownianDrift(0.1, seed=0),
            BrownianDrift(0.1, seed=1),
            BrownianDrift(0.2, seed=0),
            BrownianDrift(0.1, move_prob=0.5, seed=0),
            RandomWaypoint(0.1, seed=0),
            RandomWaypoint(0.1, pause=3, seed=0),
            GroupDrift(0.1, seed=0),
            GroupDrift(0.1, n_groups=4, seed=0),
        ]
        identities = {m.identity() for m in models}
        assert len(identities) == len(models)
        fingerprints = {m.fingerprint() for m in models}
        assert len(fingerprints) == len(models)

    def test_equality_and_repr(self):
        assert BrownianDrift(0.1, seed=2) == BrownianDrift(0.1, seed=2)
        assert BrownianDrift(0.1, seed=2) != BrownianDrift(0.1, seed=3)
        assert "brownian-drift" in repr(BrownianDrift(0.1))
        assert isinstance(BrownianDrift(0.1), MobilityModel)

    def test_unmoved_rows_are_exact_zero(self):
        coords = np.random.default_rng(0).uniform(0, 3, size=(64, 2))
        session = BrownianDrift(0.05, move_prob=0.3, seed=1).session(coords)
        disp = session.displacements(coords, 0)
        moved = np.any(disp != 0.0, axis=1)
        assert 0 < moved.sum() < 64
        assert np.all(disp[~moved] == 0.0)

    def test_reflection_keeps_positions_in_default_box(self):
        coords = np.random.default_rng(1).uniform(0, 1, size=(16, 2))
        session = BrownianDrift(0.8, seed=4).session(coords)
        cur = coords
        for r in range(5):
            cur = cur + session.displacements(cur, r)
        assert np.all(cur >= coords.min(axis=0))
        assert np.all(cur <= coords.max(axis=0))

    def test_waypoint_walks_toward_targets_at_speed(self):
        coords = np.zeros((4, 2)) + np.arange(4)[:, None]
        model = RandomWaypoint(0.25, seed=7, box=([0, 0], [3, 3]))
        session = model.session(coords)
        disp = session.displacements(coords, 0)
        lengths = np.linalg.norm(disp, axis=1)
        assert np.all(lengths <= 0.25 + 1e-12)
        assert lengths.max() > 0

    def test_group_drift_moves_one_group_per_round(self):
        coords = np.random.default_rng(2).uniform(0, 4, size=(60, 2))
        model = GroupDrift(0.05, n_groups=5, seed=3)
        session = model.session(coords)
        disp = session.displacements(coords, 0)
        moved = np.any(disp != 0.0, axis=1)
        assert np.array_equal(moved, session.labels == 0)

    def test_shape_drift_rejected(self):
        session = BrownianDrift(0.1, seed=0).session(np.zeros((4, 2)) + np.arange(4)[:, None])
        with pytest.raises(DeploymentError):
            session.displacements(np.zeros((5, 2)), 0)


class TestAdvance:
    def test_zero_displacement_returns_self_untouched(self):
        net = _net()
        disp = np.zeros((net.size, 2))
        disp[2] = [0.01, 0.0]
        moved = net.advance(disp)
        assert moved.advance_mode == "rebuild"
        # A later no-op advance returns the same object and must not
        # clobber the record of how it was produced.
        out = moved.advance(np.zeros((net.size, 2)))
        assert out is moved
        assert out.advance_mode == "rebuild"

    def test_shape_mismatch_raises(self):
        net = _net()
        with pytest.raises(DeploymentError):
            net.advance(np.zeros((net.size + 1, 2)))

    def test_matrix_metric_rejected(self):
        dist = np.array([[0.0, 0.5], [0.5, 0.0]])
        net = Network(
            np.zeros((2, 1)) + [[0.0], [0.5]],
            metric=MatrixMetric(dist),
        )
        with pytest.raises(ProtocolError):
            net.advance(np.full((2, 1), 0.1))

    def test_fingerprint_tracks_positions(self):
        net = _net()
        disp = np.zeros((net.size, 2))
        disp[1] = [0.01, 0.0]
        moved = net.advance(disp)
        assert moved.fingerprint() != net.fingerprint()
        rebuilt = Network(net.coords + disp)
        assert moved.fingerprint() == rebuilt.fingerprint()

    def test_advance_without_built_caches_stays_lazy(self):
        net = _net()  # nothing computed yet
        disp = np.zeros((net.size, 2))
        disp[0] = [0.01, 0.01]
        out = net.advance(disp)
        assert out.advance_mode == "rebuild"
        assert out._dist is None and out._gain is None

    def test_colocation_detected_in_dense_patch(self):
        coords = np.stack(
            [np.arange(5, dtype=float), np.zeros(5)], axis=1
        )
        net = Network(coords)
        net.distances
        disp = np.zeros_like(coords)
        disp[1] = [-1.0, 0.0]  # lands exactly on station 0
        with pytest.raises(DeploymentError):
            net.advance(disp)


class TestHook:
    def test_hook_owns_one_trajectory(self):
        net = _net(seed=5)
        model = BrownianDrift(0.02, move_prob=0.5, seed=9)
        hook = mobility_hook(model)
        n1 = hook(0, net)
        n2 = hook(1, net)  # passing the stale snapshot is fine
        assert n1 is not net
        assert not np.array_equal(n1.coords, n2.coords)
        # a fresh hook over the same model replays the trajectory
        replay = mobility_hook(model)
        m1 = replay(0, net)
        m2 = replay(1, net)
        assert np.array_equal(n1.coords, m1.coords)
        assert np.array_equal(n2.coords, m2.coords)

    def test_every_throttles_advances(self):
        net = _net(seed=6)
        hook = mobility_hook(BrownianDrift(0.05, seed=1), every=3)
        first = hook(0, net)
        assert hook(1, net) is first and hook(2, net) is first
        assert hook(3, net) is not first

    def test_every_validation(self):
        with pytest.raises(DeploymentError):
            mobility_hook(BrownianDrift(0.1), every=0)


class TestSweepIntegration:
    def test_mobility_sweep_deterministic_and_differs_from_static(self):
        net = _net(n=40, seed=7)
        model = BrownianDrift(0.03, move_prob=0.4, seed=11)
        mobile1 = run_sweep(
            "spont_broadcast", net, 3, seed=5, source=0, mobility=model
        )
        mobile2 = run_sweep(
            "spont_broadcast", net, 3, seed=5, source=0, mobility=model
        )
        assert np.array_equal(
            mobile1.rounds, mobile2.rounds, equal_nan=True
        )

    def test_mobility_requires_batched_kernel(self):
        net = _net(n=16, seed=8)
        with pytest.raises(ProtocolError):
            run_sweep(
                "leader_election", net, 1, seed=1,
                mobility=BrownianDrift(0.01), use_batch=False,
            )

    def test_cache_keys_split_static_dynamic_and_models(self):
        net = _net(n=16, seed=9)
        def key(kwargs):
            return point_key(
                kind="spont_broadcast",
                network_fingerprint=net.fingerprint(),
                constants=None,
                seed=1,
                n_replications=2,
                kwargs=kwargs,
            )
        static = key({"source": 0})
        mobile = key({"source": 0, "mobility": BrownianDrift(0.02, seed=1)})
        reseeded = key({"source": 0, "mobility": BrownianDrift(0.02, seed=2)})
        other = key({"source": 0, "mobility": GroupDrift(0.02, seed=1)})
        assert len({static, mobile, reseeded, other}) == 4

    def test_fingerprint_bytes_uses_model_identity(self):
        a = fingerprint_bytes(BrownianDrift(0.1, seed=4))
        b = fingerprint_bytes(BrownianDrift(0.1, seed=4))
        c = fingerprint_bytes(BrownianDrift(0.1, seed=5))
        assert a == b != c


class TestE15:
    def test_registered(self):
        from repro.experiments.registry import list_experiments

        assert "E15" in list_experiments()

    def test_quick_jobs_identity_and_cache_replay(self, tmp_path):
        """The E15 acceptance: --jobs 2 == --jobs 1, cache replay works."""
        from repro.experiments.registry import get_experiment
        from repro.fastsim.grid import (
            GridOptions,
            last_grid_stats,
            set_default_grid_options,
        )

        run = get_experiment("E15")
        try:
            set_default_grid_options(
                GridOptions(jobs=1, cache_dir=str(tmp_path))
            )
            serial = run(scale="quick", seed=77)
            set_default_grid_options(
                GridOptions(jobs=2, cache_dir=str(tmp_path))
            )
            replayed = run(scale="quick", seed=77)
            stats = last_grid_stats()
            assert stats["cached"] == stats["points"] > 0
            set_default_grid_options(GridOptions(jobs=2, cache_dir=None))
            parallel = run(scale="quick", seed=77)
        finally:
            set_default_grid_options(GridOptions())
        assert serial.metrics == replayed.metrics == parallel.metrics
        assert serial.rows == parallel.rows

    def test_quick_metrics_hold(self, tmp_path):
        from repro.experiments.registry import get_experiment
        from repro.fastsim.grid import GridOptions, set_default_grid_options

        try:
            set_default_grid_options(
                GridOptions(jobs=1, cache_dir=str(tmp_path))
            )
            report = get_experiment("E15")(scale="quick")
        finally:
            set_default_grid_options(GridOptions())
        assert report.metrics["min_success_rate"] >= 0.9
        assert report.metrics["max_slowdown"] < 3.0
        assert report.metrics["escape_monotone"] is True
