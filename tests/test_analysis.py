"""Tests for fitting, statistics and table rendering."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import (
    COMPLEXITY_MODELS,
    daum_bound,
    fit_models,
    fit_single,
    fit_two_term,
    growth_exponent,
    paper_bound_nospont,
    paper_bound_spont,
)
from repro.analysis.stats import (
    aggregate_trials,
    relative_spread,
    success_rate,
)
from repro.analysis.tables import render_table
from repro.errors import AnalysisError


class TestFitSingle:
    def test_recovers_linear(self):
        x = [1, 2, 4, 8, 16]
        y = [3 * v for v in x]
        fit = fit_single(x, y, "n")
        assert fit.scale == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_log_squared(self):
        x = [4, 16, 64, 256, 1024]
        y = [5 * math.log2(v) ** 2 for v in x]
        fit = fit_single(x, y, "log^2 n")
        assert fit.scale == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_wrong_model_lower_r2(self):
        x = [4, 16, 64, 256, 1024]
        y = [2.0 * v for v in x]
        good = fit_single(x, y, "n")
        bad = fit_single(x, y, "log n")
        assert good.r_squared > bad.r_squared

    def test_predict(self):
        fit = fit_single([1, 2, 3], [2, 4, 6], "n")
        assert fit.predict(np.array([10]))[0] == pytest.approx(20.0)

    def test_unknown_model(self):
        with pytest.raises(AnalysisError):
            fit_single([1, 2], [1, 2], "n^3")

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            fit_single([1], [1], "n")

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            fit_single([1, 2], [1, 2, 3], "n")


class TestFitModels:
    def test_sorted_by_r2(self):
        x = [2, 4, 8, 16, 32, 64]
        y = [7.0 * v for v in x]
        fits = fit_models(x, y, ["log n", "n", "n^2"])
        assert fits[0].model == "n"
        assert fits[0].r_squared >= fits[1].r_squared >= fits[2].r_squared

    def test_default_models_all_run(self):
        x = [2, 4, 8, 16]
        y = [1.0, 2.0, 3.0, 4.0]
        fits = fit_models(x, y)
        assert len(fits) == len(COMPLEXITY_MODELS)


class TestFitTwoTerm:
    def test_recovers_paper_shape(self):
        x = np.array([4, 8, 16, 32, 64, 128])
        y = 10 * np.log2(x) ** 2 + 5 * np.log2(x)
        a, b, r2 = fit_two_term(x, y, "log^2 n", "log n")
        assert a == pytest.approx(10.0, rel=1e-6)
        assert b == pytest.approx(5.0, rel=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_affine_in_depth(self):
        x = np.array([3, 6, 12, 24])
        y = 100.0 * x + 250.0
        slope, intercept, r2 = fit_two_term(x, y, "n", "const")
        assert slope == pytest.approx(100.0)
        assert intercept == pytest.approx(250.0)

    def test_needs_three_points(self):
        with pytest.raises(AnalysisError):
            fit_two_term([1, 2], [1, 2], "n", "const")

    def test_unknown_model(self):
        with pytest.raises(AnalysisError):
            fit_two_term([1, 2, 3], [1, 2, 3], "nope", "const")


class TestGrowthExponent:
    def test_linear_is_one(self):
        x = [1, 2, 4, 8]
        assert growth_exponent(x, [2 * v for v in x]) == pytest.approx(1.0)

    def test_flat_is_zero(self):
        assert growth_exponent([1, 2, 4, 8], [5, 5, 5, 5]) == pytest.approx(0.0)

    def test_quadratic_is_two(self):
        x = [1, 2, 4, 8]
        assert growth_exponent(x, [v ** 2 for v in x]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            growth_exponent([1, 2], [0, 1])

    def test_rejects_single_point(self):
        with pytest.raises(AnalysisError):
            growth_exponent([1], [1])


class TestBounds:
    def test_daum_bound_grows_with_granularity(self):
        small = daum_bound(10, 100, 2.0, 3.0)
        large = daum_bound(10, 100, 2.0 ** 20, 3.0)
        assert large > small * 1000

    def test_daum_bound_validates(self):
        with pytest.raises(AnalysisError):
            daum_bound(0, 100, 2.0, 3.0)

    def test_paper_bounds_shapes(self):
        assert paper_bound_spont(10, 256) == pytest.approx(10 * 8 + 64)
        assert paper_bound_nospont(10, 256) == pytest.approx(10 * 64)

    def test_nospont_dominates_spont(self):
        for d in (1, 5, 50):
            assert paper_bound_nospont(d, 256) >= paper_bound_spont(d, 256) / 2


class TestStats:
    def test_aggregate_basics(self):
        s = aggregate_trials([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_aggregate_single(self):
        s = aggregate_trials([7.0])
        assert s.std == 0.0
        assert s.p90 == 7.0

    def test_aggregate_empty_rejected(self):
        with pytest.raises(AnalysisError):
            aggregate_trials([])

    def test_str_contains_mean(self):
        assert "mean=2.5" in str(aggregate_trials([2.0, 3.0]))

    def test_success_rate(self):
        assert success_rate([True, True, False, False]) == 0.5
        assert success_rate([True]) == 1.0

    def test_success_rate_empty_rejected(self):
        with pytest.raises(AnalysisError):
            success_rate([])

    def test_relative_spread(self):
        assert relative_spread([9.0, 10.0, 11.0]) == pytest.approx(0.2)

    def test_relative_spread_zero_median(self):
        with pytest.raises(AnalysisError):
            relative_spread([0.0, 0.0])


class TestRenderTable:
    def test_basic_render(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "30" in lines[3]

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_alignment(self):
        out = render_table(["col"], [["verylongcell"], ["x"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("verylongcell")

    def test_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            render_table([], [])


class TestOutcome:
    def test_progress_curve(self):
        from repro.core.outcome import BroadcastOutcome

        out = BroadcastOutcome(
            success=True,
            completion_round=3,
            total_rounds=5,
            informed_round=np.array([0, 1, 1, 3]),
            algorithm="test",
        )
        curve = out.progress_curve()
        assert list(curve) == [1, 3, 3, 4, 4, 4]
        assert out.num_informed == 4

    def test_num_informed_with_failures(self):
        from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome

        out = BroadcastOutcome(
            success=False,
            completion_round=NEVER_INFORMED,
            total_rounds=5,
            informed_round=np.array([0, NEVER_INFORMED]),
            algorithm="test",
        )
        assert out.num_informed == 1
