"""Tests for the Sect. 5 applications: wake-up, consensus, leader election."""

import numpy as np
import pytest

from repro.core.consensus import (
    bits_for_range,
    run_consensus,
    value_bits,
)
from repro.core.constants import ProtocolConstants
from repro.core.coloring import run_coloring
from repro.core.leader_election import run_leader_election
from repro.core.wakeup import run_adhoc_wakeup, run_colored_wakeup
from repro.deploy import uniform_chain
from repro.errors import ProtocolError
from repro.sim.wakeup import WakeupSchedule


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


@pytest.fixture(scope="module")
def chain():
    return uniform_chain(8, gap=0.5)


@pytest.fixture(scope="module")
def chain_colors(chain, constants):
    result = run_coloring(chain, constants, np.random.default_rng(5))
    return np.where(np.isnan(result.colors), 0.0, result.colors)


class TestAdhocWakeup:
    def test_single_waker_wakes_all(self, chain, constants, rng):
        schedule = WakeupSchedule.single(chain.size, 0)
        out = run_adhoc_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["wakeup_time"] >= 0

    def test_all_at_zero_instant(self, chain, constants, rng):
        schedule = WakeupSchedule.all_at(chain.size)
        out = run_adhoc_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["wakeup_time"] == 0

    def test_staggered_wakes_all(self, chain, constants, rng):
        schedule = WakeupSchedule.staggered(
            chain.size, spread=50, rng=rng, fraction=0.5
        )
        out = run_adhoc_wakeup(chain, schedule, constants, rng)
        assert out.success

    def test_wake_time_measured_from_first_wake(self, chain, constants, rng):
        schedule = WakeupSchedule.single(chain.size, 0, round_no=40)
        out = run_adhoc_wakeup(chain, schedule, constants, rng)
        assert out.success
        assert out.extras["first_wake"] == 40
        assert (
            out.extras["wakeup_time"]
            == out.completion_round - 40
        )

    def test_schedule_size_mismatch(self, chain, constants, rng):
        schedule = WakeupSchedule.single(4, 0)
        with pytest.raises(ProtocolError):
            run_adhoc_wakeup(chain, schedule, constants, rng)


class TestColoredWakeup:
    def test_reaches_everyone(self, chain, constants, chain_colors, rng):
        out = run_colored_wakeup(
            chain, [0], chain_colors, constants, rng
        )
        assert out.success
        assert out.algorithm == "ColoredWakeup"

    def test_multiple_initiators(self, chain, constants, chain_colors, rng):
        out = run_colored_wakeup(
            chain, [0, chain.size - 1], chain_colors, constants, rng
        )
        assert out.success
        # Both ends start informed.
        assert out.informed_round[0] <= out.extras["aux_coloring_rounds"]

    def test_no_refresh_faster_but_still_works(
        self, chain, constants, chain_colors, rng
    ):
        out = run_colored_wakeup(
            chain, [0], chain_colors, constants, rng, refresh_coloring=False
        )
        assert out.extras["aux_coloring_rounds"] == 0
        assert out.success

    def test_requires_initiators(self, chain, constants, chain_colors, rng):
        with pytest.raises(ProtocolError):
            run_colored_wakeup(chain, [], chain_colors, constants, rng)

    def test_bad_colors_shape(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            run_colored_wakeup(
                chain, [0], np.zeros(3), constants, rng
            )

    def test_bad_initiator_index(self, chain, constants, chain_colors, rng):
        with pytest.raises(ProtocolError):
            run_colored_wakeup(
                chain, [chain.size], chain_colors, constants, rng
            )


class TestConsensusHelpers:
    @pytest.mark.parametrize(
        "x,bits", [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)]
    )
    def test_bits_for_range(self, x, bits):
        assert bits_for_range(x) == bits

    def test_bits_rejects_negative(self):
        with pytest.raises(ProtocolError):
            bits_for_range(-1)

    def test_value_bits_msb_first(self):
        assert value_bits(5, 4) == "0101"

    def test_value_bits_overflow(self):
        with pytest.raises(ProtocolError):
            value_bits(16, 4)

    def test_value_bits_negative(self):
        with pytest.raises(ProtocolError):
            value_bits(-1, 4)


class TestConsensus:
    def test_agrees_on_minimum(self, chain, constants, rng):
        values = [5, 3, 7, 3, 6, 4, 5, 7]
        result = run_consensus(chain, values, x_max=7, constants=constants,
                               rng=rng)
        assert result.agreed
        assert result.correct
        assert int(result.decided[0]) == 3

    def test_all_same_value(self, chain, constants, rng):
        result = run_consensus(
            chain, [6] * chain.size, x_max=7, constants=constants, rng=rng
        )
        assert result.correct
        assert int(result.decided[0]) == 6

    def test_minimum_zero(self, chain, constants, rng):
        values = [0] + [7] * (chain.size - 1)
        result = run_consensus(chain, values, x_max=7, constants=constants,
                               rng=rng)
        assert result.correct
        assert int(result.decided[0]) == 0

    def test_maximum_message_space(self, chain, constants, rng):
        values = [7] * chain.size
        result = run_consensus(chain, values, x_max=7, constants=constants,
                               rng=rng)
        assert result.correct

    def test_bits_count(self, chain, constants, rng):
        result = run_consensus(
            chain, [1] * chain.size, x_max=255, constants=constants, rng=rng
        )
        assert result.bits == 8
        assert len(result.rounds_per_bit) == 8

    def test_rounds_grow_with_bits(self, chain, constants):
        small = run_consensus(
            chain, [1] * chain.size, x_max=3,
            constants=constants, rng=np.random.default_rng(1),
        )
        large = run_consensus(
            chain, [1] * chain.size, x_max=255,
            constants=constants, rng=np.random.default_rng(1),
        )
        assert large.total_rounds > small.total_rounds

    def test_value_count_mismatch(self, chain, constants, rng):
        with pytest.raises(ProtocolError):
            run_consensus(chain, [1, 2], x_max=7, constants=constants,
                          rng=rng)

    def test_value_exceeding_range_rejected(self, chain, constants, rng):
        values = [9] * chain.size
        with pytest.raises(ProtocolError):
            run_consensus(chain, values, x_max=7, constants=constants,
                          rng=rng)


class TestLeaderElection:
    def test_unique_leader(self, chain, constants, rng):
        result = run_leader_election(chain, constants, rng)
        assert result.success
        assert 0 <= result.leader < chain.size

    def test_leader_holds_min_id(self, chain, constants, rng):
        result = run_leader_election(chain, constants, rng)
        assert result.agreed_id == result.ids.min()
        assert result.ids[result.leader] == result.agreed_id

    def test_ids_in_range(self, chain, constants, rng):
        result = run_leader_election(chain, constants, rng)
        assert np.all(result.ids >= 1)
        assert np.all(result.ids <= chain.size ** 3)

    def test_reproducible(self, chain, constants):
        a = run_leader_election(chain, constants, np.random.default_rng(2))
        b = run_leader_election(chain, constants, np.random.default_rng(2))
        assert a.leader == b.leader
        assert a.total_rounds == b.total_rounds
