"""Differential tests of the compiled kernel backend (DESIGN.md §2.3).

The compiled loops (numba-jitted where available, pure python otherwise)
and the numpy reference arithmetic are two implementations of one
function, and the contract between them is **bitwise equality** — the
property that lets the result cache and the network fingerprint ignore
the kernel choice entirely.  This suite is the enforcement:

* hypothesis fuzz over random gain matrices, transmitter masks and
  sparse deployments, asserting resolver outputs equal bit for bit;
* full protocol traces (broadcast and wake-up) across deployment
  families, channel models and both SINR backends, asserting the
  *entire execution* — every per-station round stamp — is identical;
* a mobility ``advance`` step, whose patched CSR state must not depend
  on the kernel that will consume it;
* a cross-kernel cache replay: a sweep computed under ``numpy`` must be
  *hit* (not recomputed) by the same sweep requested under
  ``compiled``, because their keys coincide by design;
* the selection semantics of :func:`repro.kernels.resolve_kernel` and
  the ``REPRO_KERNEL`` environment override.

Everything here runs with or without numba — without it, the
``compiled`` leg exercises the un-jitted loop bodies, which are the
same arithmetic the jit compiles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.constants import ProtocolConstants
from repro.deploy import (
    BrownianDrift,
    corridor,
    fractal_clusters,
    uniform_cube,
    uniform_square,
)
from repro.errors import ProtocolError
from repro.fastsim.broadcast import fast_spont_broadcast_batch
from repro.fastsim.engine import spawn_rngs
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.fastsim.wakeup import fast_adhoc_wakeup_batch
from repro.geometry.metric import pairwise_distances
from repro.network.network import Network
from repro.sim.wakeup import WakeupSchedule
from repro.sinr.channel import DualSlope
from repro.sinr.gain import gain_matrix
from repro.sinr.params import SINRParameters
from repro.sinr.reception import (
    resolve_reception,
    resolve_reception_batch,
    sinr_values,
    sinr_values_batch,
)
from repro.sinr.sparse import SparseGainBackend

pytestmark = pytest.mark.compiled

PARAMS = SINRParameters.default()
CONSTANTS = ProtocolConstants.practical()
KERNEL_PAIR = ("numpy", "compiled")


def _gains(seed: int, n: int, side: float = 2.2) -> np.ndarray:
    coords = np.random.default_rng(seed).uniform(0, side, size=(n, 2))
    return gain_matrix(pairwise_distances(coords), PARAMS.power, PARAMS.alpha)


def _bitwise(results):
    """Assert the per-kernel results are bitwise identical; return one."""
    a, b = results
    first, second = (a, b) if isinstance(a, tuple) else ((a,), (b,))
    for x, y in zip(first, second):
        assert np.array_equal(np.asarray(x), np.asarray(y))
    return a


class TestResolverFuzz:
    """Hypothesis-quantified bitwise equality of the resolver kernels."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 32),
        B=st.integers(1, 5),
        prob=st.floats(0.0, 1.0),
    )
    def test_dense_batched(self, seed, n, B, prob):
        gain = _gains(seed, n)
        tx_mask = np.random.default_rng(seed ^ 0xC0FE).random((B, n)) < prob
        _bitwise([
            resolve_reception_batch(
                gain, tx_mask, PARAMS.noise, PARAMS.beta, kernel=k
            )
            for k in KERNEL_PAIR
        ])
        _bitwise([
            sinr_values_batch(gain, tx_mask, PARAMS.noise, kernel=k)
            for k in KERNEL_PAIR
        ])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 32),
        k=st.integers(1, 32),
    )
    def test_dense_single_unsorted_transmitters(self, seed, n, k):
        # sinr_values folds in the given transmitter order (argmax
        # first-occurrence semantics) — feed it a permutation, not a
        # sorted set, so an accidental sort in either path would show.
        gain = _gains(seed, n)
        tx = np.random.default_rng(seed ^ 0xBEEF).permutation(n)[
            : min(k, n)
        ]
        _bitwise([
            sinr_values(gain, tx, PARAMS.noise, kernel=kern)
            for kern in KERNEL_PAIR
        ])
        _bitwise([
            resolve_reception(gain, tx, PARAMS.noise, PARAMS.beta, kernel=kern)
            for kern in KERNEL_PAIR
        ])

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(8, 48),
        B=st.integers(1, 4),
        prob=st.floats(0.05, 0.6),
        side=st.sampled_from([1.8, 5.0]),  # covered vs truncated far field
        cutoff=st.sampled_from([1.0, 2.0]),
        dual_slope=st.booleans(),
    )
    def test_sparse_csr_scan(self, seed, n, B, prob, side, cutoff, dual_slope):
        coords = np.random.default_rng(seed).uniform(0, side, size=(n, 2))
        channel = DualSlope() if dual_slope else None
        backends = [
            SparseGainBackend(coords, PARAMS, channel, cutoff, kernel=k)
            for k in KERNEL_PAIR
        ]
        rng = np.random.default_rng(seed ^ 0xFACE)
        tx_mask = rng.random((B, n)) < prob
        _bitwise([
            b.resolve_reception_batch(tx_mask, PARAMS.noise, PARAMS.beta)
            for b in backends
        ])
        tx = np.flatnonzero(tx_mask[0])
        _bitwise([b.sinr_values(tx, PARAMS.noise) for b in backends])


#: Small connected deployments spanning the geometry families the paper
#: cares about: planar uniform, a corridor strip, a fractal cluster
#: hierarchy, and a 3D cube.
DEPLOYMENTS = {
    "square": lambda rng: uniform_square(n=24, side=2.2, rng=rng),
    "corridor": lambda rng: corridor(n=24, length=6.0, width=1.0, rng=rng),
    "fractal": lambda rng: fractal_clusters(levels=3, branching=3, rng=rng),
    "cube3d": lambda rng: uniform_cube(n=24, side=1.4, rng=rng),
}

CHANNELS = {"uniform": None, "dual-slope": DualSlope()}


class TestProtocolTraces:
    """Whole protocol executions are kernel-independent, stamp for stamp.

    Each leg rebuilds the deployment and the replication rngs from the
    same seeds under a different ``REPRO_KERNEL``, so the comparison
    covers the full production path — deployment, coloring, pilot
    rounds, dissemination, per-round state updates — not just one
    resolver call.
    """

    def _trace(self, monkeypatch, kern, deploy, channel, backend):
        monkeypatch.setenv(kernels.KERNEL_ENV, kern)
        net = deploy(np.random.default_rng(42))
        if channel is not None:
            net = net.with_channel(channel)
        if backend == "sparse":
            net = Network(
                net.coords, net.params, name=net.name,
                channel=net.channel, backend="sparse", cutoff=2.0,
            )
        assert net.kernel_kind == kernels.resolve_kernel(kern)
        return fast_spont_broadcast_batch(
            net, 0, CONSTANTS, spawn_rngs(2, 99)
        )

    @pytest.mark.parametrize("channel_name", sorted(CHANNELS))
    @pytest.mark.parametrize("deploy_name", sorted(DEPLOYMENTS))
    def test_broadcast_trace(self, monkeypatch, deploy_name, channel_name):
        runs = [
            self._trace(
                monkeypatch, kern, DEPLOYMENTS[deploy_name],
                CHANNELS[channel_name], "dense",
            )
            for kern in KERNEL_PAIR
        ]
        for a, b in zip(*runs):
            assert a.success == b.success
            assert a.completion_round == b.completion_round
            assert a.total_rounds == b.total_rounds
            assert np.array_equal(a.informed_round, b.informed_round)

    def test_broadcast_trace_sparse_backend(self, monkeypatch):
        runs = [
            self._trace(
                monkeypatch, kern, DEPLOYMENTS["square"], None, "sparse"
            )
            for kern in KERNEL_PAIR
        ]
        for a, b in zip(*runs):
            assert a.total_rounds == b.total_rounds
            assert np.array_equal(a.informed_round, b.informed_round)

    def test_wakeup_trace(self, monkeypatch):
        outcomes = []
        for kern in KERNEL_PAIR:
            monkeypatch.setenv(kernels.KERNEL_ENV, kern)
            net = DEPLOYMENTS["square"](np.random.default_rng(42))
            schedule = WakeupSchedule(
                np.random.default_rng(3).integers(0, 6, net.size)
            )
            outcomes.append(
                fast_adhoc_wakeup_batch(
                    net, schedule, CONSTANTS, spawn_rngs(2, 5),
                    round_budget=200,
                )
            )
        for a, b in zip(*outcomes):
            assert a.success == b.success
            assert a.total_rounds == b.total_rounds
            assert np.array_equal(a.informed_round, b.informed_round)
            assert a.extras["wakeup_time"] == b.extras["wakeup_time"]


class TestMobilityAdvance:
    """The incrementally-patched sparse state is kernel-independent."""

    def test_advanced_csr_bitwise_across_kernels(self):
        coords = np.random.default_rng(8).uniform(0, 4, size=(40, 2))
        session = BrownianDrift(0.05, seed=3).session(coords)
        disp = session.displacements(coords, 0)
        advanced = []
        for kern in KERNEL_PAIR:
            net = Network(
                coords, backend="sparse", cutoff=1.5, kernel=kern
            ).advance(disp)
            backend = net.sparse_backend
            advanced.append(
                (backend.indptr, backend.indices, backend.data, net)
            )
        (pa, ia, da, neta), (pb, ib, db, netb) = advanced
        assert np.array_equal(pa, pb)
        assert np.array_equal(ia, ib)
        assert np.array_equal(da, db)
        tx = np.random.default_rng(5).random((3, 40)) < 0.3
        _bitwise([
            resolve_reception_batch(
                net.gain_operator, tx, PARAMS.noise, PARAMS.beta
            )
            for net in (neta, netb)
        ])


class TestCacheReplay:
    """A numpy-computed sweep replays under ``compiled`` — same key."""

    def test_cross_kernel_cache_hit(self, tmp_path):
        coords = np.random.default_rng(1).uniform(0, 1.5, size=(12, 2))

        def point(kern):
            return GridPoint(
                kind="spont_broadcast",
                deployment=lambda rng: Network(
                    coords, name="diff-cache", kernel=kern
                ),
                n_replications=2,
                label=f"kernel={kern}",
                constants=CONSTANTS,
                kwargs={"source": 0},
            )

        first = run_grid(
            GridSpec(points=[point("numpy")], seed=7, name="diff"),
            jobs=1, cache_dir=tmp_path,
        )[0]
        assert not first.cached
        replay = run_grid(
            GridSpec(points=[point("compiled")], seed=7, name="diff"),
            jobs=1, cache_dir=tmp_path,
        )[0]
        assert replay.cached  # the §2.3 contract, paying rent
        assert np.array_equal(first.sweep.rounds, replay.sweep.rounds,
                              equal_nan=True)
        assert np.array_equal(first.sweep.success, replay.sweep.success)


class TestKernelSelection:
    """``resolve_kernel`` / ``REPRO_KERNEL`` semantics (DESIGN.md §2.3)."""

    def test_none_means_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.resolve_kernel(None) == kernels.resolve_kernel("auto")
        expected = "compiled" if kernels.HAVE_NUMBA else "numpy"
        assert kernels.resolve_kernel("auto") == expected

    def test_env_fills_auto(self, monkeypatch):
        for kern in KERNEL_PAIR:
            monkeypatch.setenv(kernels.KERNEL_ENV, kern)
            assert kernels.resolve_kernel("auto") == kern
            assert kernels.resolve_kernel(None) == kern

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        assert kernels.resolve_kernel("compiled") == "compiled"
        monkeypatch.setenv(kernels.KERNEL_ENV, "compiled")
        assert kernels.resolve_kernel("numpy") == "numpy"

    def test_rejects_unknown_request(self):
        with pytest.raises(ProtocolError):
            kernels.resolve_kernel("fortran")

    def test_rejects_unknown_env_value(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "fortran")
        with pytest.raises(ProtocolError):
            kernels.resolve_kernel("auto")
        # ... but explicit requests never consult the environment.
        assert kernels.resolve_kernel("numpy") == "numpy"

    def test_network_validates_kernel(self):
        coords = np.zeros((2, 2))
        coords[1, 0] = 0.5
        with pytest.raises(ProtocolError):
            Network(coords, kernel="fortran")
        net = Network(coords, kernel="compiled")
        assert net.kernel_kind == "compiled"
        assert net.describe()["kernel"] == "compiled"

    def test_fused_updates_require_numba(self):
        assert not kernels.use_compiled_updates("numpy")
        assert kernels.use_compiled_updates("compiled") == kernels.HAVE_NUMBA
