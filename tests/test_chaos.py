"""Chaos tests: the crash-safety layer under deterministic faults.

The crash-safe sweep machinery (DESIGN.md §10) makes three promises,
each provoked and pinned here with the seeded fault-injection layer
(:mod:`repro.faults`):

* **No lost results.**  Every completed point is durably journaled
  after its cache ``put`` lands; a coordinator killed mid-sweep —
  ``KeyboardInterrupt``, SIGTERM, SIGKILL — resumes with
  ``run_grid(resume=True)``, recomputes only unjournaled points, and
  produces results bitwise identical to an uninterrupted run.
* **No corrupt replays.**  A torn or bit-rotted cache entry fails its
  checksum, is quarantined, and degrades to a miss; a mangled service
  reply fails its payload checksum and is re-dispatched — damaged
  bytes are never consumed, anywhere.
* **No leaked resources.**  An interrupted fork-pool grid unlinks its
  shared-memory segments on the way out (the ``/dev/shm`` leak this
  PR fixes), and SIGTERM drains exactly like Ctrl-C.

The failure-matrix rows (DESIGN.md §9.3/§10.4) that need a live server
use an in-process :class:`ServiceServer` on a background thread with a
:func:`repro.faults.active` plan — the *stock* server, faulted at its
instrumented sites, not a subclass with rigged methods.  The tests
that need a real corpse (SIGKILL, signal drains) re-execute this file
as a subprocess (see the ``__main__`` block at the bottom).
"""

import asyncio
import contextlib
import errno
import hashlib
import json
import multiprocessing
import os
import pathlib
import pickle
import signal
import subprocess
import sys
import threading
import time
import warnings

import numpy as np
import pytest

from repro import faults
from repro.core.constants import ProtocolConstants
from repro.deploy import uniform_square
from repro.faults import FaultPlan, FaultRule
from repro.fastsim.cache import QUARANTINE_SUFFIX, ResultCache
from repro.fastsim.grid import (
    GridPoint,
    GridSpec,
    last_grid_stats,
    run_grid,
)
from repro.fastsim.journal import JOURNAL_SUFFIX, SweepJournal, sweep_key
from repro.service import ServiceServer

CONSTANTS = ProtocolConstants.practical()

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends fault-free (plans are process-global)."""
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# grid fixtures
# ----------------------------------------------------------------------
#: Knobs for :func:`_bomb_post`, the interrupting post-hook: ``armed``
#: turns the bomb on, ``after`` is how many calls survive first.  A
#: module global (not a closure) so the hook's identity — and with it
#: the cache keys — is the same in reference and interrupted runs.
_BOMB = {"armed": False, "after": 0, "calls": 0}


def _bomb_post(net, sweep):
    _BOMB["calls"] += 1
    if _BOMB["armed"] and _BOMB["calls"] > _BOMB["after"]:
        raise KeyboardInterrupt("chaos bomb")
    return {"deg": int(net.max_degree)}


def _disarm_bomb():
    _BOMB.update(armed=False, after=0, calls=0)


def _arm_bomb(after):
    _BOMB.update(armed=True, after=after, calls=0)


def _sleepy_post(net, sweep):
    """Deterministic extras, tunable wall-clock cost (``__main__`` modes).

    The sleep comes from the environment, not an argument, so the
    function's identity — part of the cache key — is the same whether
    the run is slow (so a signal can land mid-sweep) or fast (the
    resume / reference runs).
    """
    time.sleep(float(os.environ.get("REPRO_TEST_POINT_SLEEP", "0")))
    return {"deg": int(net.max_degree)}


def _chaos_spec(post=None, name="chaos-grid", sizes=(10, 11, 12, 13)):
    points = [
        GridPoint(
            kind="spont_broadcast",
            deployment=lambda rng, n=n: uniform_square(
                n=n, side=1.5, rng=rng
            ),
            n_replications=2,
            label=f"n={n}",
            constants=CONSTANTS,
            kwargs={"source": 0},
            post=post,
        )
        for n in sizes
    ]
    return GridSpec(points=points, seed=2014, name=name)


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert np.array_equal(
            ra.sweep.rounds, rb.sweep.rounds, equal_nan=True
        )
        assert np.array_equal(ra.sweep.success, rb.sweep.success)
        assert ra.extras == rb.extras


class _ServerThread:
    """A stock in-process daemon on a background thread (its own loop)."""

    def __init__(self, **server_kwargs):
        self.address = None
        self.server = None
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(
            target=self._run, kwargs=server_kwargs, daemon=True
        )
        self._thread.start()
        assert self._ready.wait(20), "service thread failed to start"

    def _run(self, **server_kwargs):
        async def main():
            self.server = ServiceServer(**server_kwargs)
            await self.server.start_tcp("127.0.0.1", 0)
            host, port = self.server.tcp_address
            self.address = f"tcp:{host}:{port}"
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def stop(self):
        self._loop.call_soon_threadsafe(self.server.shutdown)
        self._thread.join(20)


@contextlib.contextmanager
def _server_thread(**server_kwargs):
    thread = _ServerThread(**server_kwargs)
    try:
        yield thread
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# the plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_no_plan_means_no_faults(self):
        assert faults.current() is None
        assert faults.maybe_fire("cache.put.torn") is None

    def test_unruled_site_never_fires(self):
        with faults.active(FaultPlan([FaultRule("a.site")])):
            assert faults.maybe_fire("another.site") is None
            assert faults.maybe_fire("a.site") is not None

    def test_decisions_are_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan([FaultRule("s", p=0.5)], seed=seed)
            return [plan.fires("s") is not None for _ in range(200)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_after_and_max_fires(self):
        plan = FaultPlan([FaultRule("s", after=2, max_fires=1)])
        assert plan.fires("s") is None
        assert plan.fires("s") is None
        event = plan.fires("s")
        assert event is not None
        assert event.call == 3 and event.fire == 1
        assert plan.fires("s") is None  # budget spent
        assert plan.stats() == {"s": {"calls": 4, "fires": 1}}
        assert [e.call for e in plan.record] == [3]

    def test_one_rule_per_site(self):
        with pytest.raises(ValueError, match="one FaultRule per site"):
            FaultPlan([FaultRule("s"), FaultRule("s", p=0.5)])

    def test_spec_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("a", p=0.25, max_fires=3, after=1, delay_s=0.5),
             FaultRule("b")],
            seed=42,
            kills=[{"delay_s": 1.0, "target": "victim"}],
        )
        rebuilt = FaultPlan.from_spec(plan.to_spec())
        assert rebuilt.rules == plan.rules
        assert rebuilt.seed == plan.seed and rebuilt.kills == plan.kills
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.to_spec() == plan.to_spec()
        # Counters are not part of the spec: a rebuilt plan starts fresh.
        plan.fires("b")
        assert FaultPlan.from_spec(plan.to_spec()).stats()["b"]["calls"] == 0

    def test_active_restores_previous_plan(self):
        outer = FaultPlan([FaultRule("x")])
        inner = FaultPlan([FaultRule("y")])
        with faults.active(outer):
            with faults.active(inner):
                assert faults.current() is inner
            assert faults.current() is outer
        assert faults.current() is None

    def test_env_var_installs_plan_at_import(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultRule("cache.put.torn")], seed=99).save(plan_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env[faults.PLAN_ENV_VAR] = str(plan_path)
        out = subprocess.run(
            [sys.executable, "-c",
             "import json\n"
             "from repro import faults\n"
             "print(json.dumps(faults.current().to_spec()))"],
            env=env, capture_output=True, text=True, check=True,
        )
        spec = json.loads(out.stdout)
        assert spec["seed"] == 99
        assert spec["rules"][0]["site"] == "cache.put.torn"


# ----------------------------------------------------------------------
# cache integrity under injected faults
# ----------------------------------------------------------------------
class TestCacheFaults:
    def test_torn_put_quarantined_never_consumed(self, tmp_path):
        cache = ResultCache(tmp_path)
        with faults.active(
            FaultPlan([FaultRule("cache.put.torn", max_fires=1)])
        ):
            cache.put("k", (np.arange(500), {"n": 500}))
            # The entry on disk is truncated mid-payload; its checksum
            # header promises the full blob, so the read must refuse it.
            assert cache.get("k") is None
        assert cache.quarantined == 1
        quarantines = list(tmp_path.glob("*" + QUARANTINE_SUFFIX))
        assert len(quarantines) == 1
        # The slot is free again: a clean rewrite round-trips.
        cache.put("k", (np.arange(500), {"n": 500}))
        hit = cache.get("k")
        assert hit is not None and hit[0].shape == (500,)

    def test_enospc_surfaces_as_oserror(self, tmp_path):
        cache = ResultCache(tmp_path)
        with faults.active(
            FaultPlan([FaultRule("cache.put.enospc", max_fires=1)])
        ):
            with pytest.raises(OSError) as exc_info:
                cache.put("k", ("payload", {}))
            assert exc_info.value.errno == errno.ENOSPC
            # No half-written entry or temp debris survives the failure.
            assert cache.get("k") is None
            assert list(tmp_path.glob(".*.tmp")) == []
            cache.put("k", ("payload", {}))  # budget spent: succeeds
            assert cache.get("k") == ("payload", {})

    def test_bit_rot_on_read_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", (np.arange(100), {}))
        with faults.active(
            FaultPlan([FaultRule("cache.get.corrupt", max_fires=1)])
        ):
            assert cache.get("k") is None  # byte flipped on disk
        assert cache.quarantined == 1
        assert cache.get("k") is None  # quarantined, stays a miss

    def test_verify_distinguishes_corrupt_from_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("good", ("v", {}))
        cache.put("bad", ("v", {}))
        path = cache._path("bad")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        report = cache.verify()
        assert report["verified"] == 1 and report["corrupt"] == 1
        assert report["corrupt_keys"] == ["bad"]
        assert path.exists()  # verify is read-only
        assert cache.get("bad") is None  # ...but a real read quarantines
        report = cache.verify()
        assert report["corrupt"] == 0 and report["quarantined"] == 1


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_load_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path, "abc123")
        assert journal.load() == {} and not journal.exists()
        journal.append("k1")
        journal.append("k2", {"index": 7})
        assert journal.exists()
        assert journal.path.name == "abc123" + JOURNAL_SUFFIX
        done = journal.load()
        assert done == {"k1": {"key": "k1"},
                        "k2": {"index": 7, "key": "k2"}}
        assert journal.torn == 0

    def test_torn_tail_is_discarded_not_fatal(self, tmp_path):
        journal = SweepJournal(tmp_path, "abc123")
        journal.append("k1")
        journal.append("k2")
        # A crash mid-append leaves a partial trailing line.
        with open(journal.path, "ab") as handle:
            handle.write(b'{"key": "k3"')
        done = journal.load()
        assert set(done) == {"k1", "k2"}
        assert journal.torn == 1
        # The journal stays appendable after the damage.
        journal.append("k4")
        assert set(journal.load()) == {"k1", "k2", "k4"}

    def test_meta_cannot_override_key(self, tmp_path):
        journal = SweepJournal(tmp_path, "abc123")
        with pytest.raises(ValueError, match="override"):
            journal.append("k1", {"key": "impostor"})

    def test_complete_removes_and_tolerates_missing(self, tmp_path):
        journal = SweepJournal(tmp_path, "abc123")
        journal.complete()  # nothing to remove: fine
        journal.append("k1")
        journal.complete()
        assert not journal.exists() and journal.load() == {}

    def test_sweep_key_is_order_free_and_input_bound(self):
        base = sweep_key("grid", 2014, ["a", "b", "c"])
        assert sweep_key("grid", 2014, ["c", "a", "b"]) == base
        assert sweep_key("grid", 2015, ["a", "b", "c"]) != base
        assert sweep_key("other", 2014, ["a", "b", "c"]) != base
        assert sweep_key("grid", 2014, ["a", "b"]) != base


# ----------------------------------------------------------------------
# interrupt + resume, in process
# ----------------------------------------------------------------------
class TestResume:
    def test_interrupt_then_resume_is_bitwise_identical(self, tmp_path):
        spec = _chaos_spec(post=_bomb_post)
        _disarm_bomb()
        reference = run_grid(
            spec, jobs=1, cache_dir=str(tmp_path / "ref")
        )

        work = tmp_path / "work"
        _arm_bomb(after=2)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_grid(spec, jobs=1, cache_dir=str(work))
        finally:
            _disarm_bomb()
        journals = list(work.glob("*" + JOURNAL_SUFFIX))
        assert len(journals) == 1, "interrupt must leave the journal"
        assert len(journals[0].read_text().splitlines()) == 2

        resumed = run_grid(
            spec, jobs=1, cache_dir=str(work), resume=True
        )
        stats = last_grid_stats()
        # Exactly the journaled points replayed; only the rest recomputed.
        assert stats["journal_replays"] == 2
        assert stats["cached"] == 2
        assert stats["journaled"] == len(spec.points) - 2
        assert not list(work.glob("*" + JOURNAL_SUFFIX)), (
            "clean finish must remove the journal"
        )
        _assert_same_results(reference, resumed)
        for ra, rb in zip(reference, resumed):
            assert pickle.dumps(ra.sweep) == pickle.dumps(rb.sweep)

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        spec = _chaos_spec(post=_bomb_post)
        _arm_bomb(after=1)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_grid(spec, jobs=1, cache_dir=str(tmp_path))
        finally:
            _disarm_bomb()
        assert list(tmp_path.glob("*" + JOURNAL_SUFFIX))
        # resume=False (the default): stale bookkeeping is dropped, the
        # run completes, and nothing counts as a journal replay.
        results = run_grid(spec, jobs=1, cache_dir=str(tmp_path))
        stats = last_grid_stats()
        assert stats["journal_replays"] == 0
        assert all(r is not None for r in results)
        assert not list(tmp_path.glob("*" + JOURNAL_SUFFIX))

    def test_resume_without_cache_warns_and_runs(self):
        spec = _chaos_spec(name="chaos-nocache")
        with pytest.warns(RuntimeWarning, match="nothing to resume"):
            results = run_grid(spec, jobs=1, resume=True)
        assert all(r is not None for r in results)

    def test_clean_finish_leaves_no_journal(self, tmp_path):
        run_grid(_chaos_spec(), jobs=1, cache_dir=str(tmp_path))
        assert last_grid_stats()["journaled"] == len(_chaos_spec().points)
        assert not list(tmp_path.glob("*" + JOURNAL_SUFFIX))

    def test_resume_of_finished_sweep_is_plain_replay(self, tmp_path):
        spec = _chaos_spec()
        first = run_grid(spec, jobs=1, cache_dir=str(tmp_path))
        again = run_grid(
            spec, jobs=1, cache_dir=str(tmp_path), resume=True
        )
        stats = last_grid_stats()
        assert stats["cached"] == len(spec.points)
        assert stats["journal_replays"] == 0  # no journal: clean finish
        _assert_same_results(first, again)


# ----------------------------------------------------------------------
# the failure matrix, driven by the plan through a stock server
# ----------------------------------------------------------------------
class TestFailureMatrix:
    """DESIGN.md §10.4: every row provoked at its instrumented site.

    The server is the *stock* :class:`ServiceServer`; the faults come
    from the plan, exactly as a chaos benchmark would install them.
    The invariant is always the same: the sweep completes and is
    bitwise identical to the serial run — faults cost retries, never
    results.
    """

    def _run_with_plan(self, plan, **grid_kwargs):
        serial = run_grid(_chaos_spec(), jobs=1)
        with _server_thread() as server:
            with faults.active(plan):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    served = run_grid(
                        _chaos_spec(), workers=[server.address],
                        **grid_kwargs,
                    )
        _assert_same_results(serial, served)
        return plan

    def test_client_side_connection_drop(self):
        plan = self._run_with_plan(
            FaultPlan([FaultRule("client.send.drop", max_fires=1)])
        )
        assert plan.stats()["client.send.drop"]["fires"] == 1

    def test_server_side_connection_drop(self):
        plan = self._run_with_plan(
            FaultPlan([FaultRule("service.conn.drop", max_fires=1)])
        )
        assert plan.stats()["service.conn.drop"]["fires"] == 1

    def test_stalled_reply_times_out_and_redispatches(self):
        plan = self._run_with_plan(
            FaultPlan(
                [FaultRule(
                    "service.reply.stall", max_fires=1, delay_s=2.0
                )]
            ),
            request_timeout=0.5,
        )
        assert plan.stats()["service.reply.stall"]["fires"] == 1

    def test_corrupt_reply_rejected_and_retried(self):
        # The mangled payload fails its checksum client-side
        # (ServiceCorruptPayload); the point is re-dispatched and the
        # damaged bytes are never consumed — hence bitwise identity.
        plan = self._run_with_plan(
            FaultPlan([FaultRule("service.reply.corrupt", max_fires=1)])
        )
        assert plan.stats()["service.reply.corrupt"]["fires"] == 1

    def test_server_side_sweep_error_bounded_retry(self):
        serial = run_grid(_chaos_spec(), jobs=1)
        plan = FaultPlan([FaultRule("service.sweep.error", max_fires=1)])
        with _server_thread() as server:
            with faults.active(plan):
                with warnings.catch_warnings():
                    # One failure stays remote: no fallback warning.
                    warnings.simplefilter("error", RuntimeWarning)
                    served = run_grid(
                        _chaos_spec(), workers=[server.address]
                    )
        _assert_same_results(serial, served)
        assert plan.stats()["service.sweep.error"]["fires"] == 1

    def test_server_enospc_still_serves_results(self, tmp_path):
        # The worker's disk fills: its cache publishes fail, but the
        # reply path is independent — every result is still delivered.
        serial = run_grid(_chaos_spec(), jobs=1)
        plan = FaultPlan([FaultRule("cache.put.enospc")])
        with _server_thread(cache_dir=str(tmp_path)) as server:
            with faults.active(plan):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    served = run_grid(
                        _chaos_spec(), workers=[server.address]
                    )
            assert server.server.put_failures > 0
        _assert_same_results(serial, served)


# ----------------------------------------------------------------------
# prune vs put races under torn writes (multi-writer bus, PR 8 + chaos)
# ----------------------------------------------------------------------
def _torn_hammer(root, key, n, rounds, plan_spec):
    """Writer-process body: hammer one key under an injected-torn plan.

    Installed in-process (not via the env var) because ``fork`` children
    inherit the parent's already-imported, plan-free module state.
    ``put`` may raise ``OSError`` when the racing pruner sweeps the
    in-flight temp file out from under the rename — the same loss the
    daemon's publish path tolerates (``ServiceServer.put_failures``),
    so the writer shrugs it off too.
    """
    faults.install(FaultPlan.from_spec(plan_spec))
    cache = ResultCache(root)
    payload = (np.arange(n), {"n": n})
    for _ in range(rounds):
        try:
            cache.put(key, payload)
        except OSError:
            pass


class TestTornWriteRace:
    def test_prune_and_get_racing_torn_puts(self, tmp_path):
        # Two writers publish the same key; the plan tears every put
        # after the first half.  Readers may see hits regress to
        # misses (quarantine) — but never a torn payload — and prune
        # racing the whole mess stays an LRU sweep, not a crash.
        key, n, rounds = "bus-key", 10_000, 40
        plan_spec = FaultPlan(
            [FaultRule("cache.put.torn", after=rounds // 2)]
        ).to_spec()
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_torn_hammer,
                args=(str(tmp_path), key, n, rounds, plan_spec),
            )
            for _ in range(2)
        ]
        for w in writers:
            w.start()
        cache = ResultCache(tmp_path)
        seen_hit = False
        tick = 0
        try:
            while any(w.is_alive() for w in writers):
                hit = cache.get(key)
                if hit is not None:
                    seen_hit = True
                    arr, extras = hit
                    assert extras == {"n": n}
                    assert arr.shape == (n,) and arr[-1] == n - 1
                tick += 1
                if tick % 10 == 0:
                    report = cache.prune(
                        max_entries=5, tmp_grace_s=0.0
                    )
                    assert report["evicted"] == 0  # one key only
        finally:
            for w in writers:
                w.join(30)
        assert all(w.exitcode == 0 for w in writers)
        assert seen_hit, "the first-half clean puts must be readable"
        # Whatever survived the torn-put/prune crossfire, a read is a
        # complete payload or a miss (torn survivors get quarantined on
        # this very read) — never damaged bytes.
        final = cache.get(key)
        assert final is None or (
            final[0].shape == (n,) and final[0][-1] == n - 1
        )
        # The bus stays writable and a clean put round-trips.
        cache.put(key, (np.arange(3), {}))
        hit = cache.get(key)
        assert hit is not None and hit[0].shape == (3,)


# ----------------------------------------------------------------------
# signal drains and real corpses (subprocess modes at the bottom)
# ----------------------------------------------------------------------
def _spawn_child(mode, *args, sleep="0"):
    """Re-execute this file in a child with a ``__main__`` mode."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TEST_POINT_SLEEP"] = sleep
    return subprocess.Popen(
        [sys.executable, __file__, mode, *map(str, args)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )


def _wait_for_line(proc, prefix, timeout=60):
    deadline = time.time() + timeout
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            assert proc.poll() is None, (
                f"child exited (rc={proc.poll()}) before {prefix!r}"
            )
            continue
        if line.startswith(prefix):
            return line.strip()
    raise AssertionError(f"no {prefix!r} line within {timeout}s")


class TestSignalDrain:
    """The shm-leak satellite: an interrupted fork-pool grid must not
    leave segments in ``/dev/shm`` (one leaked gain matrix per crashed
    sweep used to accumulate until the host ran out of shared memory)."""

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_interrupted_grid_leaks_no_shm_segments(self, tmp_path, sig):
        shm_dir = pathlib.Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir(shm_dir))
        proc = _spawn_child("drain", tmp_path, sleep="0.5")
        try:
            _wait_for_line(proc, "running")
            time.sleep(1.5)  # let the pool spin up and map segments
            proc.send_signal(sig)
            rc = proc.wait(60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
        output = proc.stdout.read()
        assert rc == 0, output
        assert "drained" in output, output
        leaked = set(os.listdir(shm_dir)) - before
        assert not leaked, f"leaked shm segments: {sorted(leaked)}"


class TestKillResume:
    """The e2e acceptance row: SIGKILL the coordinator mid-sweep, then
    ``run_grid(resume=True)`` completes bitwise identical to ``jobs=1``
    with only the unjournaled points recomputed."""

    def _parse_result(self, proc):
        line = _wait_for_line(proc, "RESULT ")
        assert proc.wait(60) == 0
        return json.loads(line[len("RESULT "):])

    def test_sigkilled_coordinator_resumes_exactly(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()

        # Phase 1: a slow run, SIGKILLed once ≥2 points are journaled.
        victim = _spawn_child("grid", work, 0, sleep="0.5")
        try:
            _wait_for_line(victim, "running")
            deadline = time.time() + 60
            journal_path = None
            while time.time() < deadline:
                journals = list(work.glob("*" + JOURNAL_SUFFIX))
                if journals:
                    lines = journals[0].read_text().splitlines()
                    if len(lines) >= 2:
                        journal_path = journals[0]
                        break
                time.sleep(0.05)
            assert journal_path is not None, "no journal grew in time"
            victim.kill()  # SIGKILL: no handler, no cleanup, a corpse
            victim.wait(30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(10)
        assert victim.returncode == -signal.SIGKILL
        assert journal_path.exists(), "SIGKILL must not eat the journal"
        journaled_at_kill = len(
            journal_path.read_text().splitlines()
        )
        assert journaled_at_kill >= 2

        # Phase 2: resume in a fresh process against the same cache.
        resumer = _spawn_child("grid", work, 1, sleep="0")
        resumed = self._parse_result(resumer)
        stats = resumed["stats"]
        # Every point journaled before the kill was skipped, none were
        # recomputed (journal_replays can exceed the count we read —
        # more appends may have landed between our poll and the kill;
        # cached can exceed journal_replays — a put can land without
        # its journal record when the kill hits between the two).
        assert stats["journal_replays"] >= 2
        assert stats["journal_replays"] <= stats["cached"]
        assert stats["journaled"] == stats["points"] - stats["cached"]
        assert not list(work.glob("*" + JOURNAL_SUFFIX)), (
            "clean resume must remove the journal"
        )

        # Phase 3: a fresh uninterrupted run is the reference.
        fresh = _spawn_child("grid", tmp_path / "ref", 0, sleep="0")
        reference = self._parse_result(fresh)
        assert resumed["digests"] == reference["digests"], (
            "resumed run must be bitwise identical to an uninterrupted one"
        )
        assert resumed["extras"] == reference["extras"]


# ----------------------------------------------------------------------
# child modes (re-executed by the tests above; not run under pytest)
# ----------------------------------------------------------------------
def _kill_spec():
    """The kill/drain grid: 8 points, sleepy deterministic post-hook."""
    return _chaos_spec(
        post=_sleepy_post, name="chaos-kill",
        sizes=(10, 11, 12, 13, 14, 15, 16, 17),
    )


def _child_drain(cache_dir):
    print("running", flush=True)
    try:
        run_grid(_kill_spec(), jobs=2, cache_dir=cache_dir)
    except KeyboardInterrupt:
        print("drained", flush=True)
        return 0
    print("completed", flush=True)
    return 0


def _child_grid(cache_dir, resume_flag):
    print("running", flush=True)
    results = run_grid(
        _kill_spec(), jobs=1, cache_dir=cache_dir,
        resume=bool(int(resume_flag)),
    )
    payload = {
        "stats": last_grid_stats(),
        "digests": [
            hashlib.sha256(pickle.dumps(r.sweep)).hexdigest()
            for r in results
        ],
        "extras": [r.extras for r in results],
    }
    print("RESULT " + json.dumps(payload), flush=True)
    return 0


if __name__ == "__main__":
    _mode, *_args = sys.argv[1:]
    sys.exit({"drain": _child_drain, "grid": _child_grid}[_mode](*_args))
