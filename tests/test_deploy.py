"""Tests for the topology generators."""

import numpy as np
import pytest

from repro.deploy import (
    cluster_network,
    clustered_chain,
    corridor,
    dumbbell,
    exponential_chain,
    fractal_clusters,
    fractal_dimension,
    geometric_chain,
    grid,
    grid_chain,
    jittered_grid,
    perturb_within_balls,
    same_graph_family,
    uniform_chain,
    uniform_cube,
    uniform_disk,
    uniform_square,
)
from repro.errors import DeploymentError, DisconnectedNetworkError


class TestUniform:
    def test_square_connected(self, rng):
        net = uniform_square(n=40, side=2.0, rng=rng)
        assert net.is_connected
        assert net.size == 40

    def test_square_within_bounds(self, rng):
        net = uniform_square(n=30, side=3.0, rng=rng)
        assert np.all(net.coords >= 0.0)
        assert np.all(net.coords <= 3.0)

    def test_square_reproducible(self):
        a = uniform_square(n=20, side=2.0, rng=np.random.default_rng(5))
        b = uniform_square(n=20, side=2.0, rng=np.random.default_rng(5))
        assert np.allclose(a.coords, b.coords)

    def test_square_disconnected_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DisconnectedNetworkError):
            uniform_square(n=5, side=50.0, rng=rng, max_attempts=3)

    def test_square_rejects_bad_args(self, rng):
        with pytest.raises(DeploymentError):
            uniform_square(n=0, side=1.0, rng=rng)
        with pytest.raises(DeploymentError):
            uniform_square(n=5, side=0.0, rng=rng)

    def test_disk_connected(self, rng):
        net = uniform_disk(n=40, radius=1.5, rng=rng)
        assert net.is_connected

    def test_disk_within_radius(self, rng):
        net = uniform_disk(n=40, radius=1.5, rng=rng)
        assert np.all(np.linalg.norm(net.coords, axis=1) <= 1.5 + 1e-9)


class TestUniformCube:
    def test_connected_and_three_dimensional(self, rng):
        net = uniform_cube(n=60, side=1.5, rng=rng)
        assert net.is_connected
        assert net.coords.shape == (60, 3)
        assert net.metric.growth_dimension == 3.0

    def test_within_bounds(self, rng):
        net = uniform_cube(n=50, side=1.5, rng=rng)
        assert np.all(net.coords >= 0.0)
        assert np.all(net.coords <= 1.5)

    def test_reproducible(self):
        a = uniform_cube(n=30, side=1.4, rng=np.random.default_rng(5))
        b = uniform_cube(n=30, side=1.4, rng=np.random.default_rng(5))
        assert np.allclose(a.coords, b.coords)

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedNetworkError):
            uniform_cube(
                n=5, side=40.0, rng=np.random.default_rng(0),
                max_attempts=3,
            )

    def test_rejects_bad_args(self, rng):
        with pytest.raises(DeploymentError):
            uniform_cube(n=0, side=1.0, rng=rng)
        with pytest.raises(DeploymentError):
            uniform_cube(n=5, side=-1.0, rng=rng)

    def test_channel_forwarded(self, rng):
        from repro.sinr.channel import LogNormalShadowing

        channel = LogNormalShadowing(2.0, seed=1)
        net = uniform_cube(n=20, side=1.2, rng=rng, channel=channel)
        assert net.channel is channel


class TestFractalClusters:
    def test_size_is_branching_to_levels(self, rng):
        net = fractal_clusters(3, 4, rng)
        assert net.size == 64
        assert net.is_connected

    def test_reproducible(self):
        a = fractal_clusters(3, 3, np.random.default_rng(2))
        b = fractal_clusters(3, 3, np.random.default_rng(2))
        assert np.allclose(a.coords, b.coords)

    def test_lower_dimension_is_sparser(self, rng):
        # Smaller target dimension -> faster shrinking scatter radii ->
        # tighter clusters (smaller median pairwise distance at equal n).
        thin = fractal_clusters(
            4, 3, np.random.default_rng(3), dimension=0.8
        )
        fat = fractal_clusters(
            4, 3, np.random.default_rng(3), dimension=2.0
        )
        assert np.median(thin.distances) < np.median(fat.distances)

    def test_dimension_formula(self):
        assert fractal_dimension(4, 0.5) == pytest.approx(2.0)
        assert fractal_dimension(2, 0.5) == pytest.approx(1.0)
        with pytest.raises(DeploymentError):
            fractal_dimension(1, 0.5)
        with pytest.raises(DeploymentError):
            fractal_dimension(4, 1.5)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(DeploymentError):
            fractal_clusters(0, 4, rng)
        with pytest.raises(DeploymentError):
            fractal_clusters(3, 1, rng)  # degenerate: one child per level
        with pytest.raises(DeploymentError):
            fractal_clusters(2, 0, rng)
        with pytest.raises(DeploymentError):
            fractal_clusters(3, 4, rng, dimension=2.5)
        with pytest.raises(DeploymentError):
            fractal_clusters(3, 4, rng, span=0.0)


class TestCorridor:
    def test_connected_within_bounds(self, rng):
        net = corridor(50, 6.0, 0.35, rng)
        assert net.is_connected
        assert np.all(net.coords[:, 0] <= 6.0)
        assert np.all(net.coords[:, 1] <= 0.35)
        assert np.all(net.coords >= 0.0)

    def test_reproducible(self):
        a = corridor(30, 4.0, 0.3, np.random.default_rng(4))
        b = corridor(30, 4.0, 0.3, np.random.default_rng(4))
        assert np.allclose(a.coords, b.coords)

    def test_sparse_corridor_disconnects(self):
        with pytest.raises(DisconnectedNetworkError):
            corridor(
                4, 50.0, 0.3, np.random.default_rng(0), max_attempts=3
            )

    def test_rejects_bad_args(self, rng):
        with pytest.raises(DeploymentError):
            corridor(0, 5.0, 0.3, rng)
        with pytest.raises(DeploymentError):
            corridor(10, 5.0, -0.3, rng)
        with pytest.raises(DeploymentError):
            corridor(10, 0.3, 5.0, rng)  # width > length


class TestGrid:
    def test_grid_size(self):
        net = grid(3, 4, spacing=0.5)
        assert net.size == 12

    def test_grid_connected(self):
        net = grid(4, 8, spacing=0.5)
        assert net.is_connected

    def test_grid_diameter_grows_with_length(self):
        short = grid_chain(4, width=2, spacing=0.5)
        long = grid_chain(12, width=2, spacing=0.5)
        assert long.diameter > short.diameter

    def test_grid_rejects_bad_shape(self):
        with pytest.raises(DeploymentError):
            grid(0, 5, spacing=0.5)
        with pytest.raises(DeploymentError):
            grid(2, 2, spacing=-1.0)

    def test_jittered_grid_stays_connected(self, rng):
        net = jittered_grid(3, 6, spacing=0.5, jitter=0.05, rng=rng)
        assert net.is_connected

    def test_jittered_grid_rejects_excess_jitter(self, rng):
        with pytest.raises(DeploymentError):
            jittered_grid(3, 3, spacing=0.5, jitter=0.3, rng=rng)

    def test_jitter_changes_coords(self, rng):
        base = grid(3, 3, spacing=0.5)
        jit = jittered_grid(3, 3, spacing=0.5, jitter=0.05, rng=rng)
        assert not np.allclose(base.coords, jit.coords)


class TestChains:
    def test_uniform_chain_spacing(self):
        net = uniform_chain(5, gap=0.5)
        xs = net.coords[:, 0]
        assert np.allclose(np.diff(xs), 0.5)

    def test_uniform_chain_connected(self):
        assert uniform_chain(10, gap=0.6).is_connected

    def test_uniform_chain_single(self):
        assert uniform_chain(1).size == 1

    def test_geometric_chain_gaps_shrink(self):
        net = geometric_chain(8, ratio=0.5, first_gap=0.5)
        gaps = np.diff(net.coords[:, 0])
        assert np.all(np.diff(gaps) < 0)

    def test_geometric_chain_floor(self):
        net = geometric_chain(64, ratio=0.5, first_gap=0.5, min_gap=1e-6)
        gaps = np.diff(net.coords[:, 0])
        assert gaps.min() >= 1e-6 - 1e-15

    def test_geometric_chain_rejects_small_floor(self):
        with pytest.raises(DeploymentError):
            geometric_chain(8, min_gap=1e-15)

    def test_exponential_chain_is_footnote_instance(self):
        net = exponential_chain(6)
        gaps = np.diff(net.coords[:, 0])
        assert gaps[0] == pytest.approx(0.5)
        assert gaps[1] == pytest.approx(0.25)
        assert gaps[4] == pytest.approx(0.5 ** 5)

    def test_exponential_chain_granularity_explodes(self):
        net = exponential_chain(24)
        assert net.granularity > 1e4

    def test_exponential_chain_connected(self):
        assert exponential_chain(20).is_connected

    def test_clustered_chain_shape(self, rng):
        net = clustered_chain(4, 5, 0.05, hop=0.55, rng=rng)
        assert net.size == 20
        assert net.is_connected

    def test_clustered_chain_rejects_overlap(self, rng):
        with pytest.raises(DeploymentError):
            clustered_chain(4, 5, 0.6, hop=0.5, rng=rng)

    def test_chain_rejects_bad_ratio(self):
        with pytest.raises(DeploymentError):
            geometric_chain(5, ratio=1.5)


class TestClusters:
    def test_cluster_network_connected(self, rng):
        net = cluster_network(6, 5, 0.1, 0.5, rng)
        assert net.is_connected
        assert net.size == 30

    def test_cluster_network_disconnect_detected(self, rng):
        with pytest.raises(DisconnectedNetworkError):
            cluster_network(4, 3, 0.01, 5.0, rng)

    def test_single_cluster(self, rng):
        net = cluster_network(1, 8, 0.2, 0.5, rng)
        assert net.is_connected

    def test_dumbbell_structure(self, rng):
        net = dumbbell(10, 4, rng)
        assert net.size == 24
        assert net.is_connected

    def test_dumbbell_has_large_diameter(self, rng):
        net = dumbbell(10, 8, rng)
        assert net.diameter >= 8

    def test_dumbbell_rejects_bad_args(self, rng):
        with pytest.raises(DeploymentError):
            dumbbell(0, 3, rng)


class TestPerturb:
    def test_preserves_graph(self, small_square, rng):
        perturbed = perturb_within_balls(small_square, 0.03, rng)
        orig = set(frozenset(e) for e in small_square.graph.edges)
        new = set(frozenset(e) for e in perturbed.graph.edges)
        assert orig == new

    def test_moves_most_stations(self, small_square, rng):
        perturbed = perturb_within_balls(small_square, 0.02, rng)
        moved = np.any(perturbed.coords != small_square.coords, axis=1)
        assert moved.sum() >= small_square.size // 2

    def test_bounded_displacement(self, small_square, rng):
        scale = 0.05
        perturbed = perturb_within_balls(small_square, scale, rng)
        disp = np.linalg.norm(perturbed.coords - small_square.coords, axis=1)
        assert np.all(disp <= scale + 1e-9)

    def test_zero_scale_identity(self, small_square, rng):
        perturbed = perturb_within_balls(small_square, 0.0, rng)
        assert np.allclose(perturbed.coords, small_square.coords)

    def test_negative_scale_rejected(self, small_square, rng):
        with pytest.raises(DeploymentError):
            perturb_within_balls(small_square, -0.1, rng)

    def test_same_graph_family_size(self, small_square, rng):
        family = same_graph_family(small_square, [0.01, 0.03], rng)
        assert len(family) == 3
        assert family[0] is small_square

    def test_family_members_share_graph(self, small_square, rng):
        family = same_graph_family(small_square, [0.02], rng)
        orig = set(frozenset(e) for e in family[0].graph.edges)
        assert set(frozenset(e) for e in family[1].graph.edges) == orig

    def test_perturb_preserves_channel(self, small_square, rng):
        from repro.sinr.channel import LogNormalShadowing

        channel = LogNormalShadowing(3.0, seed=1)
        shadowed = small_square.with_channel(channel)
        family = same_graph_family(shadowed, [0.02, 0.04], rng)
        assert all(member.channel == channel for member in family)
