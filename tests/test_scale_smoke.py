"""Slow smoke test: an n=50k wake-up sweep through the grid layer.

The sparse backend's reason to exist is deployments the dense resolver
cannot touch (a dense n=50k gain matrix alone is 20 GB).  This test
drives the full production path once at that scale — deployment →
sparse backend → grid orchestrator → shared-memory CSR shipping →
batched wake-up kernel — and is gated behind the ``slow`` marker so the
CI fast lane stays fast (the tier-1 job runs it).
"""

import math

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.network.network import Network
from repro.sim.wakeup import WakeupSchedule

N = 50_000
DENSITY = 12.0


def _available_memory_bytes() -> int:
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 1 << 62


@pytest.mark.slow
@pytest.mark.skipif(
    _available_memory_bytes() < 3 * 10**9,
    reason="needs ~3 GB available memory for the 50k sparse build",
)
def test_50k_wakeup_sweep_through_grid_layer():
    side = math.sqrt(N / DENSITY)
    coords = np.random.default_rng(2014).uniform(0, side, size=(N, 2))

    def deployment(rng):
        return Network(
            coords, name="smoke-50k", backend="sparse", cutoff=2.0
        )

    point = GridPoint(
        kind="adhoc_wakeup",
        deployment=deployment,
        n_replications=1,
        label="n=50k",
        constants=ProtocolConstants.practical(),
        kwargs={
            "schedule": WakeupSchedule.all_at(N, 0),
            # explicit budget: the default would compute the diameter,
            # which has no sparse path (and no need — every station is
            # awake after the first round's spontaneous wake-ups)
            "round_budget": 4,
        },
    )
    results = run_grid(
        GridSpec(points=[point], seed=7, name="smoke-50k"),
        jobs=1, cache=False,
    )
    sweep = results[0].sweep
    assert sweep.n_replications == 1
    assert bool(sweep.success[0])
    assert results[0].network.backend_kind == "sparse"
    backend = results[0].network.sparse_backend
    # the memory story this backend exists for: far below dense n^2
    assert backend.nbytes() < (N * N * 8) / 10
