"""Slow smoke tests: n=50k and n=1M wake-ups through the sparse path.

The sparse backend's reason to exist is deployments the dense resolver
cannot touch (a dense n=50k gain matrix alone is 20 GB).  These tests
drive the full production path at scale — deployment → sparse backend →
grid orchestrator → shared-memory CSR shipping → batched wake-up kernel
at 50k, and a direct million-station wake-up round plus resolver fold
at 1M — gated behind the ``slow`` marker so the CI fast lane stays fast
(the tier-1 job runs them).
"""

import math
from time import perf_counter

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.fastsim.grid import GridPoint, GridSpec, run_grid
from repro.fastsim.wakeup import fast_adhoc_wakeup_batch
from repro.network.network import Network
from repro.sim.wakeup import WakeupSchedule
from repro.sinr.reception import NO_SENDER, resolve_reception_batch
from repro.sysmem import available_memory_bytes

N = 50_000
DENSITY = 12.0

N_1M = 1_000_000
#: Wall-clock ceiling for the 1M test: the sparse build measures ~140 s
#: on a single unremarkable core, so 900 s absorbs slow CI runners while
#: still catching an accidental O(n^2) regression (which would take
#: hours).
BUDGET_1M_SECONDS = 900.0


@pytest.mark.slow
@pytest.mark.skipif(
    available_memory_bytes() < 3 * 10**9,
    reason="needs ~3 GB available memory for the 50k sparse build",
)
def test_50k_wakeup_sweep_through_grid_layer():
    side = math.sqrt(N / DENSITY)
    coords = np.random.default_rng(2014).uniform(0, side, size=(N, 2))

    def deployment(rng):
        return Network(
            coords, name="smoke-50k", backend="sparse", cutoff=2.0
        )

    point = GridPoint(
        kind="adhoc_wakeup",
        deployment=deployment,
        n_replications=1,
        label="n=50k",
        constants=ProtocolConstants.practical(),
        kwargs={
            "schedule": WakeupSchedule.all_at(N, 0),
            # explicit budget: the default would compute the diameter,
            # which has no sparse path (and no need — every station is
            # awake after the first round's spontaneous wake-ups)
            "round_budget": 4,
        },
    )
    results = run_grid(
        GridSpec(points=[point], seed=7, name="smoke-50k"),
        jobs=1, cache=False,
    )
    sweep = results[0].sweep
    assert sweep.n_replications == 1
    assert bool(sweep.success[0])
    assert results[0].network.backend_kind == "sparse"
    backend = results[0].network.sparse_backend
    # the memory story this backend exists for: far below dense n^2
    assert backend.nbytes() < (N * N * 8) / 10


@pytest.mark.slow
@pytest.mark.compiled
@pytest.mark.skipif(
    available_memory_bytes() < 12 * 10**9,
    reason="needs ~12 GB available memory for the 1M sparse build",
)
def test_1m_wakeup_round_through_sparse_kernel():
    """One n=1M wake-up round completes under the wall-clock budget.

    ``kernel="auto"`` keeps the test honest on every machine: with
    numba installed it drives the compiled CSR kernels, without it the
    numpy fold (the two are bitwise identical, so the *protocol result*
    asserted here is the same either way).  A tighter cutoff than the
    50k test (1.0 vs 2.0) keeps the CSR near field at ~65 entries/row.
    """
    start = perf_counter()
    side = math.sqrt(N_1M / DENSITY)
    coords = np.random.default_rng(2014).uniform(0, side, size=(N_1M, 2))
    net = Network(
        coords, name="smoke-1m", backend="sparse", cutoff=1.0,
        kernel="auto",
    )

    # The wake-up round: every station wakes spontaneously at round 0
    # and the batched kernel resolves reception over the full million.
    schedule = WakeupSchedule.all_at(N_1M, 0)
    outcome = fast_adhoc_wakeup_batch(
        net, schedule, ProtocolConstants.practical(),
        [np.random.default_rng(7)], round_budget=2,
    )[0]
    assert outcome.success
    assert int(outcome.informed_round.max()) == 0

    # A contended round through the same backend: 2% of the million
    # transmitting exercises the CSR near-field fold at full scale
    # (spontaneous wake-ups alone keep the channel silent).
    tx = np.zeros((1, N_1M), dtype=bool)
    picks = np.random.default_rng(2014).choice(N_1M, N_1M // 50, False)
    tx[0, picks] = True
    heard = resolve_reception_batch(
        net.gain_operator, tx, net.params.noise, net.params.beta,
        kernel=net.kernel_kind,
    )
    assert int((heard[0] != NO_SENDER).sum()) > 0

    backend = net.sparse_backend
    assert backend.nbytes() < 4 * 10**9
    elapsed = perf_counter() - start
    assert elapsed < BUDGET_1M_SECONDS, (
        f"1M wake-up took {elapsed:.0f}s, budget {BUDGET_1M_SECONDS:.0f}s"
    )
