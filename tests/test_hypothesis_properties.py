"""Property-based tests (hypothesis) for core invariants.

These cover the places where an algebraic invariant must hold for *all*
inputs, not just the fixtures: the SINR reception rule, metric validation,
the coloring schedule arithmetic, ball queries and the fitting layer.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fitting import fit_single, growth_exponent
from repro.core.constants import ColoringSchedule, ProtocolConstants, log2ceil
from repro.geometry.balls import annulus_indices, ball_indices
from repro.geometry.metric import pairwise_distances
from repro.sinr.gain import gain_matrix
from repro.sinr.params import SINRParameters
from repro.sinr.reception import NO_SENDER, resolve_reception

PARAMS = SINRParameters.default()


coords_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
    ),
    min_size=2,
    max_size=12,
    unique=True,
)


def _to_distinct_coords(pairs):
    coords = np.array(pairs, dtype=float)
    dist = pairwise_distances(coords)
    n = coords.shape[0]
    mask = ~np.eye(n, dtype=bool)
    if dist[mask].min() < 1e-6:
        return None
    return coords


class TestReceptionInvariants:
    @given(coords=coords_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_reception_rule_invariants(self, coords, data):
        coords = _to_distinct_coords(coords)
        if coords is None:
            return
        n = coords.shape[0]
        gains = gain_matrix(
            pairwise_distances(coords), PARAMS.power, PARAMS.alpha
        )
        tx = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=n, unique=True,
            )
        )
        tx_arr = np.array(sorted(tx), dtype=int)
        heard = resolve_reception(gains, tx_arr, PARAMS.noise, PARAMS.beta)
        tx_set = set(tx)
        for u in range(n):
            sender = heard[u]
            if u in tx_set:
                # Transmitters never receive.
                assert sender == NO_SENDER
            if sender != NO_SENDER:
                # Senders must transmit and must clear the SINR threshold.
                assert sender in tx_set
                signal = gains[sender, u]
                interference = gains[tx_arr, u].sum() - signal
                sinr = signal / (PARAMS.noise + interference)
                assert sinr >= PARAMS.beta - 1e-9

    @given(coords=coords_strategy)
    @settings(max_examples=30, deadline=None)
    def test_single_transmitter_heard_within_comm_radius(self, coords):
        coords = _to_distinct_coords(coords)
        if coords is None:
            return
        dist = pairwise_distances(coords)
        gains = gain_matrix(dist, PARAMS.power, PARAMS.alpha)
        heard = resolve_reception(
            gains, np.array([0]), PARAMS.noise, PARAMS.beta
        )
        for u in range(1, coords.shape[0]):
            if dist[0, u] <= PARAMS.broadcast_range:
                assert heard[u] == 0
            else:
                assert heard[u] == NO_SENDER


class TestMetricInvariants:
    @given(coords=coords_strategy)
    @settings(max_examples=40, deadline=None)
    def test_pairwise_is_metric(self, coords):
        coords = np.array(coords, dtype=float)
        d = pairwise_distances(coords)
        n = coords.shape[0]
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)
        # Triangle inequality.
        for j in range(n):
            assert np.all(d <= d[:, j][:, None] + d[j, :][None, :] + 1e-7)

    @given(
        coords=coords_strategy,
        radius=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_ball_membership_definition(self, coords, radius):
        coords = np.array(coords, dtype=float)
        d = pairwise_distances(coords)
        members = set(ball_indices(d, 0, radius).tolist())
        for v in range(coords.shape[0]):
            assert (v in members) == (d[0, v] <= radius)

    @given(
        coords=coords_strategy,
        inner=st.floats(min_value=0.0, max_value=3.0),
        width=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_annulus_disjoint_from_inner_ball(self, coords, inner, width):
        coords = np.array(coords, dtype=float)
        d = pairwise_distances(coords)
        ring = set(annulus_indices(d, 0, inner, inner + width).tolist())
        ball = set(ball_indices(d, 0, inner).tolist())
        assert not (ring & ball)


class TestScheduleInvariants:
    @given(n=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=80, deadline=None)
    def test_schedule_consistency(self, n):
        constants = ProtocolConstants.practical()
        s = ColoringSchedule(constants, n)
        assert s.total_rounds == s.levels * s.level_len
        assert s.levels >= 1
        # Probabilities stay legal at every level.
        for level in range(s.levels):
            p = s.level_probability(level)
            assert 0 < p <= constants.pmax
            assert p * constants.ceps <= 1.0 + 1e-12

    @given(n=st.integers(min_value=2, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_rounds_polylogarithmic(self, n):
        constants = ProtocolConstants.practical()
        rounds = constants.coloring_total_rounds(n)
        logn = log2ceil(n)
        # Explicit O(log^2 n) constant: levels <= logn, block = 24 logn.
        upper = (
            (constants.density_rounds + constants.playoff_rds + 2)
            * constants.repeats
            * (logn + 1) ** 2
        )
        assert rounds <= upper

    @given(
        n=st.integers(min_value=1, max_value=2000),
        offset_frac=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_position_roundtrip(self, n, offset_frac):
        constants = ProtocolConstants.practical()
        s = ColoringSchedule(constants, n)
        offset = int(offset_frac * s.total_rounds)
        level, block, part, r = s.position(offset)
        # Reconstruct the offset from the decomposition.
        base = level * s.level_len + block * s.block_len
        if part == "playoff":
            base += s.density_len
        assert base + r == offset


class TestConstantsInvariants:
    @given(
        n=st.integers(min_value=1, max_value=100000),
        color_level=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_colors_bounded(self, n, color_level):
        c = ProtocolConstants.practical()
        color = c.color_of_level(color_level, n)
        assert 0 < color <= c.pmax

    @given(n=st.integers(min_value=2, max_value=100000))
    @settings(max_examples=60, deadline=None)
    def test_dissemination_prob_legal(self, n):
        c = ProtocolConstants.practical()
        for color in (c.pstart(n), c.pmax, c.survivor_color):
            p = c.dissemination_prob(color, n)
            assert 0 <= p <= 1


class TestFittingInvariants:
    @given(
        scale=st.floats(min_value=0.1, max_value=100.0),
        model=st.sampled_from(["n", "log n", "log^2 n", "sqrt n"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_data_recovers_scale(self, scale, model):
        from repro.analysis.fitting import COMPLEXITY_MODELS

        x = np.array([4.0, 8.0, 16.0, 32.0, 64.0])
        y = scale * COMPLEXITY_MODELS[model](x)
        fit = fit_single(x, y, model)
        assert fit.scale == pytest.approx(scale, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    @given(exponent=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_growth_exponent_recovers_power(self, exponent):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = x ** exponent
        assert growth_exponent(x, y) == pytest.approx(exponent, abs=1e-9)


class TestLog2CeilInvariants:
    @given(n=st.integers(min_value=1, max_value=10 ** 9))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, n):
        value = log2ceil(n)
        assert value >= 1
        if n > 1:
            assert 2 ** value >= n
            assert 2 ** (value - 1) < n or value == 1

    @given(n=st.integers(min_value=2, max_value=10 ** 8))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, n):
        assert log2ceil(n) <= log2ceil(n + 1)
