"""Tests for the local-broadcast extension."""

import numpy as np
import pytest

from repro.core.constants import ProtocolConstants
from repro.core.local_broadcast import run_local_broadcast
from repro.deploy import uniform_chain, uniform_square
from repro.network.network import Network


@pytest.fixture(scope="module")
def constants():
    return ProtocolConstants.practical()


class TestLocalBroadcast:
    def test_completes_on_chain(self, constants, rng):
        net = uniform_chain(10, gap=0.5)
        result = run_local_broadcast(net, constants, rng)
        assert result.success
        assert result.missing_pairs() == []
        assert result.completion_round >= result.coloring_rounds

    def test_completes_on_square(self, constants, rng):
        net = uniform_square(n=32, side=2.5, rng=rng)
        result = run_local_broadcast(net, constants, rng)
        assert result.success

    def test_deliveries_cover_all_neighbour_pairs(self, constants, rng):
        net = uniform_chain(8, gap=0.5)
        result = run_local_broadcast(net, constants, rng)
        adjacency = net.distances <= net.params.comm_radius
        np.fill_diagonal(adjacency, False)
        senders, receivers = np.nonzero(adjacency)
        for v, u in zip(senders, receivers):
            assert result.deliveries[v, u]

    def test_single_station_trivial(self, constants, rng):
        net = Network(np.array([[0.0, 0.0]]))
        result = run_local_broadcast(net, constants, rng)
        assert result.success
        assert result.deliveries.shape == (1, 1)

    def test_no_edges_trivial(self, constants, rng):
        net = Network(np.array([[0.0, 0.0], [5.0, 0.0]]))
        result = run_local_broadcast(net, constants, rng)
        assert result.success

    def test_budget_exhaustion_reports_missing(self, constants, rng):
        net = uniform_square(n=32, side=2.0, rng=rng)
        result = run_local_broadcast(net, constants, rng, round_budget=1)
        assert not result.success
        assert len(result.missing_pairs()) > 0

    def test_reproducible(self, constants):
        net = uniform_chain(8, gap=0.5)
        a = run_local_broadcast(net, constants, np.random.default_rng(1))
        b = run_local_broadcast(net, constants, np.random.default_rng(1))
        assert a.completion_round == b.completion_round

    def test_denser_networks_take_longer(self, constants):
        # Local broadcast pays the Delta factor: delivering into a station
        # with many neighbours needs more distinct receptions.
        sparse = uniform_chain(12, gap=0.5)
        dense = uniform_square(n=48, side=1.5, rng=np.random.default_rng(2))
        a = run_local_broadcast(
            sparse, constants, np.random.default_rng(3)
        )
        b = run_local_broadcast(
            dense, constants, np.random.default_rng(3)
        )
        assert a.success and b.success
        per_pair_a = a.total_rounds
        per_pair_b = b.total_rounds
        assert per_pair_b > per_pair_a / 4  # dense is not magically free
