"""Property-based tests for the vectorized protocol layer.

Invariants that must hold for arbitrary (small) deployments and random
participant sets: legal color assignments, conservation of the informed
set, and agreement between the outcome record and the per-station data.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.coloring import FINAL_COLOR_LEVEL, NOT_PARTICIPATING
from repro.core.constants import ProtocolConstants
from repro.core.outcome import NEVER_INFORMED
from repro.fastsim import fast_coloring, fast_spont_broadcast, fast_uniform_broadcast
from repro.network.network import Network

CONSTANTS = ProtocolConstants.practical()


@st.composite
def small_network(draw):
    """A random connected-ish network of 2-10 distinct stations."""
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    # Chain backbone with jitter guarantees distinctness and connectivity.
    xs = np.arange(n) * 0.45 + rng.uniform(-0.05, 0.05, size=n)
    ys = rng.uniform(-0.1, 0.1, size=n)
    return Network(np.column_stack([xs, ys])), seed


class TestFastColoringProperties:
    @given(data=small_network(), mask_seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_colors_legal_for_any_participant_set(self, data, mask_seed):
        net, seed = data
        rng = np.random.default_rng(seed)
        mask_rng = np.random.default_rng(mask_seed)
        participants = mask_rng.random(net.size) < 0.7
        if not participants.any():
            participants[0] = True
        result = fast_coloring(
            net, CONSTANTS, rng, participants=participants
        )
        n = net.size
        legal = {
            CONSTANTS.color_of_level(lv, n)
            for lv in range(CONSTANTS.num_levels(n))
        } | {CONSTANTS.survivor_color}
        for i in range(n):
            if participants[i]:
                assert any(
                    abs(result.colors[i] - v) < 1e-12 for v in legal
                )
                assert result.quit_levels[i] != NOT_PARTICIPATING
            else:
                assert np.isnan(result.colors[i])
                assert result.quit_levels[i] == NOT_PARTICIPATING

    @given(data=small_network())
    @settings(max_examples=25, deadline=None)
    def test_quit_levels_within_ladder(self, data):
        net, seed = data
        result = fast_coloring(net, CONSTANTS, np.random.default_rng(seed))
        for level in result.quit_levels:
            assert (
                level == FINAL_COLOR_LEVEL
                or 0 <= level < result.schedule.levels
            )


class TestBroadcastProperties:
    @given(data=small_network(), source_frac=st.floats(0.0, 0.999))
    @settings(max_examples=25, deadline=None)
    def test_informed_set_conservation(self, data, source_frac):
        net, seed = data
        source = int(source_frac * net.size)
        out = fast_spont_broadcast(
            net, source, CONSTANTS, np.random.default_rng(seed)
        )
        informed = out.informed_round
        # Source informed at round 0; nobody informed before round 0;
        # completion consistent with the per-station data.
        assert informed[source] == 0
        assert np.all((informed >= 0) | (informed == NEVER_INFORMED))
        if out.success:
            assert out.completion_round == informed.max()
            assert out.num_informed == net.size
        else:
            assert np.any(informed == NEVER_INFORMED)

    @given(data=small_network())
    @settings(max_examples=20, deadline=None)
    def test_uniform_flood_progress_monotone(self, data):
        net, seed = data
        out = fast_uniform_broadcast(
            net, 0, q=0.5, rng=np.random.default_rng(seed)
        )
        curve = out.progress_curve()
        assert np.all(np.diff(curve) >= 0)
        assert curve[0] >= 1  # the source

    @given(data=small_network(), budget=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_budget_respected(self, data, budget):
        net, seed = data
        out = fast_uniform_broadcast(
            net, 0, q=0.5, rng=np.random.default_rng(seed),
            round_budget=budget,
        )
        assert out.total_rounds <= budget
