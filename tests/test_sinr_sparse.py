"""Tests for the sparse geometry-certified SINR backend (DESIGN.md §2.2)."""

import math

import numpy as np
import pytest

from repro.deploy import uniform_square
from repro.deploy.perturb import jitter_within_slack, same_graph_family_sparse
from repro.errors import (
    DeploymentError,
    GeometryError,
    ProtocolError,
)
from repro.network.network import Network
from repro.sinr.channel import (
    DualSlope,
    LogNormalShadowing,
    ObstacleMask,
    UniformPower,
    rectangle,
)
from repro.sinr.params import SINRParameters
from repro.sinr.reception import (
    NO_SENDER,
    resolve_reception,
    resolve_reception_batch,
    sinr_values,
)
from repro.sinr.sparse import (
    CELLS_PER_CUTOFF,
    CellIndex,
    SparseGainBackend,
    certified_cutoff,
    default_cutoff,
    far_field_tail_bound,
    sparse_supported,
)

PARAMS = SINRParameters.default()


def _spread_coords(n=200, side=8.0, seed=7):
    return np.random.default_rng(seed).uniform(0, side, size=(n, 2))


def _backend(coords, cutoff=1.0, channel=None):
    return SparseGainBackend(coords, PARAMS, channel, cutoff)


class TestCellIndex:
    def test_pairs_cover_every_near_pair(self):
        coords = _spread_coords(80, 5.0)
        index = CellIndex(coords, 0.5, reach=2)
        got = set()
        for i, j in index.adjacent_pair_chunks():
            got.update(zip(i.tolist(), j.tolist()))
        # every ordered pair exactly once
        assert len(got) == len(set(got))
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        near = {
            (i, j)
            for i in range(80)
            for j in range(80)
            if i != j and dist[i, j] <= 2 * 0.5
        }
        assert near <= got

    def test_candidates_near_complete(self):
        coords = _spread_coords(60, 4.0)
        index = CellIndex(coords, 1.0, reach=1)
        point = coords[17]
        cands = set(index.candidates_near(point).tolist())
        dist = np.linalg.norm(coords - point, axis=1)
        assert set(np.flatnonzero(dist <= 1.0).tolist()) <= cands

    def test_rejects_bad_arguments(self):
        coords = _spread_coords(10)
        with pytest.raises(GeometryError):
            CellIndex(coords, 0.0)
        with pytest.raises(GeometryError):
            CellIndex(coords, 1.0, reach=0)


class TestBackendConstruction:
    def test_csr_matches_dense_gains(self):
        coords = _spread_coords(120, 6.0)
        backend = _backend(coords, cutoff=1.5)
        dense = Network(coords, backend="dense").gains
        for u in (0, 17, 119):
            lo, hi = backend.indptr[u], backend.indptr[u + 1]
            senders = backend.indices[lo:hi]
            assert np.all(np.diff(senders) > 0)  # ascending, no dupes
            assert np.array_equal(backend.data[lo:hi], dense[senders, u])

    def test_near_field_complete_to_cutoff(self):
        coords = _spread_coords(100, 5.0)
        backend = _backend(coords, cutoff=1.2)
        ii, jj = backend.pairs_within(1.2)
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        expect = {
            (i, j)
            for i in range(100)
            for j in range(i + 1, 100)
            if dist[i, j] <= 1.2
        }
        assert set(zip(ii.tolist(), jj.tolist())) == expect

    def test_cutoff_below_range_rejected(self):
        with pytest.raises(ProtocolError):
            _backend(_spread_coords(20), cutoff=0.5)

    def test_non_radial_channel_rejected(self):
        channel = ObstacleMask([rectangle(1, 1, 2, 2)])
        with pytest.raises(ProtocolError):
            _backend(_spread_coords(20), channel=channel)

    def test_dual_slope_is_radial(self):
        coords = _spread_coords(50, 3.0)
        channel = DualSlope(breakpoint=1.0)
        backend = _backend(coords, cutoff=1.5, channel=channel)
        dense = channel.gain(
            Network(coords, backend="dense").distances, coords, PARAMS
        )
        u = 25
        lo, hi = backend.indptr[u], backend.indptr[u + 1]
        assert np.array_equal(
            backend.data[lo:hi], dense[backend.indices[lo:hi], u]
        )

    def test_colocated_stations_rejected(self):
        coords = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(DeploymentError):
            _backend(coords)

    def test_from_arrays_round_trips(self):
        coords = _spread_coords(80, 5.0)
        built = _backend(coords, cutoff=1.5)
        rebuilt = SparseGainBackend.from_arrays(
            coords, PARAMS, built.channel, 1.5,
            built.data, built.indices, built.indptr,
        )
        tx = np.random.default_rng(0).random((4, 80)) < 0.1
        assert np.array_equal(
            built.resolve_reception_batch(tx, 1.0, 1.0),
            rebuilt.resolve_reception_batch(tx, 1.0, 1.0),
        )
        # lazily recomputed distances match the originals bitwise
        assert np.array_equal(built.dists, rebuilt.dists)

    def test_cell_budget_guard(self):
        # Two stations an enormous distance apart: the grid would need
        # more cells than the budget allows.
        coords = np.array([[0.0, 0.0], [1e6, 1e6]])
        with pytest.raises(ProtocolError):
            _backend(coords)


class TestResolverAgainstDense:
    def test_covered_regime_bitwise_equal(self):
        rng = np.random.default_rng(42)
        coords = rng.uniform(0, 1.9, size=(60, 2))
        dense = Network(coords, backend="dense")
        sparse = Network(coords, backend="sparse", cutoff=2.0)
        assert sparse.sparse_backend.far_empty
        tx = rng.random((8, 60)) < 0.2
        assert np.array_equal(
            resolve_reception_batch(dense.gain_operator, tx, 1.0, 1.0),
            resolve_reception_batch(sparse.gain_operator, tx, 1.0, 1.0),
        )

    def test_truncated_regime_conservative_subset(self):
        coords = _spread_coords(300, 8.0)
        dense = Network(coords, backend="dense")
        sparse = Network(coords, backend="sparse", cutoff=1.0)
        assert not sparse.sparse_backend.far_empty
        tx = np.random.default_rng(1).random((16, 300)) < 0.05
        a = resolve_reception_batch(dense.gain_operator, tx, 1.0, 1.0)
        b = resolve_reception_batch(sparse.gain_operator, tx, 1.0, 1.0)
        assert np.all((b == NO_SENDER) | (b == a))
        # and the truncation only suppresses a small fraction
        assert (b != NO_SENDER).sum() > 0.7 * (a != NO_SENDER).sum()

    def test_certified_band_brackets_true_far_field(self):
        coords = _spread_coords(200, 8.0)
        dense = Network(coords, backend="dense").gains
        backend = _backend(coords, cutoff=1.0)
        tx = np.random.default_rng(2).random((8, 200)) < 0.05
        far, band = backend.far_band(tx)
        for b in range(tx.shape[0]):
            transmitters = np.flatnonzero(tx[b])
            true_far = (
                dense[transmitters].sum(axis=0)
                - backend._near_scan(transmitters)[0]
            )
            assert np.all(far[b] + band[b] >= true_far - 1e-9)
            assert np.all(far[b] - band[b] <= true_far + 1e-9)

    def test_single_instance_resolution(self):
        coords = _spread_coords(60, 1.8, seed=3)
        dense = Network(coords, backend="dense")
        sparse = Network(coords, backend="sparse", cutoff=2.0)
        transmitters = np.asarray([3, 17, 40])
        assert np.array_equal(
            resolve_reception(dense.gain_operator, transmitters, 1.0, 1.0),
            resolve_reception(sparse.gain_operator, transmitters, 1.0, 1.0),
        )
        bs_d, sinr_d = sinr_values(dense.gain_operator, transmitters, 1.0)
        bs_s, sinr_s = sinr_values(sparse.gain_operator, transmitters, 1.0)
        # covered regime: identical strongest senders at every
        # non-degenerate station (dense reports an arbitrary argmax at
        # stations that hear only themselves); SINR values agree up to
        # summation association — the dense *single-instance* resolver
        # uses numpy's pairwise sum while the sparse scan folds in
        # order, the same last-ulp caveat documented between the dense
        # single and batched resolvers.
        listeners = np.setdiff1d(np.arange(60), transmitters)
        assert np.array_equal(bs_d[listeners], bs_s[listeners])
        np.testing.assert_allclose(
            sinr_d[listeners], sinr_s[listeners], rtol=1e-12
        )


class TestResolverEdgeCases:
    """All-transmit / single-transmitter / n=1, both backends."""

    @pytest.mark.parametrize("backend_kind", ["dense", "sparse"])
    def test_all_stations_transmit_nobody_hears(self, backend_kind):
        coords = _spread_coords(40, 1.5, seed=5)
        net = Network(coords, backend=backend_kind, cutoff=2.0)
        tx = np.ones((2, 40), dtype=bool)
        heard = resolve_reception_batch(net.gain_operator, tx, 1.0, 1.0)
        assert np.all(heard == NO_SENDER)

    @pytest.mark.parametrize("backend_kind", ["dense", "sparse"])
    def test_single_transmitter_reaches_range(self, backend_kind):
        coords = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 5.0]])
        net = Network(coords, backend=backend_kind, cutoff=8.0)
        heard = resolve_reception(
            net.gain_operator, np.asarray([0]),
            PARAMS.noise, PARAMS.beta,
        )
        assert heard[1] == 0          # within range 1
        assert heard[2] == NO_SENDER  # far outside range
        assert heard[0] == NO_SENDER  # transmitters never receive

    @pytest.mark.parametrize("backend_kind", ["dense", "sparse"])
    def test_single_station_network(self, backend_kind):
        net = Network(
            np.array([[0.0, 0.0]]), backend=backend_kind, cutoff=2.0
        )
        tx = np.array([[True], [False]])
        heard = resolve_reception_batch(net.gain_operator, tx, 1.0, 1.0)
        assert np.all(heard == NO_SENDER)

    def test_empty_transmitter_set(self):
        backend = _backend(_spread_coords(10, 1.5))
        best, sinr = backend.sinr_values(np.asarray([], dtype=int), 1.0)
        assert np.all(best == NO_SENDER)
        assert np.all(sinr == 0)

    def test_sinr_values_with_live_far_field_is_lower_bound(self):
        coords = _spread_coords(150, 7.0, seed=13)
        backend = _backend(coords, cutoff=1.0)
        assert not backend.far_empty
        transmitters = np.asarray([0, 30, 60, 90, 120])
        _, sinr_cons = backend.sinr_values(transmitters, PARAMS.noise)
        _, sinr_true = sinr_values(
            Network(coords, backend="dense").gain_operator,
            transmitters, PARAMS.noise,
        )
        listeners = np.setdiff1d(np.arange(150), transmitters)
        # certified lower bound wherever the sparse near field sees a
        # sender at all
        seen = sinr_cons[listeners] > 0
        assert np.all(
            sinr_cons[listeners][seen]
            <= sinr_true[listeners][seen] * (1 + 1e-12)
        )

    def test_measured_gamma_tail_bound(self):
        backend = _backend(_spread_coords(300, 6.0, seed=14), cutoff=1.0)
        assert backend.certified_tail_bound() > 0  # measured-gamma path


class TestNetworkIntegration:
    def test_auto_resolves_dense_below_threshold(self):
        net = Network(_spread_coords(50))
        assert net.backend_kind == "dense"
        assert isinstance(net.gain_operator, np.ndarray)

    def test_explicit_sparse_below_threshold(self):
        net = Network(_spread_coords(50), backend="sparse")
        assert net.backend_kind == "sparse"
        assert isinstance(net.gain_operator, SparseGainBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError):
            Network(_spread_coords(10), backend="csr")

    def test_sparse_graph_matches_dense(self):
        coords = _spread_coords(150, 6.0)
        dense = Network(coords, backend="dense")
        sparse = Network(coords, backend="sparse", cutoff=1.5)
        assert set(map(frozenset, dense.graph.edges)) == set(
            map(frozenset, sparse.graph.edges)
        )
        assert dense.is_connected == Network(
            coords, backend="sparse", cutoff=1.5
        ).is_connected

    def test_sparse_ball_matches_dense(self):
        coords = _spread_coords(120, 5.0)
        dense = Network(coords, backend="dense")
        sparse = Network(coords, backend="sparse", cutoff=1.5)
        for center in (0, 60, 119):
            assert np.array_equal(
                sparse.ball(center, 1.2), dense.ball(center, 1.2)
            )

    def test_fingerprints_dense_unchanged_sparse_distinct(self):
        coords = _spread_coords(40)
        dense = Network(coords, backend="dense")
        auto = Network(coords)  # auto resolves dense at n=40
        sparse = Network(coords, backend="sparse", cutoff=2.0)
        assert dense.fingerprint() == auto.fingerprint()
        assert sparse.fingerprint() != dense.fingerprint()
        assert sparse.fingerprint() != Network(
            coords, backend="sparse", cutoff=3.0
        ).fingerprint()

    def test_describe_reports_backend(self):
        net = Network(_spread_coords(30, 1.5), backend="sparse", cutoff=2.0)
        assert net.describe()["backend"] == "sparse"

    def test_with_params_and_channel_keep_backend(self):
        net = Network(_spread_coords(40), backend="sparse", cutoff=2.0)
        assert net.with_params(PARAMS).backend_kind == "sparse"
        assert net.with_channel(UniformPower()).backend_kind == "sparse"

    def test_auto_declines_non_radial_channels(self):
        coords = _spread_coords(40)
        shadow = Network(coords, channel=LogNormalShadowing(4.0, seed=1))
        assert shadow.backend_kind == "dense"
        assert not sparse_supported(
            coords, PARAMS, shadow.metric, shadow.channel
        )


class TestGrowthCertificates:
    def test_tail_bound_decreases_in_cutoff(self):
        bounds = [
            far_field_tail_bound(PARAMS, c, 2.0, 1.0, 50)
            for c in (1.0, 2.0, 4.0)
        ]
        assert bounds[0] > bounds[1] > bounds[2] > 0

    def test_tail_bound_validates(self):
        with pytest.raises(GeometryError):
            far_field_tail_bound(PARAMS, 0.0, 2.0, 1.0, 10)

    def test_certified_cutoff_picks_smallest_certifiable(self):
        coords = _spread_coords(400, 6.0, seed=11)
        cutoff = certified_cutoff(coords, PARAMS, gamma=2.0)
        assert cutoff >= PARAMS.broadcast_range
        # tighter budget -> never smaller cutoff
        tighter = certified_cutoff(
            coords, PARAMS, gamma=2.0, budget_fraction=0.01
        )
        assert tighter >= cutoff

    def test_backend_tail_bound_finite(self):
        backend = _backend(_spread_coords(200, 8.0), cutoff=1.0)
        bound = backend.certified_tail_bound(gamma=2.0)
        assert 0 < bound < math.inf
        worst = backend.certified_tail_bound(
            gamma=2.0, active_per_ball=backend.max_ball_occupancy()
        )
        assert worst >= bound

    def test_default_cutoff_is_twice_range(self):
        assert default_cutoff(PARAMS) == pytest.approx(
            2.0 * PARAMS.broadcast_range
        )


class TestSlackJitter:
    def test_preserves_graph_and_moves_stations(self):
        rng = np.random.default_rng(8)
        base = uniform_square(n=150, side=3.0, rng=rng)
        jittered = jitter_within_slack(base, 0.05, rng)
        assert set(map(frozenset, base.graph.edges)) == set(
            map(frozenset, jittered.graph.edges)
        )
        assert not np.array_equal(base.coords, jittered.coords)

    def test_family_shares_graph(self):
        rng = np.random.default_rng(9)
        base = uniform_square(n=100, side=2.5, rng=rng)
        family = same_graph_family_sparse(base, [0.02, 0.05], rng)
        assert len(family) == 3
        edges = set(map(frozenset, base.graph.edges))
        for member in family[1:]:
            assert set(map(frozenset, member.graph.edges)) == edges

    def test_works_under_non_radial_channels(self):
        # the jitter consumes only distances, so shadowing/obstacle
        # channels (which the sparse backend cannot serve) must not
        # prevent building same-graph families
        rng = np.random.default_rng(12)
        base = uniform_square(n=60, side=2.0, rng=rng).with_channel(
            LogNormalShadowing(3.0, seed=1)
        )
        jittered = jitter_within_slack(base, 0.03, rng)
        assert set(map(frozenset, base.graph.edges)) == set(
            map(frozenset, jittered.graph.edges)
        )

    def test_zero_scale_is_identity(self):
        rng = np.random.default_rng(10)
        base = uniform_square(n=40, side=1.5, rng=rng)
        assert np.array_equal(
            jitter_within_slack(base, 0.0, rng).coords, base.coords
        )

    def test_rejects_bad_scale(self):
        rng = np.random.default_rng(11)
        base = uniform_square(n=20, side=1.5, rng=rng)
        with pytest.raises(DeploymentError):
            jitter_within_slack(base, -1.0, rng)


def test_cells_per_cutoff_sanity():
    # the fingerprint marker and the far-field floor both rely on it
    assert CELLS_PER_CUTOFF >= 1
