"""Mobility walkthrough: drift a fractal cluster and watch it evolve.

Deploys a fractal cluster hierarchy (growth dimension ~1.5), drifts it
with a seeded Brownian mobility model, and shows the two temporal
effects E15 measures (DESIGN.md §7):

1. **graph churn** — how connectivity and the edge count change round by
   round while the deployment moves through its reflection box (the
   drift rides `Network.advance`, which patches the gain structure
   incrementally instead of rebuilding it);
2. **protocol cost** — ad hoc wake-up latency on the frozen deployment
   versus the same deployment moving at increasing rates, via the
   `network_hook` callback every fastsim kernel accepts.

Run:  python examples/mobility.py
"""

import numpy as np

from repro import deploy
from repro.analysis.tables import render_table
from repro.core import ProtocolConstants
from repro.deploy.mobility import BrownianDrift, mobility_hook
from repro.fastsim.wakeup import fast_adhoc_wakeup
from repro.sim.wakeup import WakeupSchedule


def main() -> None:
    rng = np.random.default_rng(2014)

    # 1. A fractal cluster hierarchy: 3^4 = 81 stations, growth
    #    dimension tuned to 1.5 — between a corridor and a square.  The
    #    wide span makes it genuinely multi-hop (diameter ~6).
    net = deploy.fractal_clusters(4, 3, rng, dimension=1.5, span=3.0)
    print(
        f"fractal deployment: n={net.size}, diameter={net.diameter}, "
        f"connected={net.is_connected}, edges={net.graph.number_of_edges()}"
    )

    # 2. Drift it: every round ~20% of the stations take a small
    #    Gaussian step, reflected into the deployment's bounding box —
    #    under the rebuild threshold, so `advance` patches the computed
    #    gain structure instead of rebuilding it.
    model = BrownianDrift(0.03, move_prob=0.2, seed=5)
    session = model.session(net.coords)
    current = net
    print("\nround  connected  edges  advance-mode")
    for round_no in range(12):
        disp = session.displacements(current.coords, round_no)
        current = current.advance(disp)
        if round_no % 3 == 2:
            print(
                f"{round_no + 1:>5}  {str(current.is_connected):>9}  "
                f"{current.graph.number_of_edges():>5}  "
                f"{current.advance_mode}"
            )

    # 3. Wake-up latency, static vs moving: the same adversarial
    #    schedule (a single spontaneous waker), increasing drift rates.
    constants = ProtocolConstants.practical()
    wake_rounds = np.full(net.size, WakeupSchedule.NEVER)
    wake_rounds[0] = 0
    schedule = WakeupSchedule(wake_rounds)
    rows = []
    for rate in [0.0, 0.02, 0.05]:
        hook = (
            mobility_hook(BrownianDrift(rate, move_prob=0.2, seed=9))
            if rate > 0.0
            else None
        )
        outcome = fast_adhoc_wakeup(
            net, schedule, constants, np.random.default_rng(3),
            network_hook=hook,
        )
        rows.append(
            [
                f"{rate:.2f}",
                "yes" if outcome.success else "no",
                outcome.extras["wakeup_time"],
            ]
        )
    print("\nad hoc wake-up under drift (same seed, same schedule):")
    print(render_table(["drift rate", "all awake", "wakeup time"], rows))
    print(
        "\nmoving deployments change the communication graph the paper's "
        "claims are stated over; E15 (python -m repro.experiments e15) "
        "measures the slowdown and the same-graph escape time across "
        "growth dimensions."
    )


if __name__ == "__main__":
    main()
