"""Query a resident network through the SINR service (DESIGN.md §8).

Starts an in-process service daemon holding one fractal-cluster
deployment, then fires a burst of concurrent SINR and ball queries at
it from asyncio tasks — the workload the batch coalescer exists for.
Concurrent SINR queries against the same network fold into shared
kernel calls, and every reply is bitwise what a dedicated call would
have returned (the coalescing contract, tested in
``tests/test_service.py``).

Against a long-running daemon you would instead launch
``python -m repro.service --unix /tmp/repro.sock`` once and point
:func:`repro.service.connect` at it; everything below past ``connect``
is unchanged.

Run:  python examples/service_client.py
"""

import asyncio
import tempfile
import time

import numpy as np

from repro.deploy import fractal_clusters
from repro.service import NetworkPool, ServiceServer, connect

CLIENT_TASKS = 40
QUERIES_PER_TASK = 5
TX_PER_QUERY = 6


async def main() -> None:
    # 1. A deployment worth keeping resident: a 3-level cluster
    #    hierarchy of 4^3 = 64 stations (the paper's low-growth regime).
    net = fractal_clusters(3, 4, np.random.default_rng(11), dimension=1.5)
    print(f"deployment: {net.name}, n={net.size}")

    # 2. Serve it over a unix socket from this process.
    server = ServiceServer(pool=NetworkPool())
    fingerprint, _ = server.pool.add(net)
    with tempfile.TemporaryDirectory() as tmp:
        await server.start_unix(f"{tmp}/repro.sock")
        client = await connect(f"unix:{tmp}/repro.sock")

        # 3. Concurrent clients: each task issues a few SINR queries
        #    (random transmitter sets) plus one ball query.
        rng = np.random.default_rng(12)
        latencies = []

        async def client_task(task_id: int) -> int:
            heard_total = 0
            for _ in range(QUERIES_PER_TASK):
                tx = rng.choice(net.size, size=TX_PER_QUERY, replace=False)
                t0 = time.perf_counter()
                reply = await client.sinr(fingerprint, tx)
                latencies.append(time.perf_counter() - t0)
                heard_total += len(reply["receptions"])
            ball = await client.ball(fingerprint, task_id % net.size, 1.0)
            return heard_total + len(ball)

        t0 = time.perf_counter()
        totals = await asyncio.gather(
            *(client_task(i) for i in range(CLIENT_TASKS))
        )
        elapsed = time.perf_counter() - t0

        # 4. The coalescer's view of that burst, from the stats op.
        stats = await client.stats()
        await client.aclose()
        await server.aclose()

    n_queries = CLIENT_TASKS * QUERIES_PER_TASK
    lat = np.sort(np.asarray(latencies))
    print(
        f"{n_queries} SINR + {CLIENT_TASKS} ball queries in "
        f"{elapsed * 1e3:.0f} ms "
        f"({(n_queries + CLIENT_TASKS) / elapsed:.0f} req/s)"
    )
    print(
        f"SINR latency: p50 {lat[len(lat) // 2] * 1e3:.1f} ms, "
        f"p99 {lat[int(len(lat) * 0.99)] * 1e3:.1f} ms"
    )
    for key, co in stats.get("coalescers", {}).items():
        print(
            f"coalescer {key}: {co['requests']} requests in "
            f"{co['batches']} kernel calls "
            f"(largest batch {co['max_batch']})"
        )
    print(f"total events observed by clients: {sum(totals)}")


if __name__ == "__main__":
    asyncio.run(main())
