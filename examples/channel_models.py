"""Channel models: the same deployment under four different channels.

Builds one connected uniform deployment, swaps the channel model under
it with ``Network.with_channel`` — same coordinates, same communication
graph, different reception — and compares broadcast cost across the
battery through the batched sweep engine.  The 5-minute tour of
DESIGN.md §2.1.

Run:  PYTHONPATH=src python examples/channel_models.py
"""

import numpy as np

from repro import deploy
from repro.analysis.tables import render_table
from repro.core import ProtocolConstants
from repro.fastsim import run_sweep
from repro.sinr import (
    DualSlope,
    LogNormalShadowing,
    ObstacleMask,
    UniformPower,
    rectangle,
)


def main() -> None:
    rng = np.random.default_rng(7)
    net = deploy.uniform_square(n=48, side=2.2, rng=rng)
    wall = rectangle(1.0, 0.4, 1.2, 1.8)  # gaps above and below

    channels = [
        ("uniform power (paper Eq. 1)", UniformPower()),
        ("log-normal shadowing 3 dB", LogNormalShadowing(3.0, seed=1)),
        ("dual-slope breakpoint 1.0", DualSlope(breakpoint=1.0)),
        ("obstacle wall -10 dB", ObstacleMask([wall], attenuation_db=10.0)),
    ]

    constants = ProtocolConstants.practical()
    rows = []
    for label, channel in channels:
        member = net.with_channel(channel)
        sweep = run_sweep(
            "spont_broadcast", member, 8, seed=2014,
            constants=constants, source=0,
        )
        rows.append(
            [
                label,
                f"{sweep.mean_rounds():.1f}",
                f"{sweep.success_rate():.2f}",
                member.fingerprint()[:12],
            ]
        )

    print(
        f"deployment: n={net.size}, diameter D={net.diameter} "
        f"(graph identical across channels)"
    )
    print()
    print(
        render_table(
            ["channel", "mean rounds", "success", "fingerprint[:12]"],
            rows,
        )
    )
    print()
    print(
        "The communication graph never changes — only reception does.\n"
        "Distinct fingerprints keep the grid cache and shared-memory\n"
        "registry from ever replaying one channel's results as another's."
    )


if __name__ == "__main__":
    main()
