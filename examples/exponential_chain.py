"""The footnote-2 instance: exponentially shrinking gaps.

The paper's motivating hard case (footnote 2): stations on a line with
``dist(x_i, x_{i+1}) = 1/2^i``, making the granularity ``Rs`` exponential
in ``n``.  Granularity-dependent algorithms (Daum et al. [5],
``O(D log n log^(alpha+1) Rs)``) degrade with ``Rs``; the paper's
algorithms do not even have ``Rs`` in their bound.

This example measures SBroadcast on chains of growing granularity and
prints the measured rounds next to the [5] bound formula.

Run:  python examples/exponential_chain.py
"""

import numpy as np

from repro import deploy
from repro.analysis.fitting import daum_bound, growth_exponent
from repro.analysis.tables import render_table
from repro.core import ProtocolConstants
from repro.fastsim import fast_spont_broadcast


def main() -> None:
    constants = ProtocolConstants.practical()
    rows = []
    rs_values, measured = [], []
    for span in (2e-2, 2e-4, 2e-6, 2e-8):
        # Chains of dense clusters: granularity = hop / intra-cluster gap.
        net = deploy.clustered_chain(
            12, 8, span, hop=0.55, rng=np.random.default_rng(5)
        )
        rs = net.granularity
        rounds = []
        for seed in range(5):
            out = fast_spont_broadcast(
                net, 0, constants, np.random.default_rng(seed)
            )
            assert out.success
            rounds.append(out.completion_round)
        mean_rounds = float(np.mean(rounds))
        rs_values.append(rs)
        measured.append(mean_rounds)
        rows.append(
            [
                f"{rs:.1e}",
                f"{mean_rounds:.0f}",
                f"{daum_bound(net.diameter, net.size, rs, net.params.alpha):.1e}",
            ]
        )

    print("SBroadcast on cluster chains of growing granularity (n=96, D=11)")
    print()
    print(
        render_table(
            ["granularity Rs", "measured rounds (ours)", "[5] bound"],
            rows,
        )
    )
    slope = growth_exponent(rs_values, measured)
    print()
    print(
        f"log-log slope of measured rounds vs Rs: {slope:+.4f} "
        "(0 = granularity-independent, as the paper claims)"
    )

    # The literal footnote-2 chain, for flavour.
    chain = deploy.exponential_chain(24)
    out = fast_spont_broadcast(
        chain, 0, constants, np.random.default_rng(1)
    )
    print(
        f"\nfootnote-2 chain (n=24, Rs={chain.granularity:.1e}): "
        f"broadcast complete in {out.completion_round} rounds"
    )


if __name__ == "__main__":
    main()
