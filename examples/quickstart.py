"""Quickstart: broadcast a message over a random SINR network.

Builds a connected uniform deployment, runs the paper's two broadcast
algorithms plus a baseline, and prints what happened — the 60-second tour
of the library.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import deploy
from repro.analysis.tables import render_table
from repro.baselines import run_decay_broadcast
from repro.core import (
    ProtocolConstants,
    run_nospont_broadcast,
    run_spont_broadcast,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Deploy 64 stations uniformly in a 3x3 square (SINR parameters
    #    default to the paper's normalization: range 1, alpha=3, beta=1).
    net = deploy.uniform_square(n=64, side=3.0, rng=rng)
    info = net.describe()
    print(
        f"network: n={info['n']}, diameter D={info['diameter']}, "
        f"max degree={info['max_degree']}, "
        f"granularity Rs={info['granularity']:.1f}"
    )

    # 2. Run the paper's algorithms and a classic baseline from station 0.
    constants = ProtocolConstants.practical()
    outcomes = [
        run_spont_broadcast(net, 0, constants, np.random.default_rng(1)),
        run_nospont_broadcast(net, 0, constants, np.random.default_rng(2)),
        run_decay_broadcast(net, 0, np.random.default_rng(3)),
    ]

    # 3. Report.
    rows = []
    for out in outcomes:
        rows.append(
            [
                out.algorithm,
                "yes" if out.success else "NO",
                out.completion_round,
                out.num_informed,
            ]
        )
    print()
    print(
        render_table(
            ["algorithm", "complete", "rounds to inform all", "informed"],
            rows,
        )
    )
    print()
    print(
        "SBroadcast pays one global coloring then ~log n rounds per hop;\n"
        "NoSBroadcast re-colors every phase (no spontaneous wake-up) and\n"
        "is ~log n slower — exactly the Theorem 1 vs Theorem 2 gap."
    )


if __name__ == "__main__":
    main()
