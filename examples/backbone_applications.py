"""The coloring as a communication backbone: wake-up, consensus, leader.

Sect. 5 of the paper builds three applications on top of the
``StabilizeProbability`` coloring.  This example runs all of them on one
network and shows the coloring itself (the "backbone"): which stations
got which probability, and why that balances dense and sparse regions.

Run:  python examples/backbone_applications.py
"""

import numpy as np

from repro import deploy
from repro.analysis.tables import render_table
from repro.core import (
    ProtocolConstants,
    run_coloring,
    run_consensus,
    run_leader_election,
)
from repro.core.wakeup import run_adhoc_wakeup, run_colored_wakeup
from repro.sim.wakeup import WakeupSchedule


def main() -> None:
    rng = np.random.default_rng(3)
    constants = ProtocolConstants.practical()

    # A dumbbell: two dense blobs joined by a sparse relay path — the
    # stress case for density adaptation.
    net = deploy.dumbbell(14, 5, rng)
    print(f"dumbbell network: n={net.size}, D={net.diameter}")

    # --- the backbone coloring -------------------------------------------
    coloring = run_coloring(net, constants, rng)
    print(f"\ncoloring finished in {coloring.rounds} rounds; color census:")
    rows = []
    for color in coloring.distinct_colors():
        members = np.flatnonzero(coloring.color_mask(color))
        rows.append([f"{color:.4f}", len(members)])
    print(render_table(["color (probability)", "stations"], rows))
    print(
        "dense blobs quit early with small colors; the solitary bridge\n"
        "relays keep doubling and end at the survivor color — exactly the\n"
        "density adaptation Lemmas 1 + 2 formalize."
    )

    # --- ad hoc wake-up ---------------------------------------------------
    schedule = WakeupSchedule.staggered(
        net.size, spread=200, rng=rng, fraction=0.3
    )
    wake = run_adhoc_wakeup(net, schedule, constants, rng)
    print(
        f"\nad hoc wake-up: all awake {wake.extras['wakeup_time']} rounds "
        f"after the first spontaneous wake-up (success={wake.success})"
    )

    # --- wake-up with the established coloring ----------------------------
    base_colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
    colored = run_colored_wakeup(net, [0], base_colors, constants, rng)
    print(
        f"wake-up with established coloring: complete in "
        f"{colored.completion_round} rounds "
        f"(aux coloring {colored.extras['aux_coloring_rounds']} rounds)"
    )

    # --- consensus ---------------------------------------------------------
    values = rng.integers(0, 16, size=net.size).tolist()
    result = run_consensus(net, values, x_max=15, constants=constants,
                           rng=rng)
    print(
        f"consensus on min of {net.size} values in [0,15]: "
        f"decided {int(result.decided[0])} "
        f"(true min {min(values)}), agreed={result.agreed}, "
        f"{result.total_rounds} rounds over {result.bits} bit boxes"
    )

    # --- leader election ----------------------------------------------------
    leader = run_leader_election(net, constants, rng)
    print(
        f"leader election: station {leader.leader} won with id "
        f"{leader.agreed_id} (unique={leader.unique}, "
        f"{leader.total_rounds} rounds)"
    )


if __name__ == "__main__":
    main()
