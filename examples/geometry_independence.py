"""The paper's headline: geometry inside reachability balls is irrelevant.

Takes one random deployment, perturbs every station inside its
reachability slack so the communication graph is *identical*, and shows
that broadcast cost does not move; then redraws the graph itself for
contrast.  This is experiment E12 in miniature with a narrated output.

Run:  python examples/geometry_independence.py
"""

import numpy as np

from repro import deploy
from repro.analysis.stats import aggregate_trials, relative_spread
from repro.analysis.tables import render_table
from repro.core import ProtocolConstants
from repro.fastsim import fast_spont_broadcast


def mean_rounds(net, constants, trials=6):
    rounds = []
    for seed in range(trials):
        out = fast_spont_broadcast(
            net, 0, constants, np.random.default_rng(seed)
        )
        assert out.success
        rounds.append(out.completion_round)
    return aggregate_trials(rounds)


def main() -> None:
    rng = np.random.default_rng(11)
    constants = ProtocolConstants.practical()

    base = deploy.uniform_square(n=96, side=3.0, rng=rng)
    print(
        f"base network: n={base.size}, D={base.diameter}, "
        f"|E|={base.graph.number_of_edges()}"
    )

    family = deploy.same_graph_family(base, [0.02, 0.05, 0.08], rng)
    rows, means = [], []
    for i, member in enumerate(family):
        label = "base" if i == 0 else f"perturbed (scale {[0.02,0.05,0.08][i-1]})"
        stats = mean_rounds(member, constants)
        means.append(stats.mean)
        moved = np.linalg.norm(member.coords - base.coords, axis=1).max()
        rows.append([label, f"{moved:.3f}", f"{stats.mean:.1f}"])
    print()
    print(
        render_table(
            ["deployment", "max displacement", "mean broadcast rounds"],
            rows,
        )
    )
    print(
        f"\nspread across the same-graph family: "
        f"{100 * relative_spread(means):.1f}% — sampling noise."
    )

    # Contrast: different communication graphs of identical size/density.
    control = []
    for k in range(3):
        other = deploy.uniform_square(
            n=96, side=3.0, rng=np.random.default_rng(100 + k)
        )
        control.append(mean_rounds(other, constants).mean)
    print(
        f"spread once the GRAPH itself changes (3 fresh draws): "
        f"{100 * relative_spread(means + control):.1f}% — the graph, not "
        "the geometry, carries the cost."
    )


if __name__ == "__main__":
    main()
