"""Local broadcast on top of the coloring (extension).

The paper positions its coloring as "of independent interest and potential
applicability to other communication tasks" (abstract) and discusses the
*local broadcast* problem — every station must deliver its own message to
all its communication-graph neighbours — as the classic building block
([9], [11]).  This module implements exactly that application: after
``StabilizeProbability``, every station transmits its own message with its
color-scaled probability; Lemma 1 keeps per-round interference bounded and
Lemma 2 guarantees every neighbourhood keeps hearing *someone*, so each
station drains its neighbour list at a steady rate.

Unlike global broadcast (one shared message), local broadcast must deliver
``deg(v)`` distinct messages into each station, so its time has an
unavoidable ``Delta`` factor; the point of the coloring is to avoid paying
more than ``O((Delta + log n) log n)``-style costs without knowing the
density — the same adaptivity the global algorithms exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.constants import ProtocolConstants, log2ceil
from repro.errors import ProtocolError
from repro.fastsim.coloring import fast_coloring
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception


@dataclass
class LocalBroadcastResult:
    """Outcome of a local-broadcast run.

    :param success: every station heard every neighbour's message.
    :param completion_round: round at which the last missing (neighbour →
        station) delivery happened (``-1`` if incomplete).
    :param total_rounds: rounds executed (coloring + dissemination).
    :param deliveries: boolean matrix; ``deliveries[v, u]`` is True when
        ``u`` has received ``v``'s message.
    :param coloring_rounds: rounds spent in ``StabilizeProbability``.
    """

    success: bool
    completion_round: int
    total_rounds: int
    deliveries: np.ndarray
    coloring_rounds: int

    def missing_pairs(self) -> list[tuple[int, int]]:
        """(sender, receiver) neighbour pairs still undelivered."""
        senders, receivers = np.nonzero(~self.deliveries)
        return list(zip(senders.tolist(), receivers.tolist()))


def run_local_broadcast(
    network: Network,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 24,
) -> LocalBroadcastResult:
    """Deliver every station's message to all its neighbours.

    :param round_budget: dissemination budget after the coloring; default
        ``budget_scale * (Delta + log n) * log n`` — the shape the paper
        quotes for local-broadcast costs (Sect. 1.2).
    :returns: per-pair delivery matrix and completion statistics.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    if n < 1:
        raise ProtocolError("local broadcast needs at least one station")

    coloring = fast_coloring(network, constants, rng)
    colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
    logn = log2ceil(n)
    probs = np.minimum(1.0, colors * constants.dissemination / logn)

    # Deliveries required: adjacency of the communication graph.
    adjacency = network.distances <= network.params.comm_radius
    np.fill_diagonal(adjacency, False)
    deliveries = np.zeros((n, n), dtype=bool)
    # Pairs that are not neighbours count as trivially done.
    pending = int(adjacency.sum())

    if round_budget is None:
        delta = max(1, network.max_degree)
        round_budget = budget_scale * (delta + logn) * logn

    gains = network.gains
    noise = network.params.noise
    beta = network.params.beta
    completion = -1
    round_no = coloring.rounds
    end = round_no + round_budget
    while pending > 0 and round_no < end:
        tx = np.flatnonzero(rng.random(n) < probs)
        if tx.size:
            heard_from = resolve_reception(
                gains, tx, noise, beta, kernel=network.kernel_kind
            )
            receivers = np.flatnonzero(heard_from != NO_SENDER)
            for u in receivers:
                v = int(heard_from[u])
                if adjacency[v, u] and not deliveries[v, u]:
                    deliveries[v, u] = True
                    pending -= 1
                    completion = round_no
        round_no += 1

    # Report deliveries over neighbour pairs only (non-pairs are True).
    deliveries_full = deliveries | ~adjacency
    np.fill_diagonal(deliveries_full, True)
    return LocalBroadcastResult(
        success=pending == 0,
        completion_round=completion if pending == 0 else -1,
        total_rounds=round_no,
        deliveries=deliveries_full,
        coloring_rounds=coloring.rounds,
    )
