"""The paper's contribution: coloring, broadcast, and applications.

* :mod:`repro.core.constants` — the protocol constants, both the paper's
  theoretical formulas and the calibrated practical values simulations use.
* :mod:`repro.core.coloring` — ``StabilizeProbability`` (Algorithm 1) with
  its ``DensityTest`` and ``Playoff`` subroutines.
* :mod:`repro.core.properties` — verifiers for Lemma 1 and Lemma 2.
* :mod:`repro.core.broadcast_nospont` — ``NoSBroadcast`` (Theorem 1).
* :mod:`repro.core.broadcast_spont` — ``SBroadcast`` (Theorem 2).
* :mod:`repro.core.wakeup`, :mod:`repro.core.consensus`,
  :mod:`repro.core.leader_election` — the Sect. 5 applications.
"""

from repro.core.constants import ProtocolConstants, ColoringSchedule
from repro.core.coloring import (
    ColoringNode,
    ColoringResult,
    run_coloring,
    FINAL_COLOR_LEVEL,
)
from repro.core.properties import (
    lemma1_max_color_mass,
    lemma2_min_best_mass,
    coloring_report,
)
from repro.core.broadcast_nospont import NoSBroadcastNode, run_nospont_broadcast
from repro.core.broadcast_spont import SBroadcastNode, run_spont_broadcast
from repro.core.wakeup import run_adhoc_wakeup, run_colored_wakeup
from repro.core.consensus import run_consensus
from repro.core.leader_election import run_leader_election
from repro.core.local_broadcast import LocalBroadcastResult, run_local_broadcast

__all__ = [
    "ProtocolConstants",
    "ColoringSchedule",
    "ColoringNode",
    "ColoringResult",
    "run_coloring",
    "FINAL_COLOR_LEVEL",
    "lemma1_max_color_mass",
    "lemma2_min_best_mass",
    "coloring_report",
    "NoSBroadcastNode",
    "run_nospont_broadcast",
    "SBroadcastNode",
    "run_spont_broadcast",
    "run_adhoc_wakeup",
    "run_colored_wakeup",
    "run_consensus",
    "run_leader_election",
    "run_local_broadcast",
    "LocalBroadcastResult",
]
