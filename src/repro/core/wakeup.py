"""Wake-up protocols (paper Sect. 5).

Two variants:

* **Ad hoc wake-up** (:func:`run_adhoc_wakeup`) — an adversary wakes
  stations spontaneously at arbitrary rounds; woken stations run the
  broadcast machinery treating the wake-up signal as a (shared) source
  message.  All stations are awake ``O(D log^2 n)`` rounds after the first
  spontaneous wake-up.  All stations share a global clock (the paper's
  Sect. 5 assumption), so a woken station joins the phase structure at the
  next *phase* boundary; the paper aligns to multiples of the full
  broadcast duration ``T``, which costs at most one extra ``T`` — joining
  at phase boundaries is the same mechanism at finer alignment and
  preserves the ``O(D log^2 n)`` bound (all wake-up messages are
  identical, so mid-execution joins are harmless).

* **Wake-up with established coloring** (:func:`run_colored_wakeup`) —
  stations already hold backbone colors ``p_v`` (Lemmas 1–2); the
  spontaneously woken stations compute an auxiliary coloring ``q_v`` among
  themselves and the message is then disseminated with colors
  ``p_v + q_v`` in ``O(D log n + log^2 n)`` rounds.  This is the building
  block of consensus and leader election.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.coloring import ColoringCore, run_coloring
from repro.core.constants import ColoringSchedule, ProtocolConstants, log2ceil
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.messages import Reception
from repro.sim.node import NodeAlgorithm
from repro.sim.wakeup import WakeupSchedule

WAKE_PAYLOAD = "wake-up"


class AdhocWakeupNode(NodeAlgorithm):
    """NoSBroadcast-style node whose sources appear adversarially.

    A station is *holding* the wake-up message once it either wakes
    spontaneously or hears the message; holders join the phase structure
    at the next phase boundary and then behave exactly like active
    ``NoSBroadcast`` stations (coloring part + dissemination part).
    """

    def __init__(
        self,
        index: int,
        schedule: ColoringSchedule,
        wake_round: Optional[int],
    ):
        super().__init__(index)
        self.schedule = schedule
        self.constants = schedule.constants
        self.n = schedule.n
        self.phase_len = self.constants.phase_rounds(self.n)
        self.coloring_len = schedule.total_rounds
        self.wake_round = wake_round
        self.awake_round = NEVER_INFORMED
        self.active_from_phase: Optional[int] = None
        self.core = ColoringCore(schedule)
        self._core_phase = -1

    @property
    def awake(self) -> bool:
        """Whether this station has woken (spontaneously or by message)."""
        return self.awake_round != NEVER_INFORMED

    def _mark_awake(self, round_no: int) -> None:
        if not self.awake:
            self.awake_round = round_no
            phase = round_no // self.phase_len
            self.active_from_phase = phase + 1

    def _maybe_spontaneous(self, round_no: int) -> None:
        if self.wake_round is not None and round_no >= self.wake_round:
            self._mark_awake(max(self.wake_round, 0))

    def _active_in(self, phase: int) -> bool:
        return (
            self.active_from_phase is not None
            and phase >= self.active_from_phase
        )

    def _sync_core(self, phase: int) -> None:
        if self._core_phase != phase:
            self.core.reset()
            self._core_phase = phase

    def transmission(self, round_no: int) -> tuple[float, Any]:
        self._maybe_spontaneous(round_no)
        phase, offset = divmod(round_no, self.phase_len)
        if not self._active_in(phase):
            return 0.0, None
        self._sync_core(phase)
        if offset < self.coloring_len:
            prob = self.core.transmission_probability(offset)
        else:
            color = self.core.finished_color()
            prob = self.constants.dissemination_prob(color, self.n)
        return prob, WAKE_PAYLOAD

    def end_round(self, reception: Reception) -> None:
        if reception.heard:
            self._mark_awake(reception.round_no)
        phase, offset = divmod(reception.round_no, self.phase_len)
        if self._active_in(phase) and offset < self.coloring_len:
            self._sync_core(phase)
            self.core.observe(
                offset,
                heard=reception.heard,
                transmitted=reception.transmitted,
            )

    @property
    def finished(self) -> bool:
        return self.awake


def run_adhoc_wakeup(
    network: Network,
    schedule: WakeupSchedule,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
) -> BroadcastOutcome:
    """Run ad hoc wake-up under an adversarial schedule.

    :returns: a :class:`BroadcastOutcome` whose ``completion_round`` is the
        round at which the *last* station woke; the paper's running time is
        ``completion_round - schedule.first_wake``, exposed in ``extras``.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    if schedule.size != n:
        raise ProtocolError(
            f"wake schedule covers {schedule.size} stations, network has {n}"
        )
    coloring_schedule = ColoringSchedule(constants=constants, n=n)
    nodes = [
        AdhocWakeupNode(
            i,
            coloring_schedule,
            wake_round=(
                int(schedule.wake_rounds[i])
                if schedule.wake_rounds[i] >= 0
                else None
            ),
        )
        for i in range(n)
    ]
    if round_budget is None:
        depth = network.diameter if n > 1 else 0
        spread = int(np.max(schedule.wake_rounds))
        round_budget = (
            spread
            + constants.phase_rounds(n) * (2 * depth + budget_slack)
        )
    sim = Simulator(network, nodes, rng)
    result = sim.run(
        round_budget,
        stop=lambda s: all(node.finished for node in s.nodes),
        check_every=4,
    )
    awake = np.array([node.awake_round for node in nodes])
    success = bool(np.all(awake != NEVER_INFORMED))
    completion = int(awake.max()) if success else NEVER_INFORMED
    return BroadcastOutcome(
        success=success,
        completion_round=completion,
        total_rounds=result.rounds,
        informed_round=awake,
        algorithm="AdhocWakeup",
        extras={
            "first_wake": schedule.first_wake,
            "wakeup_time": (
                completion - schedule.first_wake if success else -1
            ),
        },
    )


class ColoredDisseminationNode(NodeAlgorithm):
    """Dissemination with pre-established colors (``p_v + q_v``).

    Initiators hold the message from round 0 and every holder transmits
    with probability ``(p_v + q_v) * c / log n``; used as the second stage
    of wake-up-with-coloring and as the per-bit primitive of consensus.
    """

    def __init__(
        self,
        index: int,
        n: int,
        constants: ProtocolConstants,
        color: float,
        is_initiator: bool,
        payload: Any = WAKE_PAYLOAD,
    ):
        super().__init__(index)
        self.constants = constants
        self.n = n
        self.color = color
        self.payload = payload if is_initiator else None
        self.informed_round = 0 if is_initiator else NEVER_INFORMED

    @property
    def informed(self) -> bool:
        """Whether this node has received the wake-up message yet."""
        return self.informed_round != NEVER_INFORMED

    def transmission(self, round_no: int) -> tuple[float, Any]:
        if not self.informed:
            return 0.0, None
        return (
            self.constants.dissemination_prob(self.color, self.n),
            self.payload,
        )

    def end_round(self, reception: Reception) -> None:
        if reception.heard and not self.informed:
            self.informed_round = reception.round_no
            self.payload = reception.message.payload

    @property
    def finished(self) -> bool:
        return self.informed


def run_colored_wakeup(
    network: Network,
    initiators: Sequence[int],
    base_colors: np.ndarray,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    payload: Any = WAKE_PAYLOAD,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    refresh_coloring: bool = True,
) -> BroadcastOutcome:
    """Wake-up with established coloring (Sect. 5).

    :param initiators: spontaneously woken stations (message holders).
    :param base_colors: backbone colors ``p_v`` from a previous
        ``StabilizeProbability`` run over all stations.
    :param refresh_coloring: run the auxiliary coloring ``q_v`` among the
        initiators (the paper's first stage); with ``False`` only the base
        colors are used — the ablation experiments toggle this.
    :returns: outcome over *all* stations; round counts include the
        auxiliary coloring stage when enabled.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    initiators = sorted(set(int(i) for i in initiators))
    if not initiators:
        raise ProtocolError("colored wake-up needs at least one initiator")
    if not all(0 <= i < n for i in initiators):
        raise ProtocolError("initiator index outside station range")
    base_colors = np.asarray(base_colors, dtype=float)
    if base_colors.shape != (n,):
        raise ProtocolError(
            f"base_colors must have shape ({n},), got {base_colors.shape}"
        )

    aux_rounds = 0
    q_colors = np.zeros(n)
    if refresh_coloring:
        aux = run_coloring(network, constants, rng, participants=initiators)
        aux_rounds = aux.rounds
        q_colors = np.where(np.isnan(aux.colors), 0.0, aux.colors)

    combined = base_colors + q_colors
    nodes = [
        ColoredDisseminationNode(
            i, n, constants, float(combined[i]), i in set(initiators),
            payload=payload,
        )
        for i in range(n)
    ]
    if round_budget is None:
        depth = network.diameter if n > 1 else 0
        logn = log2ceil(n)
        round_budget = budget_scale * (depth * logn + logn * logn)
    sim = Simulator(network, nodes, rng)
    result = sim.run(
        round_budget,
        stop=lambda s: all(node.finished for node in s.nodes),
        check_every=4,
    )
    informed = np.array([node.informed_round for node in nodes])
    # Shift by the auxiliary-coloring stage so reported rounds are end-to-end.
    reported = np.where(
        informed >= 0, informed + aux_rounds, NEVER_INFORMED
    )
    success = bool(np.all(reported != NEVER_INFORMED))
    completion = int(reported.max()) if success else NEVER_INFORMED
    return BroadcastOutcome(
        success=success,
        completion_round=completion,
        total_rounds=result.rounds + aux_rounds,
        informed_round=reported,
        algorithm="ColoredWakeup",
        extras={"aux_coloring_rounds": aux_rounds},
    )
