"""Leader election (paper Sect. 5).

All stations start simultaneously, draw IDs independently and uniformly
from ``{1, ..., n^3}`` (unique whp by a birthday bound), and run consensus
on the IDs; the station holding the agreed (minimum) ID is the leader.
Total time ``O(D log^2 n + log^3 n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.consensus import run_consensus
from repro.core.constants import ProtocolConstants
from repro.errors import ProtocolError
from repro.network.network import Network


@dataclass
class LeaderElectionResult:
    """Outcome of a leader-election run.

    :param leader: index of the elected station, or ``-1`` if the run
        failed (no agreement / no station holds the agreed ID).
    :param ids: the random IDs drawn by the stations.
    :param agreed_id: the ID all stations agreed on.
    :param unique: exactly one station holds the agreed ID.
    :param total_rounds: end-to-end rounds.
    """

    leader: int
    ids: np.ndarray
    agreed_id: int
    unique: bool
    total_rounds: int

    @property
    def success(self) -> bool:
        """Whether a unique leader was elected."""
        return self.leader >= 0 and self.unique


def run_leader_election(
    network: Network,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    box_budget: Optional[int] = None,
) -> LeaderElectionResult:
    """Elect a unique leader whp.

    IDs are drawn from ``{1..n^3}``; the consensus message space is
    ``x = n^3`` so the protocol runs ``ceil(log2(n^3 + 1)) ~ 3 log n``
    bit boxes — the source of the ``log^3 n`` additive term.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    if n < 1:
        raise ProtocolError("leader election needs at least one station")
    id_space = max(2, n ** 3)
    ids = rng.integers(1, id_space + 1, size=n)
    result = run_consensus(
        network,
        ids.tolist(),
        x_max=id_space,
        constants=constants,
        rng=rng,
        box_budget=box_budget,
    )
    agreed = int(result.decided[0]) if result.agreed else -1
    holders = np.flatnonzero(ids == agreed) if agreed >= 0 else np.array([])
    leader = int(holders[0]) if holders.size == 1 else -1
    return LeaderElectionResult(
        leader=leader,
        ids=ids,
        agreed_id=agreed,
        unique=holders.size == 1,
        total_rounds=result.total_rounds,
    )
