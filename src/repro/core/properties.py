"""Verifiers for the coloring properties (Lemma 1 and Lemma 2).

Lemma 1 (upper density): after ``StabilizeProbability``, for every color
``p`` and every unit ball ``B``, the mass ``sum_{w in B, p_w = p} p_w`` is
below a constant ``C1``.

Lemma 2 (lower density): for every participant ``v`` there is a color
whose mass inside ``B(v, eps/2)`` is at least a constant ``C2``.

Over a finite station set we evaluate station-centered balls (see
:func:`repro.geometry.balls.max_ball_mass` for the convention); the
experiments report the resulting extremal masses so the "constant,
independent of n" claims become measurable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coloring import ColoringResult
from repro.errors import AnalysisError
from repro.network.network import Network


def _check(network: Network, result: ColoringResult) -> None:
    if len(result.colors) != network.size:
        raise AnalysisError(
            f"coloring covers {len(result.colors)} stations, network has "
            f"{network.size}"
        )
    if not result.participants.any():
        raise AnalysisError("coloring has no participants")


def lemma1_max_color_mass(
    network: Network,
    result: ColoringResult,
    radius: float = 1.0,
) -> float:
    """Extremal per-color ball mass (Lemma 1's bounded quantity).

    :returns: ``max_{color p} max_{station v} sum_{w in B(v, radius),
        p_w = p} p_w`` — Lemma 1 asserts this stays below a constant
        independent of ``n`` and of the geometry.
    """
    _check(network, result)
    dist = network.distances
    worst = 0.0
    for color in result.distinct_colors():
        mask = result.color_mask(color)
        members = np.flatnonzero(mask)
        if members.size == 0:
            continue
        weights = np.where(mask, result.colors, 0.0)
        # Mass of a ball only changes at member stations; centering at
        # every station covers all extremal station-centered balls.
        for v in range(network.size):
            in_ball = dist[v] <= radius
            mass = float(np.sum(weights[in_ball & mask]))
            worst = max(worst, mass)
    return worst


def lemma2_best_masses(
    network: Network,
    result: ColoringResult,
    radius: float | None = None,
) -> np.ndarray:
    """Per-participant best-color local mass (Lemma 2's quantity).

    :param radius: proximity radius; default ``eps/2`` as in the lemma.
    :returns: for each participant ``v`` (in index order),
        ``max_{color p} sum_{w in B(v, radius), p_w = p} p_w``.
    """
    _check(network, result)
    if radius is None:
        radius = network.params.eps / 2.0
    dist = network.distances
    colors = result.colors
    participants = np.flatnonzero(result.participants)
    distinct = result.distinct_colors()
    best_masses = []
    for v in participants:
        in_ball = dist[v] <= radius
        best = 0.0
        for color in distinct:
            mask = result.color_mask(color) & in_ball
            best = max(best, float(np.sum(colors[mask])))
        best_masses.append(best)
    return np.asarray(best_masses)


def lemma2_min_best_mass(
    network: Network,
    result: ColoringResult,
    radius: float | None = None,
) -> float:
    """Extremal best-color local mass (Lemma 2's bounded quantity).

    :returns: ``min_{participant v} max_{color p} sum_{w in B(v, radius),
        p_w = p} p_w`` — Lemma 2 asserts this stays above a constant.
    """
    return float(lemma2_best_masses(network, result, radius).min())


@dataclass(frozen=True)
class ColoringReport:
    """Aggregate quality metrics of a coloring (used by E2/E3)."""

    n: int
    num_participants: int
    num_colors_used: int
    num_colors_available: int
    rounds: int
    lemma1_mass: float
    lemma2_mass: float
    all_colors_mass: float


def coloring_report(
    network: Network, result: ColoringResult
) -> ColoringReport:
    """Compute the full property report for one coloring."""
    _check(network, result)
    dist = network.distances
    participants = result.participants
    weights = np.where(participants, result.colors, 0.0)
    all_mass = 0.0
    for v in range(network.size):
        in_ball = dist[v] <= 1.0
        all_mass = max(all_mass, float(np.sum(weights[in_ball & participants])))
    return ColoringReport(
        n=network.size,
        num_participants=int(participants.sum()),
        num_colors_used=len(result.distinct_colors()),
        num_colors_available=result.schedule.constants.num_colors(network.size),
        rounds=result.rounds,
        lemma1_mass=lemma1_max_color_mass(network, result),
        lemma2_mass=lemma2_min_best_mass(network, result),
        all_colors_mass=all_mass,
    )
