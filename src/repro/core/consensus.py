"""Bitwise min-consensus (paper Sect. 5).

Stations hold values from ``{0, ..., x}`` and must all agree on the
lexicographically smallest (as ``ceil(log2(x+1))``-bit strings, i.e. the
minimum value).  The protocol:

1. one global ``StabilizeProbability`` establishes backbone colors;
2. for each bit position (most significant first), stations whose value
   matches the agreed prefix extended by ``0`` *initiate* a bounded-time
   wake-up with established coloring; every station that hears (or
   initiates) the signal within the time box records bit ``0``, silence
   records bit ``1``.

A round of wake-up succeeds network-wide whp, so all stations append the
same bit and agreement follows by induction; total time is
``O(D log n log x + log^2 n log x)``.

Each engine execution is one time-boxed signal; between boxes stations
carry only their own local state (their value and the prefix they
learned), so the composition is still a distributed protocol — the driver
merely sequences the time boxes, which the shared global clock (Sect. 5
assumption) lets real stations do on their own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.coloring import run_coloring
from repro.core.constants import ProtocolConstants, log2ceil
from repro.core.wakeup import run_colored_wakeup
from repro.errors import ProtocolError
from repro.network.network import Network


def bits_for_range(x_max: int) -> int:
    """Number of bits in the message space ``{0..x_max}``."""
    if x_max < 0:
        raise ProtocolError(f"x_max must be >= 0, got {x_max}")
    if x_max == 0:
        return 1
    return max(1, math.ceil(math.log2(x_max + 1)))


def value_bits(value: int, width: int) -> str:
    """MSB-first fixed-width binary representation."""
    if value < 0:
        raise ProtocolError(f"consensus values must be >= 0, got {value}")
    if value >= 2 ** width:
        raise ProtocolError(
            f"value {value} does not fit in {width} bits"
        )
    return format(value, f"0{width}b")


@dataclass
class ConsensusResult:
    """Outcome of one consensus execution.

    :param decided: per-station decided value.
    :param agreed: all stations decided the same value.
    :param correct: the common decision equals the true minimum.
    :param total_rounds: end-to-end rounds (backbone coloring + all boxes).
    :param rounds_per_bit: rounds consumed by each bit's time box.
    """

    decided: np.ndarray
    agreed: bool
    correct: bool
    total_rounds: int
    rounds_per_bit: list[int]
    bits: int


def run_consensus(
    network: Network,
    values: Sequence[int],
    x_max: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    box_budget: Optional[int] = None,
    budget_scale: int = 16,
) -> ConsensusResult:
    """Agree on the minimum of ``values`` over the network.

    :param values: per-station initial values in ``{0..x_max}``.
    :param box_budget: rounds per bit time box; defaults to the wake-up
        budget ``budget_scale * (D log n + log^2 n)`` — every box must use
        the *same* fixed length so silence is meaningful.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    values = [int(v) for v in values]
    if len(values) != n:
        raise ProtocolError(
            f"need one value per station: got {len(values)} for n={n}"
        )
    width = bits_for_range(x_max)
    strings = [value_bits(v, width) for v in values]

    backbone = run_coloring(network, constants, rng)
    base_colors = np.where(np.isnan(backbone.colors), 0.0, backbone.colors)
    total_rounds = backbone.rounds

    if box_budget is None:
        depth = network.diameter if n > 1 else 0
        logn = log2ceil(n)
        box_budget = budget_scale * (depth * logn + logn * logn)

    prefixes = [""] * n
    rounds_per_bit: list[int] = []
    for bit_pos in range(width):
        # Stations whose value extends the learned prefix with a 0 initiate.
        initiators = [
            v
            for v in range(n)
            if strings[v].startswith(prefixes[v] + "0")
        ]
        if initiators:
            outcome = run_colored_wakeup(
                network,
                initiators,
                base_colors,
                constants,
                rng,
                payload=("bit", bit_pos),
                round_budget=box_budget,
            )
            heard = outcome.informed_round >= 0
            box_rounds = outcome.total_rounds
        else:
            # Nobody transmits: the box is silent for its full length.
            heard = np.zeros(n, dtype=bool)
            box_rounds = box_budget + constants.coloring_total_rounds(n)
        rounds_per_bit.append(box_rounds)
        total_rounds += box_rounds
        for v in range(n):
            prefixes[v] += "0" if heard[v] else "1"

    decided = np.array([int(p, 2) for p in prefixes])
    agreed = bool(np.all(decided == decided[0]))
    correct = agreed and int(decided[0]) == min(values)
    return ConsensusResult(
        decided=decided,
        agreed=agreed,
        correct=correct,
        total_rounds=total_rounds,
        rounds_per_bit=rounds_per_bit,
        bits=width,
    )
