"""Shared result record for dissemination protocols.

Every broadcast-style run (the paper's two algorithms, the baselines, and
the wake-up variants) reports the same measurements, collected here so the
experiment harness can compare algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


#: Marker in ``informed_round`` for stations never informed.
NEVER_INFORMED: int = -1


@dataclass
class BroadcastOutcome:
    """Result of one dissemination run.

    :param success: every station was informed within the round budget.
    :param completion_round: round (0-based, inclusive) at which the last
        station became informed; meaningful only when ``success``.
    :param total_rounds: rounds actually executed by the simulator.
    :param informed_round: per-station round of first information
        (:data:`NEVER_INFORMED` if never), with the source at its wake
        round.
    :param algorithm: label for reports.
    :param extras: free-form per-algorithm measurements (e.g. number of
        phases, coloring rounds).
    """

    success: bool
    completion_round: int
    total_rounds: int
    informed_round: np.ndarray
    algorithm: str
    extras: dict = field(default_factory=dict)

    @property
    def num_informed(self) -> int:
        """How many stations were informed."""
        return int(np.sum(self.informed_round >= 0))

    def progress_curve(self) -> np.ndarray:
        """Cumulative informed count by round (length ``total_rounds+1``).

        ``curve[t]`` is the number of stations informed at or before round
        ``t``; useful for plotting/pipelining analysis.
        """
        n_rounds = self.total_rounds + 1
        curve = np.zeros(n_rounds, dtype=int)
        for r in self.informed_round:
            if 0 <= r < n_rounds:
                curve[int(r)] += 1
        return np.cumsum(curve)
