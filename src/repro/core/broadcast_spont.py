"""``SBroadcast`` — broadcast with spontaneous wake-up (Theorem 2).

With all stations awake from round 0, the expensive coloring runs *once*,
globally, as preprocessing (Sect. 4.2, with the tightened connectivity
slack ``eps'' = eps/3``); afterwards the message pays only ``O(log n)``
rounds per hop:

1. **Coloring stage** — every station executes ``StabilizeProbability``;
   the resulting colors act as a communication backbone.
2. **Pilot round** — the source transmits deterministically, alone, so its
   whole neighbourhood receives.
3. **Dissemination stage** — every informed station transmits the message
   with probability ``p_v * c / log n`` each round.

Per round, each frontier edge advances with probability ``Theta(1/log n)``
(Fact 11); a Chernoff bound over the ``D``-hop pipeline gives
``O(D log n + log^2 n)`` rounds total — the ``log^2 n`` term being the
one-off coloring cost.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.coloring import ColoringCore
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.messages import Reception
from repro.sim.node import NodeAlgorithm
from repro.sim.trace import TraceRecorder


class SBroadcastNode(NodeAlgorithm):
    """Per-station state machine of ``SBroadcast``."""

    def __init__(
        self,
        index: int,
        schedule: ColoringSchedule,
        source_payload: Any = None,
    ):
        super().__init__(index)
        self.schedule = schedule
        self.constants = schedule.constants
        self.n = schedule.n
        self.coloring_len = schedule.total_rounds
        self.is_source = source_payload is not None
        self.payload = source_payload
        self.informed_round = 0 if self.is_source else NEVER_INFORMED
        self.core = ColoringCore(schedule)

    @property
    def informed(self) -> bool:
        """Whether this node has received the message yet."""
        return self.informed_round != NEVER_INFORMED

    def transmission(self, round_no: int) -> tuple[float, Any]:
        if round_no < self.coloring_len:
            # Stage 1: global coloring; transmissions carry the source
            # message when the station has it (they always do at the
            # source), so stray receptions already spread information.
            return self.core.transmission_probability(round_no), self.payload
        if round_no == self.coloring_len:
            # Stage 2: the source's deterministic pilot transmission.
            return (1.0, self.payload) if self.is_source else (0.0, None)
        # Stage 3: informed stations gossip with color-scaled probability.
        if not self.informed:
            return 0.0, None
        color = self.core.finished_color()
        return (
            self.constants.dissemination_prob(color, self.n),
            self.payload,
        )

    def end_round(self, reception: Reception) -> None:
        if reception.round_no < self.coloring_len:
            self.core.observe(
                reception.round_no,
                heard=reception.heard,
                transmitted=reception.transmitted,
            )
        if reception.heard and not self.informed:
            payload = reception.message.payload
            if payload is not None:
                self.informed_round = reception.round_no
                self.payload = payload

    @property
    def finished(self) -> bool:
        return self.informed


def run_spont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    payload: Any = "broadcast-message",
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    tighten_eps: bool = True,
    trace: Optional[TraceRecorder] = None,
) -> BroadcastOutcome:
    """Run ``SBroadcast`` from ``source`` until everyone is informed.

    :param round_budget: hard budget; defaults to
        ``coloring + 1 + budget_scale * (ecc * log n + log^2 n)`` matching
        the ``O(D log n + log^2 n)`` bound with generous slack.
    :param tighten_eps: apply the paper's ``eps'' = eps/3`` adjustment to
        the coloring constants (Sect. 4.2).
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if tighten_eps:
        constants = constants.with_eps_prime()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    if not 0 <= source < n:
        raise ProtocolError(f"source {source} outside station range")
    if payload is None:
        raise ProtocolError("payload must be non-None (it marks the source)")
    schedule = ColoringSchedule(constants=constants, n=n)
    nodes = [
        SBroadcastNode(
            i, schedule, source_payload=payload if i == source else None
        )
        for i in range(n)
    ]
    if round_budget is None:
        from repro.core.constants import log2ceil

        depth = network.eccentricity(source) if n > 1 else 0
        logn = log2ceil(n)
        round_budget = (
            schedule.total_rounds
            + 1
            + budget_scale * (depth * logn + logn * logn)
        )
    sim = Simulator(network, nodes, rng, trace=trace)

    def everyone_informed(s: Simulator) -> bool:
        return all(node.finished for node in s.nodes)

    result = sim.run(round_budget, stop=everyone_informed, check_every=4)
    informed = np.array([node.informed_round for node in nodes])
    success = bool(np.all(informed != NEVER_INFORMED))
    completion = int(informed.max()) if success else NEVER_INFORMED
    colors = np.array([node.core.finished_color() for node in nodes])
    return BroadcastOutcome(
        success=success,
        completion_round=completion,
        total_rounds=result.rounds,
        informed_round=informed,
        algorithm="SBroadcast",
        extras={
            "coloring_rounds": schedule.total_rounds,
            "colors": colors,
            "dissemination_rounds": max(
                0, result.rounds - schedule.total_rounds - 1
            ),
        },
    )
