"""Protocol constants and the deterministic coloring schedule.

The paper leaves the constants ``c0, c1, c2, c3, c', c_eps, C1, C2,
p_start, p_max`` to the analysis (Sect. 3), where they are chosen to make
union bounds close — i.e. they are *proof artifacts*, far larger than any
simulation needs.  This module provides both:

* :meth:`ProtocolConstants.theoretical` — a faithful transcription of the
  paper's formulas (Fact 6, Proposition 1, Lemmas 5–7), used to document
  and unit-test the derivations; and
* :meth:`ProtocolConstants.practical` — small calibrated values with the
  *same asymptotic structure* (``Theta(log n)`` test lengths,
  ``Theta(1/n)`` start probability, a doubling ladder of ``O(log n)``
  colors), which make the algorithms run at simulation scale.  All
  experiments measure scaling, which the constants do not affect.

The *schedule* of ``StabilizeProbability`` is deterministic once ``n`` is
fixed: every station doubles its probability at the same global rounds, so
all active stations share the same ``p_v`` at all times and colors are
identified with *quit levels*.  :class:`ColoringSchedule` centralizes that
round arithmetic; the node state machines and the vectorized fastsim both
consume it, which keeps the two implementations in lockstep by
construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ProtocolError
from repro.sinr.params import SINRParameters


def log2ceil(n: int) -> int:
    """``max(1, ceil(log2 n))`` — the paper's ``log n`` round unit."""
    if n < 1:
        raise ProtocolError(f"log2ceil needs n >= 1, got {n}")
    if n == 1:
        return 1
    return max(1, math.ceil(math.log2(n)))


def converging_zeta(exponent: float, terms: int = 100000) -> float:
    """``sum_{i >= 1} i^-exponent`` for ``exponent > 1``.

    The paper's interference sums reduce to this series (it calls out the
    Riemann zeta connection in Claim 3); we evaluate it by direct summation
    plus an integral tail bound, which is accurate to ~1e-9 for the
    exponents in play (``alpha - gamma + 1 > 1``).
    """
    if exponent <= 1:
        raise ProtocolError(
            f"series sum_i i^-s diverges for s <= 1, got s={exponent}"
        )
    head = sum(i ** -exponent for i in range(1, terms + 1))
    # integral tail: sum_{i > T} i^-s <= T^(1-s) / (s - 1)
    tail = terms ** (1 - exponent) / (exponent - 1)
    return head + tail


@dataclass(frozen=True)
class ProtocolConstants:
    """Tunable constants of ``StabilizeProbability`` and the broadcasts.

    Field names map to the paper as follows:

    ==================== =====================================================
    field                paper symbol / role
    ==================== =====================================================
    ``start_scale``      ``p_start = start_scale / n`` (paper: ``C1 / (2n)``)
    ``pmax``             ``p_max`` — top of the probability ladder
    ``ceps``             ``c_eps`` — Playoff scale-up factor
    ``density_rounds``   ``c0`` — DensityTest lasts ``c0 log n`` rounds
    ``density_frac``     ``c1 / c0`` — success fraction for DensityTest=True
    ``playoff_rds``      ``c2`` — Playoff lasts ``c2 log n`` rounds
    ``playoff_frac``     ``c3 / c2`` — success fraction for Playoff=True
    ``repeats``          ``c'`` — DensityTest+Playoff repetitions per level
    ``dissemination``    ``c`` — part-2 probability is ``p_v * c / log n``
    ``part2_scale``      ``a`` — part 2 lasts ``a log^2 n`` rounds
    ==================== =====================================================

    **Playoff success semantics.** The paper counts a station's own
    transmissions as Playoff successes ("a station hears a message
    transmitted by itself", Lemma 6); its proof constants keep
    ``p_max * c_eps`` far below ``c3/c2`` (Sect. 3.4 forces
    ``C2' <= c3/(8 c2)``), so self-transmissions can never push a sparse
    station over the threshold.  At simulation scale the ladder must reach
    ``p_max * c_eps = Theta(1)`` within ``~log2 n`` doublings, which would
    let *any* station pass Playoff by merely transmitting — inverting the
    test's meaning.  The practical default therefore counts **receptions
    only** in Playoff (``playoff_counts_self = False``), preserving the
    paper's invariant (Playoff passes only where the *local* mass is
    large); set ``playoff_counts_self=True`` to restore the paper's exact
    bookkeeping (used by the calibration ablation and the theoretical
    constants, which satisfy the paper's constant inequalities).

    **Calibration of the defaults** (``tools/calibrate.py``; recorded in
    EXPERIMENTS.md).  The discriminating mechanism of ``Playoff`` is
    interference: scaled-up transmissions must bury receptions from
    outside the close neighbourhood while the capture effect (path loss
    ``alpha > gamma``) keeps genuinely close transmitters decodable.
    Measured on the SINR channel, receptions from beyond ~0.4 die once the
    expected number of simultaneous transmitters per unit ball exceeds ~6,
    which with unit-ball masses around ``C1/2 ~ 0.25`` requires
    ``ceps ~ 32``; ``pmax = 0.9/ceps`` keeps Playoff probabilities below
    1.  Test lengths of ``12 log n`` with thresholds of 18% / 22% push the
    probability that a *lonely* station passes both gates by Poisson noise
    below ~1e-3 per execution while dense cells pass within one or two
    levels — the practical analogue of the paper's whp calibration.
    """

    start_scale: float = 0.25
    pmax: float = 0.9 / 32.0
    ceps: float = 32.0
    density_rounds: float = 12.0
    density_frac: float = 0.18
    playoff_rds: float = 12.0
    playoff_frac: float = 0.22
    repeats: int = 2
    dissemination: float = 6.0
    part2_scale: float = 1.5
    playoff_counts_self: bool = False

    def __post_init__(self) -> None:
        if self.start_scale <= 0:
            raise ProtocolError("start_scale must be positive")
        if not 0 < self.pmax <= 0.5:
            raise ProtocolError(
                f"pmax must be in (0, 1/2] (Fact 4/5 need sums <= 1/2), "
                f"got {self.pmax}"
            )
        if self.ceps < 1:
            raise ProtocolError(f"ceps must be >= 1, got {self.ceps}")
        if self.pmax * self.ceps > 1.0:
            raise ProtocolError(
                f"pmax * ceps = {self.pmax * self.ceps} > 1: Playoff "
                "transmission probability would exceed 1"
            )
        if self.density_rounds <= 0 or self.playoff_rds <= 0:
            raise ProtocolError("test lengths must be positive")
        if not 0 < self.density_frac < 1 or not 0 < self.playoff_frac < 1:
            raise ProtocolError("test thresholds must be fractions in (0,1)")
        if self.repeats < 1:
            raise ProtocolError(f"repeats must be >= 1, got {self.repeats}")
        if self.dissemination <= 0 or self.part2_scale <= 0:
            raise ProtocolError("dissemination constants must be positive")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def practical(cls, **overrides) -> "ProtocolConstants":
        """Calibrated defaults used by all simulations (see module doc)."""
        return cls(**overrides)

    @classmethod
    def theoretical(
        cls,
        params: SINRParameters,
        gamma: float = 2.0,
    ) -> "ProtocolConstants":
        """Transcription of the paper's constant derivations.

        Follows Sect. 3 with the paper's own normalizations (the ``O``
        constant of the growth property set to 1, Sect. 2), ``z = 6`` and
        ``a = 2`` as fixed below Lemma 5/Claim 2:

        * ``q = 1 / (z^gamma 2^(alpha+4) beta sum_{i>=1} i^(gamma-alpha-1))``
          (end of Claim 4's proof);
        * ``C1 = N alpha / (6 C')`` with
          ``C' = (3/2)^alpha (beta) sum_{i>=1} i^(gamma-alpha-1)``
          (proof of Fact 6, using ``P = beta N``);
        * ``c1/c0 = C1 / (16 y)`` with ``y = chi(1, 1/6) = 6^gamma``
          (Proposition 1, where ``C1' = C1/(2y)`` and
          ``c1/c0 <= C1'/8``);
        * ``c3/c2 = q/16 * (1/4)^(a^gamma z^gamma q)`` (Lemma 6 sets
          ``2 c3/c2`` equal to the reception probability bound);
        * ``c_eps = 8 ln(4 c2/c3) / (eps^alpha C1 c_d)`` with
          ``c_d = 1/(16 y)`` (Sect. 3.4);
        * ``C2 = min(c3/(8 c2), C1 c_d / 2) / c_eps`` and
          ``p_max = C2`` (Sect. 3.4; the paper's ``p_max = C2'/c_eps``
          with ``C2' = C2 c_eps``).

        These values are astronomically conservative (that is the point of
        the exercise: they exist, they are constants, and they are
        enormous); they are exercised by unit tests and reported in
        EXPERIMENTS.md but never used to drive a simulation.
        """
        alpha, beta = params.alpha, params.beta
        eps = params.eps
        if alpha <= gamma:
            raise ProtocolError(
                f"the model requires alpha > gamma, got alpha={alpha}, "
                f"gamma={gamma}"
            )
        z, a = 6.0, 2.0
        zeta = converging_zeta(alpha - gamma + 1)
        q = 1.0 / (z ** gamma * 2 ** (alpha + 4) * beta * zeta)
        c_prime_interference = (1.5 ** alpha) * beta * zeta
        big_c1 = params.alpha * params.noise / (6 * c_prime_interference)
        big_c1 = min(big_c1, 0.5)
        y = math.ceil(6.0) ** gamma
        density_ratio = big_c1 / (16.0 * y)          # c1 / c0
        playoff_ratio = (q / 16.0) * 0.25 ** (a ** gamma * z ** gamma * q)
        cd = 1.0 / (16.0 * y)
        ceps = 8.0 * math.log(4.0 / playoff_ratio) / (
            eps ** alpha * big_c1 * cd
        )
        big_c2 = min(playoff_ratio / 8.0, big_c1 * cd / 2.0) / ceps
        # c' = chi(1, 4/3)-cover constant * C1 * ceps / q (proof of Lemma 3)
        chi_43 = math.ceil(4.0 / 3.0) ** gamma
        repeats = max(1, math.ceil(chi_43 * big_c1 * ceps / q))
        return cls(
            start_scale=big_c1 / 2.0,
            pmax=min(big_c2, 0.5 / ceps),
            ceps=ceps,
            density_rounds=4.0,
            density_frac=density_ratio,
            playoff_rds=4.0,
            playoff_frac=playoff_ratio,
            repeats=repeats,
            dissemination=big_c2 / 4.0,
            part2_scale=4.0,
            playoff_counts_self=True,
        )

    # ------------------------------------------------------------------
    # derived schedule quantities
    # ------------------------------------------------------------------
    def pstart(self, n: int) -> float:
        """Initial probability ``p_start = start_scale / n``."""
        if n < 1:
            raise ProtocolError(f"network size must be >= 1, got {n}")
        return min(self.start_scale / n, self.pmax)

    def num_levels(self, n: int) -> int:
        """Number of doubling levels (``while p_v < p_max`` iterations)."""
        p0 = self.pstart(n)
        if p0 >= self.pmax:
            return 1
        return max(1, math.ceil(math.log2(self.pmax / p0)))

    def num_colors(self, n: int) -> int:
        """Distinct colors: one per level plus the survivor color."""
        return self.num_levels(n) + 1

    def color_of_level(self, level: int, n: int) -> float:
        """The color (probability) assigned when quitting at ``level``."""
        if level < 0:
            raise ProtocolError(f"level must be >= 0, got {level}")
        return min(self.pstart(n) * 2.0 ** level, self.pmax)

    @property
    def survivor_color(self) -> float:
        """Color of stations that never quit: ``2 p_max`` (Algorithm 1)."""
        return 2.0 * self.pmax

    def density_test_rounds(self, n: int) -> int:
        """DensityTest length ``c0 log n``."""
        return max(1, round(self.density_rounds * log2ceil(n)))

    def playoff_rounds(self, n: int) -> int:
        """Playoff length ``c2 log n``."""
        return max(1, round(self.playoff_rds * log2ceil(n)))

    def density_threshold(self, n: int) -> int:
        """Successes needed for DensityTest=True (``c1 log n``)."""
        return max(1, math.ceil(self.density_frac * self.density_test_rounds(n)))

    def playoff_threshold(self, n: int) -> int:
        """Successes needed for Playoff=True (``c3 log n``)."""
        return max(1, math.ceil(self.playoff_frac * self.playoff_rounds(n)))

    def coloring_total_rounds(self, n: int) -> int:
        """Total rounds of one ``StabilizeProbability`` execution.

        ``levels * repeats * (densitytest + playoff)`` — ``O(log^2 n)``
        (Fact 7), and *deterministic*, which is what keeps all stations in
        lockstep.
        """
        block = self.density_test_rounds(n) + self.playoff_rounds(n)
        return self.num_levels(n) * self.repeats * block

    def dissemination_prob(self, color: float, n: int) -> float:
        """Part-2 transmission probability ``p_v * c / log n``."""
        if color < 0:
            raise ProtocolError(f"color must be >= 0, got {color}")
        return min(1.0, color * self.dissemination / log2ceil(n))

    def part2_rounds(self, n: int) -> int:
        """Length of a dissemination part: ``a log^2 n`` rounds."""
        return max(1, math.ceil(self.part2_scale * log2ceil(n) ** 2))

    def phase_rounds(self, n: int) -> int:
        """One NoSBroadcast phase: coloring + dissemination."""
        return self.coloring_total_rounds(n) + self.part2_rounds(n)

    def with_eps_prime(self) -> "ProtocolConstants":
        """Constants for the ``eps'' = eps/3`` variant used by SBroadcast.

        A smaller connectivity slack means Playoff must suppress longer
        links, which the paper achieves by enlarging ``c_eps``; the
        practical analogue bumps ``ceps`` while keeping ``pmax * ceps <= 1``.
        """
        new_ceps = min(self.ceps * 1.5, 1.0 / self.pmax)
        return replace(self, ceps=new_ceps)


@dataclass(frozen=True)
class ColoringSchedule:
    """Round arithmetic of one ``StabilizeProbability`` execution.

    Immutable and derived entirely from ``(constants, n)``; maps a round
    offset (rounds since the execution started) to its position in the
    level/repeat/test structure.  Both the per-node state machines and the
    vectorized fastsim use this class, so their phase boundaries cannot
    drift apart.
    """

    constants: ProtocolConstants
    n: int

    @property
    def density_len(self) -> int:
        """Rounds of one density test."""
        return self.constants.density_test_rounds(self.n)

    @property
    def playoff_len(self) -> int:
        """Rounds of one playoff test."""
        return self.constants.playoff_rounds(self.n)

    @property
    def block_len(self) -> int:
        """One DensityTest + Playoff block."""
        return self.density_len + self.playoff_len

    @property
    def level_len(self) -> int:
        """Rounds spent at one probability level (``c'`` blocks)."""
        return self.constants.repeats * self.block_len

    @property
    def levels(self) -> int:
        """Number of probability levels in the ladder."""
        return self.constants.num_levels(self.n)

    @property
    def total_rounds(self) -> int:
        """Length of one full coloring execution in rounds."""
        return self.levels * self.level_len

    def position(self, offset: int) -> tuple[int, int, str, int]:
        """Decompose a round offset.

        :returns: ``(level, block_in_level, part, round_in_part)`` where
            ``part`` is ``"density"`` or ``"playoff"``.
        :raises ProtocolError: if ``offset`` is outside the execution.
        """
        if not 0 <= offset < self.total_rounds:
            raise ProtocolError(
                f"offset {offset} outside coloring execution of "
                f"{self.total_rounds} rounds"
            )
        level, rest = divmod(offset, self.level_len)
        block, in_block = divmod(rest, self.block_len)
        if in_block < self.density_len:
            return level, block, "density", in_block
        return level, block, "playoff", in_block - self.density_len

    def level_probability(self, level: int) -> float:
        """The shared ``p_v`` of all active stations at ``level``."""
        return self.constants.color_of_level(level, self.n)

    def is_block_end(self, offset: int) -> bool:
        """Whether the round at ``offset`` closes a DensityTest+Playoff block."""
        return (offset + 1) % self.block_len == 0
