"""``NoSBroadcast`` — broadcast without spontaneous wake-up (Theorem 1).

The algorithm runs in phases of identical, globally known length.  Each
phase has two parts (Sect. 4.1):

1. **Coloring part** — the stations *active* in the phase (those that knew
   the source message at the phase boundary) execute
   ``StabilizeProbability``, obtaining fresh colors ``p_v``.
2. **Dissemination part** — for ``Theta(log^2 n)`` rounds every active
   station transmits the source message with probability
   ``p_v * c / log n``.

Every transmission (in either part) carries the source message, so any
reception informs the receiver; newly informed stations join at the next
phase boundary — in the paper they synchronize via the round counter
attached to each message, which the synchronous engine models with its
global round number (DESIGN.md §4.2).  One phase pushes the message at
least one hop along every shortest path whp (Lemma 8), hence
``O(D)`` phases, i.e. ``O(D log^2 n)`` rounds in total.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.coloring import ColoringCore
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.messages import Reception
from repro.sim.node import NodeAlgorithm
from repro.sim.trace import TraceRecorder


class NoSBroadcastNode(NodeAlgorithm):
    """Per-station state machine of ``NoSBroadcast``.

    :param index: station index.
    :param schedule: coloring schedule shared by all stations.
    :param source_payload: non-``None`` exactly at the source, which is
        informed (and hence active in phase 0) from the start.
    """

    def __init__(
        self,
        index: int,
        schedule: ColoringSchedule,
        source_payload: Any = None,
    ):
        super().__init__(index)
        self.schedule = schedule
        self.constants = schedule.constants
        self.n = schedule.n
        self.phase_len = self.constants.phase_rounds(self.n)
        self.coloring_len = schedule.total_rounds
        self.is_source = source_payload is not None
        self.payload = source_payload
        self.informed_round = 0 if self.is_source else NEVER_INFORMED
        #: first phase in which this station is active; the source joins
        #: phase 0, others join the phase after they become informed.
        self.active_from_phase = 0 if self.is_source else None
        self.core = ColoringCore(schedule)
        self._core_phase = 0  # phase the core state belongs to

    # ------------------------------------------------------------------
    @property
    def informed(self) -> bool:
        """Whether this node has received the message yet."""
        return self.informed_round != NEVER_INFORMED

    def _phase_and_offset(self, round_no: int) -> tuple[int, int]:
        return divmod(round_no, self.phase_len)

    def _active_in(self, phase: int) -> bool:
        return (
            self.active_from_phase is not None
            and phase >= self.active_from_phase
        )

    def _sync_core(self, phase: int) -> None:
        """Each phase re-runs the coloring from scratch (fresh colors)."""
        if self._core_phase != phase:
            self.core.reset()
            self._core_phase = phase

    # ------------------------------------------------------------------
    def transmission(self, round_no: int) -> tuple[float, Any]:
        phase, offset = self._phase_and_offset(round_no)
        if not self._active_in(phase):
            return 0.0, None
        self._sync_core(phase)
        if offset < self.coloring_len:
            prob = self.core.transmission_probability(offset)
        else:
            color = self.core.finished_color()
            prob = self.constants.dissemination_prob(color, self.n)
        return prob, self.payload

    def end_round(self, reception: Reception) -> None:
        if reception.heard and not self.informed:
            self.informed_round = reception.round_no
            self.payload = reception.message.payload
            phase, _ = self._phase_and_offset(reception.round_no)
            # Active from the next phase boundary (Sect. 4.1: "a node
            # participates in the phase if it knows the source message at
            # the beginning of the phase").
            self.active_from_phase = phase + 1
        phase, offset = self._phase_and_offset(reception.round_no)
        if self._active_in(phase) and offset < self.coloring_len:
            self._sync_core(phase)
            self.core.observe(
                offset,
                heard=reception.heard,
                transmitted=reception.transmitted,
            )

    @property
    def finished(self) -> bool:
        return self.informed


def run_nospont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    payload: Any = "broadcast-message",
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    trace: Optional[TraceRecorder] = None,
) -> BroadcastOutcome:
    """Run ``NoSBroadcast`` from ``source`` until everyone is informed.

    :param round_budget: hard budget; defaults to
        ``phase_len * (2 * ecc(source) + budget_slack)`` — generous w.r.t.
        the ``O(D)``-phase guarantee.  The run stops as soon as every
        station is informed (the measurement of interest), or at the
        budget with ``success=False``.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    n = network.size
    if not 0 <= source < n:
        raise ProtocolError(f"source {source} outside station range")
    if payload is None:
        raise ProtocolError("payload must be non-None (it marks the source)")
    schedule = ColoringSchedule(constants=constants, n=n)
    nodes = [
        NoSBroadcastNode(
            i, schedule, source_payload=payload if i == source else None
        )
        for i in range(n)
    ]
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = constants.phase_rounds(n) * (2 * depth + budget_slack)
    sim = Simulator(network, nodes, rng, trace=trace)

    def everyone_informed(s: Simulator) -> bool:
        return all(node.finished for node in s.nodes)

    result = sim.run(round_budget, stop=everyone_informed, check_every=4)
    informed = np.array([node.informed_round for node in nodes])
    success = bool(np.all(informed != NEVER_INFORMED))
    completion = int(informed.max()) if success else NEVER_INFORMED
    return BroadcastOutcome(
        success=success,
        completion_round=completion,
        total_rounds=result.rounds,
        informed_round=informed,
        algorithm="NoSBroadcast",
        extras={
            "phase_rounds": constants.phase_rounds(n),
            "coloring_rounds": schedule.total_rounds,
            "phases_used": -(-result.rounds // constants.phase_rounds(n)),
        },
    )
