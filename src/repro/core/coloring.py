"""``StabilizeProbability`` — the paper's network-coloring procedure.

Algorithm 1 of the paper, structured exactly as the pseudo-code:

* every active station starts at ``p_v = p_start = Theta(1/n)``;
* at each probability level it runs ``c'`` blocks of ``DensityTest``
  (transmit with ``p_v`` for ``c0 log n`` rounds, count successes) followed
  by ``Playoff`` (transmit with ``p_v * c_eps`` for ``c2 log n`` rounds,
  count successes);
* a station whose block passes *both* tests quits with color ``p_v``;
* stations that survive all levels quit with color ``2 p_max``.

Two fidelity notes (also in DESIGN.md):

1. All stations are synchronized through the deterministic
   :class:`~repro.core.constants.ColoringSchedule`; both tests always run
   for their full length because lockstep stations cannot short-circuit
   the ``DensityTest(v) and Playoff(v)`` conjunction.
2. "Success" counts a station's own transmissions as well as receptions —
   the paper defines success in ``DensityTest`` as "successfully receives
   *or sends*" (Sect. 3.2) and notes for ``Playoff`` that "a station hears
   a message transmitted by itself" (proof of Lemma 6).

The :class:`ColoringCore` state machine is engine-agnostic (it consumes
round offsets and success booleans) so the same logic is embedded in the
standalone node, in ``NoSBroadcast`` phases, and in ``SBroadcast``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.sim.messages import Reception
from repro.sim.node import NodeAlgorithm

#: Quit-level value marking stations that survived the whole ladder and
#: received the final color ``2 p_max``.
FINAL_COLOR_LEVEL: int = -2

#: Quit-level value for stations that never participated.
NOT_PARTICIPATING: int = -3


class ColoringCore:
    """Engine-agnostic state machine for one station's coloring run.

    Drives the per-round decisions of Algorithm 1 given the round offset
    within the execution.  Embeddable: the broadcast protocols instantiate
    one core per coloring execution.
    """

    def __init__(self, schedule: ColoringSchedule):
        self.schedule = schedule
        self.reset()

    def reset(self) -> None:
        """Restart the state machine for a fresh execution."""
        self.quit_level: Optional[int] = None
        self._density_successes = 0
        self._playoff_successes = 0

    # ------------------------------------------------------------------
    @property
    def has_quit(self) -> bool:
        """Whether the station already quit with a color."""
        return self.quit_level is not None

    def finished_level(self) -> int:
        """Quit level after the execution ends (survivors get the marker)."""
        return self.quit_level if self.has_quit else FINAL_COLOR_LEVEL

    def finished_color(self) -> float:
        """The assigned color probability after the execution ends."""
        constants = self.schedule.constants
        if self.has_quit:
            return constants.color_of_level(self.quit_level, self.schedule.n)
        return constants.survivor_color

    # ------------------------------------------------------------------
    def transmission_probability(self, offset: int) -> float:
        """Probability for the round at ``offset`` (0 once quit)."""
        if self.has_quit:
            return 0.0
        level, _block, part, _r = self.schedule.position(offset)
        p_v = self.schedule.level_probability(level)
        if part == "density":
            return p_v
        return min(1.0, p_v * self.schedule.constants.ceps)

    def observe(self, offset: int, heard: bool, transmitted: bool) -> None:
        """Account one round's outcome; evaluate tests at block ends.

        DensityTest counts "receives or sends" (paper Sect. 3.2); Playoff
        counts receptions only by default — see the semantics note on
        :class:`~repro.core.constants.ProtocolConstants`.
        """
        if self.has_quit:
            return
        level, _block, part, _r = self.schedule.position(offset)
        if part == "density":
            if heard or transmitted:
                self._density_successes += 1
        else:
            counts_self = self.schedule.constants.playoff_counts_self
            if heard or (transmitted and counts_self):
                self._playoff_successes += 1
        if self.schedule.is_block_end(offset):
            self._evaluate_block(level)

    def _evaluate_block(self, level: int) -> None:
        constants = self.schedule.constants
        n = self.schedule.n
        density_true = (
            self._density_successes >= constants.density_threshold(n)
        )
        playoff_true = (
            self._playoff_successes >= constants.playoff_threshold(n)
        )
        if density_true and playoff_true:
            self.quit_level = level
        self._density_successes = 0
        self._playoff_successes = 0


class ColoringNode(NodeAlgorithm):
    """Standalone simulator node running ``StabilizeProbability``.

    :param index: station index.
    :param schedule: shared coloring schedule.
    :param participating: stations outside the active set stay silent but
        still observe the channel (they are "asleep" for the protocol).
    :param payload: attached to every transmission (the broadcast message
        in embedded uses; a diagnostic marker standalone).
    :param start_round: global round at which the execution begins.
    """

    def __init__(
        self,
        index: int,
        schedule: ColoringSchedule,
        participating: bool = True,
        payload: Any = None,
        start_round: int = 0,
    ):
        super().__init__(index)
        self.schedule = schedule
        self.participating = participating
        self.payload = payload
        self.start_round = start_round
        self.core = ColoringCore(schedule)

    def _offset(self, round_no: int) -> Optional[int]:
        offset = round_no - self.start_round
        if 0 <= offset < self.schedule.total_rounds:
            return offset
        return None

    def transmission(self, round_no: int) -> tuple[float, Any]:
        if not self.participating:
            return 0.0, None
        offset = self._offset(round_no)
        if offset is None:
            return 0.0, None
        return self.core.transmission_probability(offset), self.payload

    def end_round(self, reception: Reception) -> None:
        if not self.participating:
            return
        offset = self._offset(reception.round_no)
        if offset is None:
            return
        self.core.observe(
            offset, heard=reception.heard, transmitted=reception.transmitted
        )

    @property
    def finished(self) -> bool:
        return not self.participating or self.core.has_quit


@dataclass
class ColoringResult:
    """Outcome of one ``StabilizeProbability`` execution.

    :param colors: per-station color probability (``nan`` where the
        station did not participate).
    :param quit_levels: per-station quit level; :data:`FINAL_COLOR_LEVEL`
        for survivors, :data:`NOT_PARTICIPATING` for outsiders.
    :param rounds: rounds consumed (``schedule.total_rounds``).
    :param schedule: the schedule that produced the coloring.
    """

    colors: np.ndarray
    quit_levels: np.ndarray
    rounds: int
    schedule: ColoringSchedule

    @property
    def participants(self) -> np.ndarray:
        """Boolean mask of stations that took part."""
        return self.quit_levels != NOT_PARTICIPATING

    def distinct_colors(self) -> list[float]:
        """Sorted distinct colors actually assigned."""
        values = self.colors[self.participants]
        return sorted(set(float(v) for v in values))

    def color_mask(self, color: float) -> np.ndarray:
        """Participants holding exactly ``color`` (boolean mask)."""
        return self.participants & np.isclose(self.colors, color)


def run_coloring(
    network: Network,
    constants: ProtocolConstants,
    rng: np.random.Generator,
    participants: Optional[Sequence[int]] = None,
) -> ColoringResult:
    """Execute ``StabilizeProbability`` on (a subset of) a network.

    :param participants: station indices taking part; default all.  The
    effective ladder is always sized by the *known* network size ``n``
    (stations know ``n``, Sect. 1.1), even when fewer stations are active —
    exactly as in ``NoSBroadcast`` phases.
    """
    n = network.size
    schedule = ColoringSchedule(constants=constants, n=n)
    active = set(range(n)) if participants is None else set(participants)
    if not active:
        raise ProtocolError("coloring needs at least one participant")
    if not active.issubset(range(n)):
        raise ProtocolError("participants outside station range")
    nodes = [
        ColoringNode(
            i, schedule, participating=(i in active), payload=("color", i)
        )
        for i in range(n)
    ]
    sim = Simulator(network, nodes, rng)
    sim.run(schedule.total_rounds)
    colors = np.full(n, np.nan)
    quit_levels = np.full(n, NOT_PARTICIPATING, dtype=int)
    for i, node in enumerate(nodes):
        if node.participating:
            quit_levels[i] = node.core.finished_level()
            colors[i] = node.core.finished_color()
    return ColoringResult(
        colors=colors,
        quit_levels=quit_levels,
        rounds=schedule.total_rounds,
        schedule=schedule,
    )
