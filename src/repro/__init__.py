"""repro — SINR broadcast without geometry knowledge.

A production-quality reproduction of *"On the Impact of Geometry on Ad Hoc
Communication in Wireless Networks"* (Jurdzinski, Kowalski, Rozanski,
Stachowiak; PODC 2014): the ``StabilizeProbability`` network coloring, the
``NoSBroadcast`` / ``SBroadcast`` algorithms, the Sect. 5 applications
(wake-up, consensus, leader election), the baselines the paper compares
against, and an experiment harness validating every stated bound.

Quickstart::

    import numpy as np
    from repro import deploy, run_spont_broadcast

    rng = np.random.default_rng(7)
    net = deploy.uniform_square(n=128, side=3.0, rng=rng)
    outcome = run_spont_broadcast(net, source=0, rng=rng)
    print(outcome.success, outcome.completion_round)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro import baselines, deploy, geometry, network, sim, sinr
from repro.core import (
    ColoringNode,
    ColoringResult,
    NoSBroadcastNode,
    ProtocolConstants,
    SBroadcastNode,
    coloring_report,
    lemma1_max_color_mass,
    lemma2_min_best_mass,
    run_adhoc_wakeup,
    run_coloring,
    run_consensus,
    run_leader_election,
    run_nospont_broadcast,
    run_spont_broadcast,
)
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ReproError
from repro.network.network import Network
from repro.sinr.params import SINRParameters

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "deploy",
    "geometry",
    "network",
    "sim",
    "sinr",
    "Network",
    "SINRParameters",
    "ProtocolConstants",
    "ColoringNode",
    "ColoringResult",
    "NoSBroadcastNode",
    "SBroadcastNode",
    "BroadcastOutcome",
    "NEVER_INFORMED",
    "ReproError",
    "run_coloring",
    "coloring_report",
    "lemma1_max_color_mass",
    "lemma2_min_best_mass",
    "run_nospont_broadcast",
    "run_spont_broadcast",
    "run_adhoc_wakeup",
    "run_consensus",
    "run_leader_election",
    "__version__",
]
