"""Fairness and summary metrics for traffic results."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def jain_index(xs: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (k * sum x^2)``.

    Bounded in ``[1/k, 1]`` for ``k`` non-negative allocations with at
    least one positive entry: 1 when all allocations are equal, ``1/k``
    when one flow monopolizes the resource.  The degenerate all-zero
    allocation (no flow delivered anything — everyone is equally badly
    off) is defined as 1.0.
    """
    arr = np.asarray(list(xs), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    if (arr < 0).any():
        raise ValueError("Jain index is defined on non-negative values")
    total_sq = float((arr * arr).sum())
    if total_sq == 0.0:
        return 1.0
    return float(arr.sum()) ** 2 / (arr.size * total_sq)
