"""Per-flow queued multihop forwarding under a MAC (DESIGN.md §11.6).

One :func:`run_traffic` call plays ``rounds`` slots of a traffic
workload on one network: seeded arrival processes inject packets into
per-station FIFO queues, heads-of-line contend for the medium through a
:class:`~repro.mac.MacModel`, the SINR resolver decides which next hop
actually heard its predecessor, and an optional
:class:`~repro.mac.RateTable` lets high-margin slots carry several
packets.  Everything is deterministic given ``(network, flows, rounds,
rng, mac, rate_table)`` — arrivals are drawn up front in flow order with
fixed stream consumption, queues advance in station-index order, and MAC
arbitration is round-keyed — so a workload replays bit-for-bit across
``jobs=1`` / ``jobs=N`` grid execution and the service path.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.mac import MacModel, RateTable, SlottedAloha
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception, sinr_values
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.metrics import jain_index


@dataclass(frozen=True)
class Flow:
    """One unidirectional traffic demand: ``src`` to ``dst``.

    Packets follow the shortest path in ``Network.graph`` (ties broken
    by networkx's BFS order, deterministic for a fixed network); the
    arrival process decides how many packets enter ``src``'s queue each
    round.
    """

    src: int
    dst: int
    arrivals: ArrivalProcess

    def identity(self) -> tuple:
        """Hashable tuple of primitives pinning the flow."""
        return ("flow", self.src, self.dst, self.arrivals.identity())

    def fingerprint(self) -> str:
        """Content hash of :meth:`identity` (cache-key hook)."""
        return hashlib.sha256(repr(self.identity()).encode()).hexdigest()


@dataclass
class FlowStats:
    """Outcome counters of one flow after a :func:`run_traffic` run."""

    flow: Flow
    path: tuple
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    queued: int = 0
    collisions: int = 0
    latencies: list = field(default_factory=list)

    def throughput(self, rounds: int) -> float:
        """Delivered packets per round."""
        return self.delivered / rounds if rounds else 0.0

    def mean_latency(self) -> float:
        """Mean slots from injection to delivery (NaN if none arrived)."""
        return (
            float(np.mean(self.latencies)) if self.latencies else float("nan")
        )

    def conserved(self) -> bool:
        """Flow conservation: injected == delivered + queued + dropped."""
        return self.injected == self.delivered + self.queued + self.dropped


@dataclass
class TrafficResult:
    """Aggregate outcome of one :func:`run_traffic` workload run."""

    flows: list
    rounds: int
    transmissions: int
    collisions: int

    def throughputs(self) -> list:
        """Per-flow delivered packets per round, in flow order."""
        return [fs.throughput(self.rounds) for fs in self.flows]

    def jain(self) -> float:
        """Jain fairness index of the per-flow throughputs."""
        return jain_index(self.throughputs())

    def conservation_ok(self) -> bool:
        """Whether every flow's packets are fully accounted for."""
        return all(fs.conserved() for fs in self.flows)

    def delivered(self) -> int:
        """Total packets delivered across all flows."""
        return sum(fs.delivered for fs in self.flows)

    def mean_latency(self) -> float:
        """Mean delivery latency over all delivered packets (NaN if none)."""
        lats = [lat for fs in self.flows for lat in fs.latencies]
        return float(np.mean(lats)) if lats else float("nan")

    def collision_rate(self) -> float:
        """Fraction of transmissions that failed to reach their next hop."""
        return (
            self.collisions / self.transmissions if self.transmissions else 0.0
        )


def _flow_paths(network: Network, flows: Sequence[Flow]) -> list:
    """Shortest ``Network.graph`` path per flow (ProtocolError if none)."""
    import networkx as nx

    graph = network.graph
    paths = []
    for k, flow in enumerate(flows):
        n = network.size
        if not (0 <= flow.src < n and 0 <= flow.dst < n):
            raise ProtocolError(
                f"flow {k} endpoints ({flow.src}, {flow.dst}) outside "
                f"station range 0..{n - 1}"
            )
        if flow.src == flow.dst:
            raise ProtocolError(f"flow {k} has src == dst == {flow.src}")
        try:
            path = nx.shortest_path(graph, flow.src, flow.dst)
        except nx.NetworkXNoPath:
            raise ProtocolError(
                f"flow {k} ({flow.src} -> {flow.dst}) has no path in the "
                "communication graph"
            ) from None
        paths.append(tuple(int(v) for v in path))
    return paths


def run_traffic(
    network: Network,
    flows: Sequence[Flow],
    rounds: int,
    rng: np.random.Generator,
    *,
    mac: Optional[MacModel] = None,
    rate_table: Optional[RateTable] = None,
    queue_cap: int = 64,
) -> TrafficResult:
    """Play one seeded traffic workload and account every packet.

    Each slot: arrivals enter their flow's source queue (drops over
    ``queue_cap`` are counted, never silent); every station with a
    non-empty queue intends to transmit its head-of-line packet; the
    MAC filters intents into actual transmitters; the SINR resolver
    decides, per transmitter, whether its packet's next hop heard *it*
    (hearing anyone else is a failed slot for that packet — counted as
    a collision); delivered packets record their latency, forwarded
    packets join the next hop's queue at the end of the slot in
    transmitter-index order.  With a ``rate_table``, a successful slot
    carries up to ``rate_for(SINR at the next hop)`` consecutive
    head-of-line packets sharing that next hop.

    :param flows: traffic demands; packets follow each flow's shortest
        path, computed once on the initial network.
    :param rounds: number of slots to play.
    :param rng: arrival randomness — all flows' arrival streams are
        drawn from it up front, in flow order, with fixed per-flow
        stream consumption (DESIGN.md §11.6).
    :param mac: medium-access model (default :class:`~repro.mac.SlottedAloha`
        — every head-of-line packet contends every slot).
    :param rate_table: optional SINR-thresholded rate adaptation.
    :param queue_cap: per-station queue bound; arrivals and forwards
        beyond it are dropped (and counted against their flow).
    :returns: per-flow and aggregate accounting; see
        :class:`TrafficResult`.
    """
    if rounds < 1:
        raise ProtocolError(f"need at least one round, got {rounds}")
    if queue_cap < 1:
        raise ProtocolError(f"queue_cap must be >= 1, got {queue_cap}")
    if not flows:
        raise ProtocolError("need at least one flow")
    if mac is None:
        mac = SlottedAloha()
    n = network.size
    paths = _flow_paths(network, flows)
    # next_hop[k][v]: flow k's successor of station v along its path.
    next_hop = [
        {path[i]: path[i + 1] for i in range(len(path) - 1)}
        for path in paths
    ]
    arrival_counts = [
        flow.arrivals.draw(rng, rounds) for flow in flows
    ]
    stats = [
        FlowStats(flow=flow, path=paths[k])
        for k, flow in enumerate(flows)
    ]

    session = mac.session(network)
    gain = network.gain_operator
    noise = network.params.noise
    beta = network.params.beta
    kern = network.kernel_kind

    queues = [deque() for _ in range(n)]  # entries: (flow_id, inject_round)
    transmissions = 0
    collisions = 0
    for t in range(rounds):
        for k in range(len(flows)):
            count = int(arrival_counts[k][t])
            src = flows[k].src
            for _ in range(count):
                stats[k].injected += 1
                if len(queues[src]) >= queue_cap:
                    stats[k].dropped += 1
                else:
                    queues[src].append((k, t))
        intents = np.array(
            [bool(queues[v]) for v in range(n)], dtype=bool
        )[None, :]
        if not intents.any():
            continue
        tx_mask = (
            np.asarray(session.transmit_mask(t, intents, network), dtype=bool)
            & intents
        )[0]
        transmitters = np.flatnonzero(tx_mask)
        if transmitters.size == 0:
            continue
        heard_from = resolve_reception(
            gain, transmitters, noise, beta, kernel=kern
        )
        if rate_table is not None:
            _best, sinr = sinr_values(gain, transmitters, noise, kernel=kern)
        forwards = []  # (dest_station, flow_id, inject_round)
        for v in transmitters.tolist():
            transmissions += 1
            k, _t0 = queues[v][0]
            hop = next_hop[k][v]
            if heard_from[hop] != v:
                # The next hop heard someone else or nothing: the slot
                # is wasted for this packet (hidden-node collisions and
                # lost arbitration ties both land here).
                collisions += 1
                stats[k].collisions += 1
                continue
            budget = (
                rate_table.rate_for(float(sinr[hop]))
                if rate_table is not None
                else 1
            )
            while budget > 0 and queues[v]:
                k, t0 = queues[v][0]
                if next_hop[k][v] != hop:
                    break  # only packets riding the same link this slot
                queues[v].popleft()
                budget -= 1
                if hop == flows[k].dst:
                    stats[k].delivered += 1
                    stats[k].latencies.append(t - t0 + 1)
                else:
                    forwards.append((hop, k, t0))
        for hop, k, t0 in forwards:
            if len(queues[hop]) >= queue_cap:
                stats[k].dropped += 1
            else:
                queues[hop].append((k, t0))

    for queue in queues:
        for k, _t0 in queue:
            stats[k].queued += 1
    return TrafficResult(
        flows=stats,
        rounds=rounds,
        transmissions=transmissions,
        collisions=collisions,
    )
