"""Seeded arrival processes for the traffic engine.

Each process maps ``(rng, rounds)`` to a per-round packet count vector.
Processes follow the repo's strategy-object pattern (primitive
:meth:`~ArrivalProcess.identity`, content-hash
:meth:`~ArrivalProcess.fingerprint`) so flows carrying them contribute
their full identity to grid cache keys, and every process consumes a
*fixed* amount of randomness given ``rounds`` — independent of the
counts it produces — so arrival streams replay bit-for-bit across
``jobs=1`` / ``jobs=N`` and the service path (DESIGN.md §11.6).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ProtocolError


class ArrivalProcess(ABC):
    """Strategy mapping ``(rng, rounds)`` to per-round packet counts."""

    @abstractmethod
    def identity(self) -> tuple:
        """Hashable tuple of primitives pinning the arrival law."""

    @abstractmethod
    def draw(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        """Per-round packet counts, ``(rounds,)`` int64.

        Implementations must consume an amount of the generator's
        stream that depends only on ``rounds`` (never on the drawn
        values), so multi-flow draws stay aligned whatever each flow
        produces.
        """

    def fingerprint(self) -> str:
        """Content hash of :meth:`identity` (cache-key hook)."""
        return hashlib.sha256(repr(self.identity()).encode()).hexdigest()

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.identity()!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrivalProcess)
            and self.identity() == other.identity()
        )

    def __hash__(self) -> int:
        return hash(self.identity())


class Poisson(ArrivalProcess):
    """Memoryless arrivals: ``count_t ~ Poisson(rate)`` i.i.d. per round.

    :param rate: mean packets injected per round (``> 0``).
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ProtocolError(f"arrival rate must be > 0, got {rate}")
        self.rate = float(rate)

    def identity(self) -> tuple:
        return ("poisson", self.rate)

    def draw(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        """One Poisson variate per round (fixed stream consumption)."""
        return rng.poisson(self.rate, size=rounds).astype(np.int64)


class CBR(ArrivalProcess):
    """Constant bit rate: deterministic ``rate`` packets per round.

    Fractional rates spread evenly — round ``t`` injects
    ``floor((t+1) rate) - floor(t rate)`` packets — and the draw
    consumes **no** randomness, so CBR flows never shift other flows'
    streams.

    :param rate: packets per round (``> 0``, may be fractional).
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ProtocolError(f"arrival rate must be > 0, got {rate}")
        self.rate = float(rate)

    def identity(self) -> tuple:
        return ("cbr", self.rate)

    def draw(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        """Deterministic evenly-spread counts (no stream consumption)."""
        t = np.arange(rounds + 1, dtype=np.float64)
        marks = np.floor(t * self.rate).astype(np.int64)
        return np.diff(marks)


class OnOff(ArrivalProcess):
    """Bursty two-state arrivals (a Markov-modulated Poisson process).

    A seeded on/off chain — switching on with probability ``p_on`` per
    off-round and off with ``p_off`` per on-round — gates Poisson
    arrivals at ``rate``.  Both the state walk and the Poisson counts
    are drawn for *every* round up front (off-round counts are masked
    to zero, not skipped), so stream consumption is fixed at
    ``2 * rounds`` variates regardless of the state trajectory.

    :param rate: mean packets per *on* round (``> 0``).
    :param p_on: off → on switch probability per round.
    :param p_off: on → off switch probability per round.
    :param start_on: whether round 0 starts in the on state.
    """

    def __init__(
        self,
        rate: float,
        p_on: float = 0.1,
        p_off: float = 0.1,
        *,
        start_on: bool = True,
    ):
        if rate <= 0:
            raise ProtocolError(f"arrival rate must be > 0, got {rate}")
        if not 0.0 < p_on <= 1.0 or not 0.0 < p_off <= 1.0:
            raise ProtocolError(
                "switch probabilities must be in (0, 1], got "
                f"p_on={p_on} p_off={p_off}"
            )
        self.rate = float(rate)
        self.p_on = float(p_on)
        self.p_off = float(p_off)
        self.start_on = bool(start_on)

    def identity(self) -> tuple:
        return ("on-off", self.rate, self.p_on, self.p_off, self.start_on)

    def draw(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        """Poisson counts masked by the seeded on/off state walk."""
        switches = rng.random(rounds)
        counts = rng.poisson(self.rate, size=rounds).astype(np.int64)
        on = self.start_on
        for t in range(rounds):
            if on:
                if switches[t] < self.p_off:
                    on = False
            else:
                if switches[t] < self.p_on:
                    on = True
            if not on:
                counts[t] = 0
        return counts
