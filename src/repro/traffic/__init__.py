"""Traffic-injection workload engine (DESIGN.md §11.5–§11.7).

Seeded arrival processes feed per-flow queues; packets forward hop by
hop over ``Network.graph`` shortest paths, each slot arbitrated by a
:class:`~repro.mac.MacModel` and resolved by the SINR machinery, with
optional :class:`~repro.mac.RateTable` adaptive rates.  The result is
per-flow throughput / latency / fairness (Jain index) — the
requests-level view of the network that round-count experiments cannot
see.
"""

from repro.traffic.arrivals import CBR, ArrivalProcess, OnOff, Poisson
from repro.traffic.engine import Flow, FlowStats, TrafficResult, run_traffic
from repro.traffic.metrics import jain_index

__all__ = [
    "ArrivalProcess",
    "Poisson",
    "CBR",
    "OnOff",
    "Flow",
    "FlowStats",
    "TrafficResult",
    "run_traffic",
    "jain_index",
]
