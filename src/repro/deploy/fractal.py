"""Fractal cluster-of-clusters deployments with tunable growth dimension.

The paper's analysis is parameterized by the growth dimension ``gamma``
of the underlying metric, not by a Euclidean embedding — so the scenario
library needs deployments whose *empirical* growth dimension can be
dialed anywhere in ``(0, 2]`` while living in the plane.  The classic
construction is the recursive cluster-of-clusters: every cluster at
recursion level ``l`` consists of ``branching`` sub-clusters drawn in a
disk whose radius shrinks by a fixed ``ratio`` per level.  The limit
set's box-counting dimension is ``log(branching) / log(1 / ratio)``, so
fixing a target ``dimension`` pins ``ratio = branching^(-1/dimension)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import DeploymentError, DisconnectedNetworkError
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def fractal_dimension(branching: int, ratio: float) -> float:
    """Box-counting dimension ``log(branching) / log(1/ratio)``."""
    if branching < 2:
        raise DeploymentError(f"branching must be >= 2, got {branching}")
    if not 0 < ratio < 1:
        raise DeploymentError(f"ratio must be in (0, 1), got {ratio}")
    return math.log(branching) / math.log(1.0 / ratio)


def fractal_clusters(
    levels: int,
    branching: int,
    rng: np.random.Generator,
    *,
    dimension: float = 1.5,
    span: float = 0.55,
    params: Optional[SINRParameters] = None,
    max_attempts: int = 50,
    name: str = "fractal-clusters",
    channel=None,
) -> Network:
    """``branching ** levels`` stations in a recursive cluster hierarchy.

    Level ``l`` scatters each center's ``branching`` children uniformly
    in a disk of radius ``(span / 2) * ratio^l`` around it, with
    ``ratio = branching^(-1/dimension)`` so the hierarchy's scaling
    exponent matches the target growth ``dimension``
    (:func:`repro.geometry.growth.growth_dimension_estimate` certifies
    the match on probe radii inside the hierarchy's scale range).

    The whole structure spans ``~ span / (1 - ratio)``; with the default
    ``span`` that keeps most pairs within the communication radius, and
    the generator redraws until the graph is connected like the other
    families.

    :param levels: recursion depth (``>= 1``).
    :param branching: children per cluster (``>= 2``).
    :param dimension: target growth dimension (``0 < dimension <= 2``
        for a planar embedding).
    :param span: diameter scale of the top-level scatter.
    :param channel: optional channel model forwarded to the network.
    :raises DisconnectedNetworkError: if no connected draw is found.
    """
    if levels < 1:
        raise DeploymentError(f"levels must be >= 1, got {levels}")
    if branching < 2:
        raise DeploymentError(f"branching must be >= 2, got {branching}")
    if not 0 < dimension <= 2:
        raise DeploymentError(
            f"dimension must be in (0, 2] for a planar embedding, "
            f"got {dimension}"
        )
    if span <= 0:
        raise DeploymentError(f"span must be positive, got {span}")
    ratio = branching ** (-1.0 / dimension)
    if params is None:
        params = SINRParameters.default()
    for _ in range(max_attempts):
        centers = np.zeros((1, 2))
        for level in range(levels):
            radius = 0.5 * span * ratio ** level
            r = radius * np.sqrt(
                rng.uniform(0.0, 1.0, size=centers.shape[0] * branching)
            )
            theta = rng.uniform(
                0.0, 2.0 * math.pi, size=centers.shape[0] * branching
            )
            offsets = np.column_stack(
                [r * np.cos(theta), r * np.sin(theta)]
            )
            centers = np.repeat(centers, branching, axis=0) + offsets
        net = Network(centers, params=params, name=name, channel=channel)
        if net.is_connected:
            return net
    raise DisconnectedNetworkError(
        f"fractal cluster deployment (levels={levels}, "
        f"branching={branching}, dimension={dimension}) stayed "
        f"disconnected after {max_attempts} attempts; increase span "
        f"density or reduce levels"
    )
