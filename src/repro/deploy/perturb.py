"""Perturbations that preserve the communication graph.

The paper's headline claim (Sect. 1.3) is that broadcast cost depends only
on the communication graph, not on where stations sit *inside* their
reachability balls.  To test this (experiment E12) we need families of
deployments with the *same* communication graph but different geometry:
:func:`perturb_within_balls` jitters stations one at a time, accepting a
station's move only if its incident communication edges are unchanged
(per-station rejection sampling — whole-deployment rejection would almost
never accept once ``n`` exceeds a few dozen, since some edge always sits
near the threshold).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeploymentError
from repro.geometry.metric import MIN_DISTANCE
from repro.network.network import Network


def _edge_set(net: Network) -> frozenset:
    return frozenset(frozenset(e) for e in net.graph.edges)


def _sample_in_ball(
    rng: np.random.Generator, dim: int, radius: float
) -> np.ndarray:
    direction = rng.normal(size=dim)
    norm = np.linalg.norm(direction)
    if norm == 0:
        return np.zeros(dim)
    r = radius * rng.uniform(0.0, 1.0) ** (1.0 / dim)
    return direction / norm * r


def perturb_within_balls(
    net: Network,
    scale: float,
    rng: np.random.Generator,
    *,
    attempts_per_station: int = 25,
) -> Network:
    """Jitter stations by up to ``scale`` without changing the graph.

    Visits stations in random order; each station proposes up to
    ``attempts_per_station`` offsets uniform in the radius-``scale`` ball
    and keeps the first one that (a) preserves every incident
    communication edge / non-edge against the *current* positions of the
    other stations and (b) keeps all pairwise distances above the
    co-location floor.  Stations with no acceptable move stay put, so the
    result always shares the original communication graph.
    """
    if scale < 0:
        raise DeploymentError(f"perturbation scale must be >= 0, got {scale}")
    coords = np.array(net.coords, dtype=float)
    n, dim = coords.shape
    comm_r = net.params.comm_radius
    original_adjacency = net.distances <= comm_r
    np.fill_diagonal(original_adjacency, False)

    moved = 0
    if scale > 0 and n > 1:
        order = rng.permutation(n)
        others_mask = ~np.eye(n, dtype=bool)
        for i in order:
            target_row = original_adjacency[i]
            for _attempt in range(attempts_per_station):
                candidate = coords[i] + _sample_in_ball(rng, dim, scale)
                delta = coords - candidate
                dist_row = np.sqrt(np.einsum("ij,ij->i", delta, delta))
                dist_row[i] = np.inf
                if dist_row.min() < 10 * MIN_DISTANCE:
                    continue
                new_row = dist_row <= comm_r
                if np.array_equal(new_row[others_mask[i]],
                                  target_row[others_mask[i]]):
                    coords[i] = candidate
                    moved += 1
                    break

    perturbed = Network(
        coords, params=net.params, metric=net.metric,
        name=f"{net.name}-perturbed", channel=net.channel,
    )
    if _edge_set(perturbed) != _edge_set(net):
        raise DeploymentError(
            "internal error: perturbation changed the communication graph"
        )
    return perturbed


def same_graph_family(
    net: Network,
    scales: list[float],
    rng: np.random.Generator,
) -> list[Network]:
    """A family of deployments sharing ``net``'s communication graph.

    One perturbed copy per entry of ``scales`` (plus the original first).
    Used by E12: broadcast cost measured across the family should agree
    within sampling noise if the paper's claim holds.
    """
    family = [net]
    for scale in scales:
        family.append(perturb_within_balls(net, scale, rng))
    return family
