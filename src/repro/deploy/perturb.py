"""Perturbations that preserve the communication graph.

The paper's headline claim (Sect. 1.3) is that broadcast cost depends only
on the communication graph, not on where stations sit *inside* their
reachability balls.  To test this (experiment E12) we need families of
deployments with the *same* communication graph but different geometry:
:func:`perturb_within_balls` jitters stations one at a time, accepting a
station's move only if its incident communication edges are unchanged
(per-station rejection sampling — whole-deployment rejection would almost
never accept once ``n`` exceeds a few dozen, since some edge always sits
near the threshold).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeploymentError
from repro.geometry.metric import MIN_DISTANCE
from repro.network.network import Network


def _edge_set(net: Network) -> frozenset:
    return frozenset(frozenset(e) for e in net.graph.edges)


def _sample_in_ball(
    rng: np.random.Generator, dim: int, radius: float
) -> np.ndarray:
    direction = rng.normal(size=dim)
    norm = np.linalg.norm(direction)
    if norm == 0:
        return np.zeros(dim)
    r = radius * rng.uniform(0.0, 1.0) ** (1.0 / dim)
    return direction / norm * r


def perturb_within_balls(
    net: Network,
    scale: float,
    rng: np.random.Generator,
    *,
    attempts_per_station: int = 25,
) -> Network:
    """Jitter stations by up to ``scale`` without changing the graph.

    Visits stations in random order; each station proposes up to
    ``attempts_per_station`` offsets uniform in the radius-``scale`` ball
    and keeps the first one that (a) preserves every incident
    communication edge / non-edge against the *current* positions of the
    other stations and (b) keeps all pairwise distances above the
    co-location floor.  Stations with no acceptable move stay put, so the
    result always shares the original communication graph.
    """
    if scale < 0:
        raise DeploymentError(f"perturbation scale must be >= 0, got {scale}")
    coords = np.array(net.coords, dtype=float)
    n, dim = coords.shape
    comm_r = net.params.comm_radius
    original_adjacency = net.distances <= comm_r
    np.fill_diagonal(original_adjacency, False)

    moved = 0
    if scale > 0 and n > 1:
        order = rng.permutation(n)
        others_mask = ~np.eye(n, dtype=bool)
        for i in order:
            target_row = original_adjacency[i]
            for _attempt in range(attempts_per_station):
                candidate = coords[i] + _sample_in_ball(rng, dim, scale)
                delta = coords - candidate
                dist_row = np.sqrt(np.einsum("ij,ij->i", delta, delta))
                dist_row[i] = np.inf
                if dist_row.min() < 10 * MIN_DISTANCE:
                    continue
                new_row = dist_row <= comm_r
                if np.array_equal(new_row[others_mask[i]],
                                  target_row[others_mask[i]]):
                    coords[i] = candidate
                    moved += 1
                    break

    perturbed = Network(
        coords, params=net.params, metric=net.metric,
        name=f"{net.name}-perturbed", channel=net.channel,
    )
    if _edge_set(perturbed) != _edge_set(net):
        raise DeploymentError(
            "internal error: perturbation changed the communication graph"
        )
    return perturbed


def same_graph_family(
    net: Network,
    scales: list[float],
    rng: np.random.Generator,
) -> list[Network]:
    """A family of deployments sharing ``net``'s communication graph.

    One perturbed copy per entry of ``scales`` (plus the original first).
    Used by E12: broadcast cost measured across the family should agree
    within sampling noise if the paper's claim holds.
    """
    family = [net]
    for scale in scales:
        family.append(perturb_within_balls(net, scale, rng))
    return family


def jitter_within_slack(
    net: Network,
    scale: float,
    rng: np.random.Generator,
    *,
    safety: float = 0.49,
) -> Network:
    """Graph-preserving jitter that scales to 100k stations (E14).

    :func:`perturb_within_balls` is O(n^2) per deployment — it checks
    every proposal against a dense distance row.  This variant moves
    *all* stations in one vectorized pass and preserves the
    communication graph *provably* instead of by rejection: station
    ``i``'s jitter radius is capped at ``safety`` times its minimum
    incident slack — ``comm_radius - d`` over incident edges, ``d -
    comm_radius`` over near non-edges, and ``cutoff - comm_radius``
    against all farther pairs — so no pair's distance can cross the
    threshold (two endpoints each move less than half their shared
    slack).  Stations with a tight incident pair barely move, which is
    the same behaviour the per-station rejection sampler converges to.

    Needs coordinate geometry; slacks come from the cell-indexed near
    field (:class:`repro.sinr.sparse.SparseGainBackend`), so no dense
    matrix is ever built.  The resulting network inherits ``net``'s
    backend selection and is verified edge-for-edge against the
    original.
    """
    from repro.geometry.metric import EuclideanMetric
    from repro.sinr.sparse import SparseGainBackend

    if scale < 0:
        raise DeploymentError(f"perturbation scale must be >= 0, got {scale}")
    if not 0 < safety < 0.5:
        raise DeploymentError(f"safety must be in (0, 0.5), got {safety}")
    if not isinstance(net.metric, EuclideanMetric):
        # Slack caps and the edge-set verification are both Euclidean;
        # a matrix metric would pass the check yet change the graph.
        raise DeploymentError(
            "jitter_within_slack needs coordinate geometry "
            f"(EuclideanMetric); got {type(net.metric).__name__}"
        )
    from repro.sinr.channel import UniformPower

    coords = np.array(net.coords, dtype=float)
    n, dim = coords.shape
    comm_r = net.params.comm_radius
    if scale == 0 or n == 1:
        moved = coords
    else:
        # Only distances are consumed here, so the helper index is
        # built under UniformPower — this keeps the jitter usable with
        # non-radial channels (shadowing, obstacles) whose gains the
        # sparse backend cannot evaluate pairwise.
        backend = (
            net.sparse_backend
            if net.backend_kind == "sparse"
            else SparseGainBackend(coords, net.params, UniformPower())
        )
        rows = np.repeat(np.arange(n), np.diff(backend.indptr))
        pair_slack = np.abs(backend.dists - comm_r)
        slack = np.full(n, backend.cutoff - comm_r)
        np.minimum.at(slack, rows, pair_slack)
        radius = np.minimum(scale, safety * slack)
        # Uniform draw in the per-station ball: direction from an
        # isotropic normal, length r * U^(1/dim).
        direction = rng.normal(size=(n, dim))
        norms = np.linalg.norm(direction, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        length = radius * rng.uniform(0.0, 1.0, size=n) ** (1.0 / dim)
        moved = coords + direction / norms * length[:, None]

    jittered = Network(
        moved, params=net.params, metric=net.metric,
        name=f"{net.name}-jittered", channel=net.channel,
        backend=net._backend_request, cutoff=net._cutoff,
    )
    if n > 1 and scale > 0:
        check = (
            jittered.sparse_backend
            if jittered.backend_kind == "sparse"
            else SparseGainBackend(moved, net.params, UniformPower())
        )
        before = backend.pairs_within(comm_r)
        after = check.pairs_within(comm_r)
        if not (
            np.array_equal(before[0], after[0])
            and np.array_equal(before[1], after[1])
        ):
            raise DeploymentError(
                "internal error: slack-bounded jitter changed the "
                "communication graph"
            )
    return jittered


def same_graph_family_sparse(
    net: Network,
    scales: list[float],
    rng: np.random.Generator,
) -> list[Network]:
    """:func:`same_graph_family` built with the O(n) jitter (E14)."""
    family = [net]
    for scale in scales:
        family.append(jitter_within_slack(net, scale, rng))
    return family
