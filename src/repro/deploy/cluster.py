"""Cluster deployments — high local density at small diameter."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeploymentError, DisconnectedNetworkError
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def cluster_network(
    n_clusters: int,
    per_cluster: int,
    cluster_radius: float,
    center_spacing: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    name: str = "clusters",
) -> Network:
    """Clusters of stations on a ring of cluster centers.

    ``n_clusters`` centers are placed on a circle with consecutive centers
    ``center_spacing`` apart; each cluster draws ``per_cluster`` stations
    uniformly from a disk of ``cluster_radius`` around its center.  With
    ``center_spacing + 2 * cluster_radius <= comm_radius`` consecutive
    clusters are fully connected, giving diameter ``~ n_clusters / 2`` with
    maximum degree ``~ 3 * per_cluster`` — the dense regime where the
    local-broadcast baseline pays its ``Delta`` factor (experiment E8).
    """
    if n_clusters < 1 or per_cluster < 1:
        raise DeploymentError("need at least one cluster and one station")
    if cluster_radius < 0 or center_spacing <= 0:
        raise DeploymentError("radii and spacing must be positive")
    if params is None:
        params = SINRParameters.default()
    if n_clusters == 1:
        centers = np.zeros((1, 2))
    else:
        ring_radius = center_spacing / (2 * np.sin(np.pi / n_clusters))
        angles = 2 * np.pi * np.arange(n_clusters) / n_clusters
        centers = ring_radius * np.column_stack(
            [np.cos(angles), np.sin(angles)]
        )
    points = []
    for center in centers:
        r = cluster_radius * np.sqrt(rng.uniform(0, 1, size=per_cluster))
        theta = rng.uniform(0, 2 * np.pi, size=per_cluster)
        points.append(
            center + np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        )
    net = Network(np.vstack(points), params=params, name=name)
    if not net.is_connected:
        raise DisconnectedNetworkError(
            "cluster network disconnected; reduce center_spacing or "
            "increase cluster_radius"
        )
    return net


def dumbbell(
    per_side: int,
    bridge_hops: int,
    rng: np.random.Generator,
    side_radius: float = 0.3,
    hop: float = 0.6,
    params: Optional[SINRParameters] = None,
) -> Network:
    """Two dense blobs joined by a sparse path of single stations.

    The classic stress test for density-adaptive protocols: the message
    must leave a region of mass ``per_side`` through solitary relays whose
    ``eps/2``-balls are nearly empty — exactly the distinction
    ``DensityTest`` + ``Playoff`` exist to make.
    """
    if per_side < 1 or bridge_hops < 1:
        raise DeploymentError("need at least one station per side and hop")
    if params is None:
        params = SINRParameters.default()

    def blob(center_x: float, rim_sign: float) -> np.ndarray:
        """Random blob plus a deterministic anchor at the bridge-side rim.

        The anchor guarantees the blob connects to the first bridge relay
        regardless of where the random stations land.
        """
        r = side_radius * np.sqrt(rng.uniform(0, 1, size=per_side - 1))
        theta = rng.uniform(0, 2 * np.pi, size=per_side - 1)
        random_part = np.column_stack(
            [center_x + r * np.cos(theta), r * np.sin(theta)]
        )
        anchor = np.array([[center_x + rim_sign * side_radius, 0.0]])
        return np.vstack([anchor, random_part])

    bridge_x = side_radius + hop * np.arange(1, bridge_hops + 1)
    bridge = np.column_stack([bridge_x, np.zeros(bridge_hops)])
    right_center = side_radius + hop * (bridge_hops + 1) + side_radius
    coords = np.vstack(
        [blob(0.0, 1.0), bridge, blob(right_center, -1.0)]
    )
    net = Network(coords, params=params, name="dumbbell")
    if not net.is_connected:
        raise DisconnectedNetworkError(
            "dumbbell disconnected; shrink hop or grow side_radius"
        )
    return net
