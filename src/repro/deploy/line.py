"""Line (chain) deployments, including the paper's hard instances.

Footnote 2 of the paper exhibits ``n`` stations on a line with
``dist(x_i, x_{i+1}) = 1/2^i`` — granularity ``Rs`` exponential in ``n``.
On such chains the Daum et al. [5] bound ``O(D log n log^{alpha+1} Rs)``
degrades badly while the paper's algorithms stay at
``O(D polylog n)``: these generators produce exactly that family, plus
tamer chains used for diameter sweeps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeploymentError
from repro.geometry.metric import MIN_DISTANCE
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def _chain_from_gaps(
    gaps: np.ndarray,
    params: Optional[SINRParameters],
    name: str,
) -> Network:
    if np.any(gaps <= 0):
        raise DeploymentError("all chain gaps must be positive")
    positions = np.concatenate([[0.0], np.cumsum(gaps)])
    coords = np.column_stack([positions, np.zeros_like(positions)])
    if params is None:
        params = SINRParameters.default()
    return Network(coords, params=params, name=name)


def uniform_chain(
    n: int,
    gap: float = 0.5,
    params: Optional[SINRParameters] = None,
) -> Network:
    """``n`` stations on a line with equal gaps — diameter ``~ n * gap``."""
    if n < 1:
        raise DeploymentError(f"need at least one station, got n={n}")
    if gap <= 0:
        raise DeploymentError(f"gap must be positive, got {gap}")
    gaps = np.full(n - 1, gap)
    return _chain_from_gaps(gaps, params, "uniform-chain")


def geometric_chain(
    n: int,
    ratio: float = 0.5,
    first_gap: float = 0.5,
    min_gap: float = 1e-9,
    params: Optional[SINRParameters] = None,
) -> Network:
    """Chain with geometrically shrinking gaps ``first_gap * ratio^i``.

    Gaps are floored at ``min_gap`` to stay within float64 resolution; the
    floor is what bounds the achievable granularity (``~ first_gap /
    min_gap``).  With ``ratio = 1/2`` and the default floor this reaches
    ``Rs ~ 5 * 10^8`` — deep inside the regime where the paper beats [5].
    """
    if n < 1:
        raise DeploymentError(f"need at least one station, got n={n}")
    if not 0 < ratio <= 1:
        raise DeploymentError(f"ratio must be in (0, 1], got {ratio}")
    if min_gap < MIN_DISTANCE * 10:
        raise DeploymentError(
            f"min_gap {min_gap} too small for float64 distance resolution"
        )
    gaps = first_gap * ratio ** np.arange(n - 1)
    gaps = np.maximum(gaps, min_gap)
    return _chain_from_gaps(gaps, params, "geometric-chain")


def exponential_chain(
    n: int,
    params: Optional[SINRParameters] = None,
    min_gap: float = 1e-9,
) -> Network:
    """The footnote-2 instance: ``dist(x_i, x_{i+1}) = 1/2^i``.

    Every consecutive pair is connected (all gaps ``<= 1/2 < (1-eps) r``),
    the diameter is moderate, but the granularity is ``2^(n-2)`` (up to the
    float64 floor) — the adversarial workload for granularity-dependent
    algorithms.
    """
    return geometric_chain(
        n, ratio=0.5, first_gap=0.5, min_gap=min_gap, params=params
    )


def clustered_chain(
    n_clusters: int,
    per_cluster: int,
    cluster_span: float,
    hop: float = 0.6,
    params: Optional[SINRParameters] = None,
    rng: Optional[np.random.Generator] = None,
) -> Network:
    """Chain of dense station clusters separated by single hops.

    Each cluster packs ``per_cluster`` stations into an interval of length
    ``cluster_span`` (uniformly at random), and consecutive clusters are
    ``hop`` apart.  This mixes the two densities the coloring must
    distinguish: huge mass inside ``B(v, eps/2)`` within clusters, tiny
    mass between them.
    """
    if n_clusters < 1 or per_cluster < 1:
        raise DeploymentError("need at least one cluster and one station")
    if cluster_span <= 0 or hop <= cluster_span:
        raise DeploymentError(
            "hop must exceed cluster_span so clusters stay separated"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    positions = []
    for k in range(n_clusters):
        start = k * hop
        offsets = np.sort(rng.uniform(0.0, cluster_span, size=per_cluster))
        # Enforce distinctness within the cluster.
        offsets += np.arange(per_cluster) * (10 * MIN_DISTANCE)
        positions.extend(start + offsets)
    coords = np.column_stack([positions, np.zeros(len(positions))])
    if params is None:
        params = SINRParameters.default()
    return Network(coords, params=params, name="clustered-chain")
