"""Workload / topology generators.

Each generator returns a :class:`repro.network.Network` with a *connected*
communication graph (or raises
:class:`repro.errors.DisconnectedNetworkError`).  All randomness flows
through an explicit ``numpy.random.Generator`` so every experiment is
reproducible from its seed.

The families mirror the situations the paper discusses:

* uniform random deployments — the "average" case;
* grids and grid chains — controlled diameter sweeps at fixed density;
* chains with geometric gaps — the footnote-2 instance with exponentially
  large granularity ``Rs`` that separates this paper from Daum et al. [5];
* clusters — high local density, small diameter (stress for Lemma 1);
* in-ball perturbations — families of deployments sharing one communication
  graph but differing in geometry (the paper's headline claim E12).
"""

from repro.deploy.uniform import uniform_square, uniform_disk
from repro.deploy.grid import grid, grid_chain, jittered_grid
from repro.deploy.line import (
    uniform_chain,
    geometric_chain,
    exponential_chain,
    clustered_chain,
)
from repro.deploy.cluster import cluster_network, dumbbell
from repro.deploy.perturb import perturb_within_balls, same_graph_family

__all__ = [
    "uniform_square",
    "uniform_disk",
    "grid",
    "grid_chain",
    "jittered_grid",
    "uniform_chain",
    "geometric_chain",
    "exponential_chain",
    "clustered_chain",
    "cluster_network",
    "dumbbell",
    "perturb_within_balls",
    "same_graph_family",
]
