"""Workload / topology generators.

Each generator returns a :class:`repro.network.Network` with a *connected*
communication graph (or raises
:class:`repro.errors.DisconnectedNetworkError`).  All randomness flows
through an explicit ``numpy.random.Generator`` so every experiment is
reproducible from its seed.

The families mirror the situations the paper discusses:

* uniform random deployments — the "average" case;
* grids and grid chains — controlled diameter sweeps at fixed density;
* chains with geometric gaps — the footnote-2 instance with exponentially
  large granularity ``Rs`` that separates this paper from Daum et al. [5];
* clusters — high local density, small diameter (stress for Lemma 1);
* in-ball perturbations — families of deployments sharing one communication
  graph but differing in geometry (the paper's headline claim E12);
* geometry-diverse families for E13 — 3D cubes, fractal cluster
  hierarchies with tunable growth dimension, and corridors that pair
  with obstacle channel models;
* mobility models for E15 — seeded per-round displacement strategies
  (Brownian drift, random waypoint, group drift) that turn any static
  family into a moving deployment (DESIGN.md §7).
"""

from repro.deploy.uniform import uniform_square, uniform_disk, uniform_cube
from repro.deploy.grid import grid, grid_chain, jittered_grid
from repro.deploy.fractal import fractal_clusters, fractal_dimension
from repro.deploy.corridor import corridor
from repro.deploy.line import (
    uniform_chain,
    geometric_chain,
    exponential_chain,
    clustered_chain,
)
from repro.deploy.cluster import cluster_network, dumbbell
from repro.deploy.mobility import (
    BrownianDrift,
    GroupDrift,
    MobilityModel,
    RandomWaypoint,
    mobility_hook,
)
from repro.deploy.perturb import perturb_within_balls, same_graph_family

__all__ = [
    "uniform_square",
    "uniform_disk",
    "uniform_cube",
    "fractal_clusters",
    "fractal_dimension",
    "corridor",
    "grid",
    "grid_chain",
    "jittered_grid",
    "uniform_chain",
    "geometric_chain",
    "exponential_chain",
    "clustered_chain",
    "cluster_network",
    "dumbbell",
    "perturb_within_balls",
    "same_graph_family",
    "MobilityModel",
    "BrownianDrift",
    "RandomWaypoint",
    "GroupDrift",
    "mobility_hook",
]
