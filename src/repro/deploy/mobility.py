"""Mobility models — moving deployments as a seeded strategy family.

Every experiment through E14 probes *frozen* deployments, yet the
paper's claims are about geometry, and real ad hoc networks move.  This
module supplies the temporal axis (DESIGN.md §7): a
:class:`MobilityModel` is a seeded, hashable description of how a
deployment drifts, mirroring the :class:`~repro.sinr.channel.ChannelModel`
idiom — construction takes every physical knob plus ``seed``,
:meth:`MobilityModel.identity` returns the primitive tuple that pins the
trajectory, and :meth:`MobilityModel.fingerprint` digests it so the grid
result cache keys dynamic runs on the mobility identity (static and
dynamic results can never collide, :mod:`repro.fastsim.cache`).

The run-time half is the :class:`MobilitySession`: per-run mutable state
(waypoints, group velocities, the step counter) created by
:meth:`MobilityModel.session` from the initial coordinates.  Sessions
emit per-round ``(n, d)`` displacement arrays; stations that do not move
this round get an exact ``0.0`` row, which is what
:meth:`repro.network.network.Network.advance` keys its incremental
sparse update on.

:func:`mobility_hook` adapts a model to the per-round network callback
the :mod:`repro.fastsim` kernels accept — one trajectory per hook,
advanced once per communication round in call order, shared by every
replication of a batched sweep (the *environment* moves; replications
differ only in protocol randomness).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Callable, Optional

import numpy as np

from repro.errors import DeploymentError
from repro.network.network import MOBILITY_REBUILD_FRACTION, Network

#: Signature of the per-round callback consumed by the fastsim kernels:
#: ``hook(round_no, network) -> network`` (DESIGN.md §7).
#:
#: Hooks MUST be stateful and own their trajectory: multi-stage kernels
#: (broadcast pilot rounds, consensus bit boxes) re-pass the *static
#: snapshot* they were called with, not the network a previous stage's
#: hook calls produced, so the ``network`` argument is only a starting
#: point for the hook's first call.  A stateless
#: ``lambda r, net: net.advance(...)`` would silently restart the
#: trajectory at every stage; :func:`mobility_hook` is the reference
#: implementation (ignores the passed network after its first call).
NetworkHook = Callable[[int, Network], Network]


def _resolve_box(
    box, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-axis ``(lo, hi)`` reflection bounds.

    ``box=None`` defaults to the initial bounding box of the deployment,
    so trajectories stay inside the region the stations started in (and
    the sparse backend's cell grid stays patchable, DESIGN.md §7).
    """
    if box is None:
        return coords.min(axis=0), coords.max(axis=0)
    lo, hi = box
    lo = np.broadcast_to(
        np.asarray(lo, dtype=float), coords.shape[1:]
    ).astype(float)
    hi = np.broadcast_to(
        np.asarray(hi, dtype=float), coords.shape[1:]
    ).astype(float)
    if np.any(hi <= lo):
        raise DeploymentError(
            f"mobility box must satisfy lo < hi per axis, got {lo}, {hi}"
        )
    return lo, hi


def _box_identity(box) -> Optional[tuple]:
    """Hashable form of a box argument for :meth:`MobilityModel.identity`."""
    if box is None:
        return None
    lo, hi = box
    return (
        tuple(np.atleast_1d(np.asarray(lo, dtype=float)).tolist()),
        tuple(np.atleast_1d(np.asarray(hi, dtype=float)).tolist()),
    )


def _reflect(
    proposed: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Reflect positions into ``[lo, hi]`` (one bounce, then clip)."""
    out = np.where(proposed < lo, 2.0 * lo - proposed, proposed)
    out = np.where(out > hi, 2.0 * hi - out, out)
    return np.clip(out, lo, hi)


class MobilitySession:
    """Per-run mutable trajectory state of one :class:`MobilityModel`.

    Created by :meth:`MobilityModel.session`; deterministic given the
    model (which owns the seed) and the initial coordinates.  Subclasses
    implement :meth:`_raw` — the unbounded per-round step — and the base
    class reflects proposals into the session's box so deployments never
    drift apart.
    """

    def __init__(self, model: "MobilityModel", coords: np.ndarray):
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[0] == 0:
            raise DeploymentError(
                f"mobility needs (n, d) coordinates, got {coords.shape}"
            )
        self.model = model
        self.n, self.dim = coords.shape
        self.rng = np.random.default_rng(
            np.random.SeedSequence(model.seed)
        )
        self.lo, self.hi = _resolve_box(model.box, coords)

    def _raw(self, coords: np.ndarray, round_no: int) -> np.ndarray:
        """Unbounded ``(n, d)`` step proposal (overridden per model)."""
        raise NotImplementedError

    def displacements(
        self, coords: np.ndarray, round_no: int
    ) -> np.ndarray:
        """The round's ``(n, d)`` displacement array.

        Proposals are reflected into the session box; stations whose raw
        step is zero come back with an exact ``0.0`` row (stations
        already inside the box are fixed points of the reflection), so
        :meth:`~repro.network.network.Network.advance` sees precisely
        the moved set.
        """
        coords = np.asarray(coords, dtype=float)
        if coords.shape != (self.n, self.dim):
            raise DeploymentError(
                f"coordinates drifted shape: expected {(self.n, self.dim)},"
                f" got {coords.shape}"
            )
        raw = self._raw(coords, round_no)
        moved = np.any(raw != 0.0, axis=1)
        if not moved.any():
            return np.zeros_like(coords)
        proposed = coords + raw
        reflected = _reflect(proposed, self.lo, self.hi)
        disp = np.zeros_like(coords)
        disp[moved] = reflected[moved] - coords[moved]
        return disp


class MobilityModel(ABC):
    """Seeded strategy describing how a deployment moves per round.

    Mirrors :class:`~repro.sinr.channel.ChannelModel`: all knobs —
    including the seed — are fixed at construction, :meth:`identity`
    pins the trajectory, and one model instance always produces one
    trajectory (fresh :class:`MobilitySession` per run).

    :param seed: trajectory seed; part of :meth:`identity`.
    :param box: optional per-axis ``(lo, hi)`` reflection bounds;
        ``None`` (default) bounds trajectories to the deployment's
        initial bounding box.
    """

    def __init__(self, *, seed: int = 0, box=None):
        self.seed = int(seed)
        self.box = box

    @abstractmethod
    def identity(self) -> tuple:
        """Hashable tuple of primitives pinning this model's trajectory.

        Everything that can change a session's displacement stream —
        model type, physical knobs, box, seed — must appear here; the
        grid result cache hashes it through :meth:`fingerprint`, so a
        dynamic sweep never replays a static one (or a different
        mobility's) result.
        """

    @abstractmethod
    def session(self, coords: np.ndarray) -> MobilitySession:
        """Fresh per-run trajectory state over the initial ``coords``."""

    def fingerprint(self) -> str:
        """Content hash of :meth:`identity` (cache-key hook).

        :func:`repro.fastsim.cache.fingerprint_bytes` calls this, so a
        ``mobility=`` kwarg contributes exactly the identity tuple to
        every grid point key.
        """
        return hashlib.sha256(repr(self.identity()).encode()).hexdigest()

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.identity()!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MobilityModel)
            and self.identity() == other.identity()
        )

    def __hash__(self) -> int:
        return hash(self.identity())


# ----------------------------------------------------------------------
# the model family
# ----------------------------------------------------------------------
class _BrownianSession(MobilitySession):
    """Gaussian steps; a seeded coin per station gates who moves."""

    def _raw(self, coords: np.ndarray, round_no: int) -> np.ndarray:
        model: BrownianDrift = self.model  # type: ignore[assignment]
        step = model.sigma * self.rng.standard_normal(coords.shape)
        if model.move_prob < 1.0:
            moving = self.rng.random(self.n) < model.move_prob
            step[~moving] = 0.0
        return step


class BrownianDrift(MobilityModel):
    """Independent Gaussian drift, optionally on a sparse subset.

    Every round, each station moves with probability ``move_prob`` by a
    ``sigma``-scaled isotropic Gaussian step (reflected into the box).
    ``move_prob`` well below one is the regime the incremental sparse
    update is built for — only the moved rows of the near field are
    re-computed (DESIGN.md §7).

    :param sigma: per-round step scale (units of the coordinate space;
        the comm radius is 1 - eps under default parameters).
    :param move_prob: per-station per-round probability of moving.
    """

    def __init__(
        self,
        sigma: float,
        *,
        move_prob: float = 1.0,
        seed: int = 0,
        box=None,
    ):
        if sigma < 0:
            raise DeploymentError(f"sigma must be >= 0, got {sigma}")
        if not 0.0 <= move_prob <= 1.0:
            raise DeploymentError(
                f"move_prob must be in [0, 1], got {move_prob}"
            )
        super().__init__(seed=seed, box=box)
        self.sigma = float(sigma)
        self.move_prob = float(move_prob)

    def identity(self) -> tuple:
        return (
            "brownian-drift", self.sigma, self.move_prob,
            _box_identity(self.box), self.seed,
        )

    def session(self, coords: np.ndarray) -> MobilitySession:
        return _BrownianSession(self, coords)


class _WaypointSession(MobilitySession):
    """Classic random-waypoint state: target, residual pause, speed."""

    def __init__(self, model: "RandomWaypoint", coords: np.ndarray):
        super().__init__(model, coords)
        self.targets = self.rng.uniform(
            self.lo, self.hi, size=(self.n, self.dim)
        )
        self.pause_left = np.zeros(self.n, dtype=np.int64)

    def _raw(self, coords: np.ndarray, round_no: int) -> np.ndarray:
        model: RandomWaypoint = self.model  # type: ignore[assignment]
        to_target = self.targets - coords
        dist = np.linalg.norm(to_target, axis=1)
        step = np.zeros_like(coords)
        paused = self.pause_left > 0
        self.pause_left[paused] -= 1
        arriving = ~paused & (dist <= model.speed)
        step[arriving] = to_target[arriving]
        walking = ~paused & ~arriving & (dist > 0)
        step[walking] = (
            to_target[walking] / dist[walking, None] * model.speed
        )
        if arriving.any():
            # Arrived stations pause, then head for a fresh waypoint.
            self.pause_left[arriving] = model.pause
            self.targets[arriving] = self.rng.uniform(
                self.lo, self.hi, size=(int(arriving.sum()), self.dim)
            )
        return step


class RandomWaypoint(MobilityModel):
    """Random-waypoint mobility: walk to a uniform target, pause, repeat.

    The canonical ad hoc mobility benchmark.  Every non-paused station
    moves every round, so :meth:`~repro.network.network.Network.advance`
    typically rebuilds rather than patches — pair it with a large
    ``pause`` (or use :class:`BrownianDrift` with a small ``move_prob``
    / :class:`GroupDrift`) when incremental updates matter.

    :param speed: distance covered per round.
    :param pause: rounds a station rests after reaching its waypoint.
    """

    def __init__(
        self,
        speed: float,
        *,
        pause: int = 0,
        seed: int = 0,
        box=None,
    ):
        if speed <= 0:
            raise DeploymentError(f"speed must be > 0, got {speed}")
        if pause < 0:
            raise DeploymentError(f"pause must be >= 0, got {pause}")
        super().__init__(seed=seed, box=box)
        self.speed = float(speed)
        self.pause = int(pause)

    def identity(self) -> tuple:
        return (
            "random-waypoint", self.speed, self.pause,
            _box_identity(self.box), self.seed,
        )

    def session(self, coords: np.ndarray) -> MobilitySession:
        return _WaypointSession(self, coords)


class _GroupSession(MobilitySession):
    """Round-robin group steps under shared, periodically redrawn drifts."""

    def __init__(self, model: "GroupDrift", coords: np.ndarray):
        super().__init__(model, coords)
        self.labels = self.rng.integers(0, model.n_groups, size=self.n)
        self.velocities = model.sigma * self.rng.standard_normal(
            (model.n_groups, self.dim)
        )
        self.step_count = 0

    def _raw(self, coords: np.ndarray, round_no: int) -> np.ndarray:
        model: GroupDrift = self.model  # type: ignore[assignment]
        if self.step_count and self.step_count % model.redraw_every == 0:
            self.velocities = model.sigma * self.rng.standard_normal(
                (model.n_groups, self.dim)
            )
        group = self.step_count % model.n_groups
        self.step_count += 1
        step = np.zeros_like(coords)
        members = self.labels == group
        step[members] = self.velocities[group]
        return step


class GroupDrift(MobilityModel):
    """Cohesive group mobility over any static deployment family.

    Stations are partitioned into ``n_groups`` (seeded uniform labels);
    each round exactly one group — round-robin — takes its group's
    shared drift step, and group velocities are redrawn every
    ``redraw_every`` steps.  A round moves ``~ n / n_groups`` stations,
    so the per-round moved fraction is ``1 / n_groups`` — the sparse
    incremental regime by construction.

    :param sigma: scale of the shared group velocities.
    :param n_groups: number of groups (also the move-fraction inverse).
    :param redraw_every: steps between velocity redraws.
    """

    def __init__(
        self,
        sigma: float,
        *,
        n_groups: int = 8,
        redraw_every: int = 32,
        seed: int = 0,
        box=None,
    ):
        if sigma < 0:
            raise DeploymentError(f"sigma must be >= 0, got {sigma}")
        if n_groups < 1:
            raise DeploymentError(
                f"need at least one group, got {n_groups}"
            )
        if redraw_every < 1:
            raise DeploymentError(
                f"redraw_every must be >= 1, got {redraw_every}"
            )
        super().__init__(seed=seed, box=box)
        self.sigma = float(sigma)
        self.n_groups = int(n_groups)
        self.redraw_every = int(redraw_every)

    def identity(self) -> tuple:
        return (
            "group-drift", self.sigma, self.n_groups, self.redraw_every,
            _box_identity(self.box), self.seed,
        )

    def session(self, coords: np.ndarray) -> MobilitySession:
        return _GroupSession(self, coords)


# ----------------------------------------------------------------------
# the fastsim adapter
# ----------------------------------------------------------------------
def mobility_hook(
    model: MobilityModel,
    *,
    every: int = 1,
    rebuild_fraction: float = MOBILITY_REBUILD_FRACTION,
) -> NetworkHook:
    """Adapt a model to the kernels' per-round network callback.

    The returned hook owns one trajectory: the session starts from the
    first network it is handed, advances once per call (kernels call it
    once per communication round, in order — the ``round_no`` argument
    is informational), and always returns its own current network, so
    multi-stage kernels (consensus boxes, wake-up phases) that re-pass
    the static snapshot still ride the single evolving trajectory.
    Hook construction is deterministic given the model, which is what
    makes ``jobs=N`` grid runs bitwise equal to ``jobs=1`` — every
    worker rebuilds the identical trajectory from the descriptor.

    :param every: advance the deployment every ``every``-th call
        (coarser environment clocks for cheap slow-mobility sweeps).
    :param rebuild_fraction: forwarded to
        :meth:`~repro.network.network.Network.advance`.
    """
    if every < 1:
        raise DeploymentError(f"every must be >= 1, got {every}")
    state: dict = {"session": None, "net": None, "calls": 0}

    def hook(round_no: int, network: Network) -> Network:
        if state["session"] is None:
            state["session"] = model.session(network.coords)
            state["net"] = network
        net = state["net"]
        if state["calls"] % every == 0:
            disp = state["session"].displacements(
                net.coords, state["calls"]
            )
            net = net.advance(disp, rebuild_fraction=rebuild_fraction)
            state["net"] = net
        state["calls"] += 1
        return net

    return hook
