"""Corridor deployments — long thin strips for obstacle-channeled traffic.

A corridor is a uniform deployment in ``[0, length] x [0, width]`` with
``width`` well below the communication radius: locally the point set
looks one-dimensional at probe radii above ``width`` (growth dimension
between 1 and 2), and every long-range link runs along one axis — the
natural stage for :class:`repro.sinr.channel.ObstacleMask` walls, which
E13 drops across the corridor to channel the broadcast through a gap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeploymentError, DisconnectedNetworkError
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def corridor(
    n: int,
    length: float,
    width: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    *,
    max_attempts: int = 50,
    name: str = "corridor",
    channel=None,
) -> Network:
    """``n`` stations uniform in a ``length x width`` strip.

    Connectivity along the strip needs roughly one station per
    communication radius of corridor, so densities comfortably above
    ``n > length / r`` connect within a few redraws.

    :param channel: optional channel model forwarded to the network
        (e.g. an obstacle mask laid across the corridor).
    :raises DisconnectedNetworkError: if no connected draw is found.
    """
    if n < 1:
        raise DeploymentError(f"need at least one station, got n={n}")
    if length <= 0 or width <= 0:
        raise DeploymentError(
            f"corridor extents must be positive, got {length} x {width}"
        )
    if width > length:
        raise DeploymentError(
            f"corridor width {width} exceeds length {length}; swap them"
        )
    if params is None:
        params = SINRParameters.default()
    for _ in range(max_attempts):
        coords = np.column_stack(
            [
                rng.uniform(0.0, length, size=n),
                rng.uniform(0.0, width, size=n),
            ]
        )
        net = Network(coords, params=params, name=name, channel=channel)
        if net.is_connected:
            return net
    raise DisconnectedNetworkError(
        f"corridor deployment (n={n}, {length} x {width}) stayed "
        f"disconnected after {max_attempts} attempts; increase density"
    )
