"""Grid deployments — controlled-diameter workloads.

A grid with spacing ``s <= (1-eps) r / sqrt(2)`` has a communication graph
containing the king-graph of the grid, so its diameter is
``max(rows, cols) - 1`` up to a small constant; grids are the workload of
choice when an experiment sweeps the diameter ``D`` at fixed density.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeploymentError
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def grid(
    rows: int,
    cols: int,
    spacing: float,
    params: Optional[SINRParameters] = None,
    name: str = "grid",
) -> Network:
    """A ``rows x cols`` grid with the given spacing.

    :param spacing: distance between grid neighbours; choose
        ``<= comm_radius`` so the graph is connected.
    """
    if rows < 1 or cols < 1:
        raise DeploymentError(f"grid must be at least 1x1, got {rows}x{cols}")
    if spacing <= 0:
        raise DeploymentError(f"grid spacing must be positive, got {spacing}")
    if params is None:
        params = SINRParameters.default()
    ys, xs = np.mgrid[0:rows, 0:cols]
    coords = np.column_stack([xs.ravel() * spacing, ys.ravel() * spacing])
    return Network(coords, params=params, name=name)


def grid_chain(
    length: int,
    width: int = 2,
    spacing: float = 0.5,
    params: Optional[SINRParameters] = None,
) -> Network:
    """A long, thin grid — the canonical diameter-sweep workload.

    ``length`` columns by ``width`` rows; the diameter grows linearly with
    ``length`` while density (hence ``Delta`` and per-hop congestion) stays
    constant, isolating the ``D`` factor of the broadcast bounds.
    """
    return grid(width, length, spacing, params=params, name="grid-chain")


def jittered_grid(
    rows: int,
    cols: int,
    spacing: float,
    jitter: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    name: str = "jittered-grid",
) -> Network:
    """A grid with per-station uniform jitter in ``[-jitter, jitter]^2``.

    Breaking the exact symmetry of the grid exercises reception ties and
    non-uniform local densities without changing the macro structure.
    ``jitter`` must stay below ``spacing / 2`` to keep stations distinct.
    """
    if jitter < 0:
        raise DeploymentError(f"jitter must be >= 0, got {jitter}")
    if jitter >= spacing / 2:
        raise DeploymentError(
            f"jitter {jitter} too large for spacing {spacing}; "
            "stations could collide"
        )
    base = grid(rows, cols, spacing, params=params, name=name)
    offset = rng.uniform(-jitter, jitter, size=base.coords.shape)
    return Network(
        base.coords + offset, params=base.params, name=name
    )
