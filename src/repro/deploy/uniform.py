"""Uniform random deployments."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import DeploymentError, DisconnectedNetworkError
from repro.network.network import Network
from repro.sinr.params import SINRParameters


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DeploymentError(message)


def uniform_square(
    n: int,
    side: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    *,
    max_attempts: int = 50,
    name: str = "uniform-square",
) -> Network:
    """``n`` stations uniform in an axis-aligned square of given side.

    Redraws up to ``max_attempts`` times until the communication graph is
    connected — the standard way to sample connected random geometric
    graphs.  Densities well above the connectivity threshold
    (``n >> (side/r)^2 log n``) connect on the first draw.

    :raises DisconnectedNetworkError: if no connected draw is found.
    """
    _require(n >= 1, f"need at least one station, got n={n}")
    _require(side > 0, f"square side must be positive, got {side}")
    if params is None:
        params = SINRParameters.default()
    last_error = None
    for _ in range(max_attempts):
        coords = rng.uniform(0.0, side, size=(n, 2))
        net = Network(coords, params=params, name=name)
        if net.is_connected:
            return net
        last_error = DisconnectedNetworkError(
            f"uniform square deployment (n={n}, side={side}) stayed "
            f"disconnected after {max_attempts} attempts; increase density"
        )
    assert last_error is not None
    raise last_error


def uniform_cube(
    n: int,
    side: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    *,
    max_attempts: int = 50,
    name: str = "uniform-cube",
    channel=None,
) -> Network:
    """``n`` stations uniform in an axis-aligned cube — the 3D deployment.

    The metric is inferred from the coordinate dimension
    (``EuclideanMetric(3)``, growth dimension 3), so protocol constants
    and the growth certification tests see the right ``gamma``.  The 3D
    connectivity threshold is lower than 2D at equal side (each station
    sees a ball, not a disk, of neighbours, but volume dilutes density
    faster); like the other generators this redraws until connected.

    :param channel: optional channel model forwarded to the network.
    :raises DisconnectedNetworkError: if no connected draw is found.
    """
    _require(n >= 1, f"need at least one station, got n={n}")
    _require(side > 0, f"cube side must be positive, got {side}")
    if params is None:
        params = SINRParameters.default()
    for _ in range(max_attempts):
        coords = rng.uniform(0.0, side, size=(n, 3))
        net = Network(coords, params=params, name=name, channel=channel)
        if net.is_connected:
            return net
    raise DisconnectedNetworkError(
        f"uniform cube deployment (n={n}, side={side}) stayed "
        f"disconnected after {max_attempts} attempts; increase density"
    )


def uniform_disk(
    n: int,
    radius: float,
    rng: np.random.Generator,
    params: Optional[SINRParameters] = None,
    *,
    max_attempts: int = 50,
    name: str = "uniform-disk",
) -> Network:
    """``n`` stations uniform in a disk (area-uniform, via sqrt sampling)."""
    _require(n >= 1, f"need at least one station, got n={n}")
    _require(radius > 0, f"disk radius must be positive, got {radius}")
    if params is None:
        params = SINRParameters.default()
    for _ in range(max_attempts):
        r = radius * np.sqrt(rng.uniform(0.0, 1.0, size=n))
        theta = rng.uniform(0.0, 2.0 * math.pi, size=n)
        coords = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        net = Network(coords, params=params, name=name)
        if net.is_connected:
            return net
    raise DisconnectedNetworkError(
        f"uniform disk deployment (n={n}, radius={radius}) stayed "
        f"disconnected after {max_attempts} attempts; increase density"
    )
