"""Vectorized broadcast protocols and baselines.

Mirrors :mod:`repro.core.broadcast_spont`,
:mod:`repro.core.broadcast_nospont` and :mod:`repro.baselines` on flat
arrays.  All functions return :class:`~repro.core.outcome.BroadcastOutcome`
so the experiment harness treats reference and fast runs uniformly.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.constants import ColoringSchedule, ProtocolConstants, log2ceil
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.fastsim.coloring import fast_coloring
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception


def _check_source(network: Network, source: int) -> None:
    if not 0 <= source < network.size:
        raise ProtocolError(f"source {source} outside station range")


def _dissemination_loop(
    network: Network,
    rng: np.random.Generator,
    informed: np.ndarray,
    informed_round: np.ndarray,
    prob_of_round: Callable[[int, np.ndarray], np.ndarray],
    start_round: int,
    budget: int,
) -> int:
    """Run flooding rounds until everyone informed or budget exhausted.

    :param prob_of_round: maps ``(round_no, informed_mask)`` to the
        per-station transmission probability array.
    :returns: the first unused round number.
    """
    gains = network.gains
    noise = network.params.noise
    beta = network.params.beta
    n = network.size
    round_no = start_round
    end = start_round + budget
    remaining = n - int(informed.sum())
    while remaining > 0 and round_no < end:
        probs = prob_of_round(round_no, informed)
        tx_mask = rng.random(n) < probs
        transmitters = np.flatnonzero(tx_mask)
        if transmitters.size:
            heard_from = resolve_reception(gains, transmitters, noise, beta)
            newly = (heard_from != NO_SENDER) & ~informed
            if newly.any():
                informed[newly] = True
                informed_round[newly] = round_no
                remaining -= int(newly.sum())
        round_no += 1
    return round_no


def _outcome(
    algorithm: str,
    informed_round: np.ndarray,
    total_rounds: int,
    extras: Optional[dict] = None,
) -> BroadcastOutcome:
    success = bool(np.all(informed_round != NEVER_INFORMED))
    completion = int(informed_round.max()) if success else NEVER_INFORMED
    return BroadcastOutcome(
        success=success,
        completion_round=completion,
        total_rounds=total_rounds,
        informed_round=informed_round.copy(),
        algorithm=algorithm,
        extras=extras or {},
    )


# ----------------------------------------------------------------------
# the paper's algorithms
# ----------------------------------------------------------------------
def fast_spont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    tighten_eps: bool = True,
) -> BroadcastOutcome:
    """Vectorized ``SBroadcast`` (Theorem 2)."""
    if constants is None:
        constants = ProtocolConstants.practical()
    if tighten_eps:
        constants = constants.with_eps_prime()
    if rng is None:
        rng = np.random.default_rng(0)
    _check_source(network, source)
    n = network.size
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, NEVER_INFORMED, dtype=int)
    informed_round[source] = 0

    coloring = fast_coloring(
        network, constants, rng,
        informed=informed, informed_round=informed_round,
    )
    colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
    logn = log2ceil(n)
    diss_probs = np.minimum(1.0, colors * constants.dissemination / logn)

    # Pilot round: the source transmits alone.
    gains = network.gains
    heard_from = resolve_reception(
        gains, np.array([source]), network.params.noise, network.params.beta
    )
    pilot_round = coloring.rounds
    newly = (heard_from != NO_SENDER) & ~informed
    informed[newly] = True
    informed_round[newly] = pilot_round

    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = budget_scale * (depth * logn + logn * logn)

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, diss_probs, 0.0)

    last = _dissemination_loop(
        network, rng, informed, informed_round, probs,
        pilot_round + 1, round_budget,
    )
    return _outcome(
        "SBroadcast(fast)", informed_round, last,
        {"coloring_rounds": coloring.rounds, "colors": colors},
    )


def fast_nospont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    max_phases: Optional[int] = None,
    budget_slack: int = 8,
) -> BroadcastOutcome:
    """Vectorized ``NoSBroadcast`` (Theorem 1).

    Phases run until every station is informed or ``max_phases`` elapse
    (default ``2 * ecc + slack``, matching the reference driver's budget).
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    _check_source(network, source)
    n = network.size
    schedule = ColoringSchedule(constants=constants, n=n)
    logn = log2ceil(n)
    part2 = constants.part2_rounds(n)

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, NEVER_INFORMED, dtype=int)
    informed_round[source] = 0

    if max_phases is None:
        depth = network.eccentricity(source) if n > 1 else 0
        max_phases = 2 * depth + budget_slack

    round_no = 0
    phases_used = 0
    for _phase in range(max_phases):
        if informed.all():
            break
        phases_used += 1
        active = informed.copy()  # fixed at the phase boundary
        coloring = fast_coloring(
            network, constants, rng,
            participants=active,
            informed=informed, informed_round=informed_round,
            round_offset=round_no,
        )
        round_no += coloring.rounds
        colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
        diss = np.minimum(1.0, colors * constants.dissemination / logn)
        diss = np.where(active, diss, 0.0)

        def probs(_round_no: int, _inf: np.ndarray) -> np.ndarray:
            # Only the stations active at the phase start disseminate.
            return diss

        round_no = _dissemination_loop(
            network, rng, informed, informed_round, probs, round_no, part2
        )
    return _outcome(
        "NoSBroadcast(fast)", informed_round, round_no,
        {
            "phase_rounds": constants.phase_rounds(n),
            "phases_used": phases_used,
        },
    )


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def fast_uniform_broadcast(
    network: Network,
    source: int,
    q: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 64,
) -> BroadcastOutcome:
    """Vectorized fixed-probability flooding (baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    _check_source(network, source)
    n = network.size
    if q is None:
        q = 1.0 / max(1, network.max_degree)
    if not 0 < q <= 1:
        raise ProtocolError(f"q must be in (0, 1], got {q}")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, NEVER_INFORMED, dtype=int)
    informed_round[source] = 0
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = max(
            64, budget_scale * (depth + 1) * max(1, int(1.0 / q))
        )

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, q, 0.0)

    last = _dissemination_loop(
        network, rng, informed, informed_round, probs, 0, round_budget
    )
    return _outcome("UniformFlood(fast)", informed_round, last, {"q": q})


def fast_decay_broadcast(
    network: Network,
    source: int,
    rng: Optional[np.random.Generator] = None,
    *,
    ladder_len: Optional[int] = None,
    round_budget: Optional[int] = None,
    budget_scale: int = 96,
) -> BroadcastOutcome:
    """Vectorized Decay sweep (the granularity-sensitive baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    _check_source(network, source)
    n = network.size
    if ladder_len is None:
        ladder_len = log2ceil(n) + 1
    if ladder_len < 1:
        raise ProtocolError(f"ladder length must be >= 1, got {ladder_len}")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, NEVER_INFORMED, dtype=int)
    informed_round[source] = 0
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = max(
            8 * ladder_len, budget_scale * (depth + 1) * ladder_len
        )

    def probs(round_no: int, inf: np.ndarray) -> np.ndarray:
        rung = round_no % ladder_len
        return np.where(inf, 2.0 ** (-rung), 0.0)

    last = _dissemination_loop(
        network, rng, informed, informed_round, probs, 0, round_budget
    )
    return _outcome(
        "DecaySweep(fast)", informed_round, last, {"ladder_len": ladder_len}
    )


def fast_local_broadcast_global(
    network: Network,
    source: int,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    phase_scale: float = 2.0,
) -> BroadcastOutcome:
    """Vectorized local-broadcast composition (``Delta``-paying baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    _check_source(network, source)
    n = network.size
    delta = max(1, network.max_degree)
    q = 1.0 / (2.0 * delta)
    logn = log2ceil(n)
    phase_len = max(1, int(phase_scale * (delta + logn) * logn))
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, NEVER_INFORMED, dtype=int)
    informed_round[source] = 0
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = (2 * depth + budget_slack) * phase_len

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, q, 0.0)

    last = _dissemination_loop(
        network, rng, informed, informed_round, probs, 0, round_budget
    )
    return _outcome(
        "LocalBroadcastGlobal(fast)", informed_round, last,
        {"max_degree": delta, "phase_length": phase_len},
    )
