"""Vectorized broadcast protocols and baselines.

Mirrors :mod:`repro.core.broadcast_spont`,
:mod:`repro.core.broadcast_nospont` and :mod:`repro.baselines` on flat
arrays.  All functions return :class:`~repro.core.outcome.BroadcastOutcome`
so the experiment harness treats reference and fast runs uniformly.

Every protocol has a batched form (``fast_*_batch``) running ``B``
replications through :mod:`repro.fastsim.engine` in one set of numpy
operations; the plain ``fast_*`` functions are the ``B = 1`` case, so a
batched sweep and a loop of single runs over the same seed-spawned
generators produce identical per-replication outcomes (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.constants import ColoringSchedule, ProtocolConstants, log2ceil
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.fastsim.coloring import fast_coloring_batch
from repro.fastsim.engine import dissemination_loop_batch
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception_batch

Rngs = Sequence[np.random.Generator]


def _check_source(network: Network, source: int) -> None:
    if not 0 <= source < network.size:
        raise ProtocolError(f"source {source} outside station range")


def _source_state(
    B: int, n: int, source: int
) -> tuple[np.ndarray, np.ndarray]:
    informed = np.zeros((B, n), dtype=bool)
    informed[:, source] = True
    informed_round = np.full((B, n), NEVER_INFORMED, dtype=int)
    informed_round[:, source] = 0
    return informed, informed_round


def _outcomes(
    algorithm: str,
    informed_round: np.ndarray,
    total_rounds: np.ndarray,
    extras: Optional[Callable[[int], dict]] = None,
) -> list[BroadcastOutcome]:
    """Per-replication outcome records from batched state."""
    results = []
    for b in range(informed_round.shape[0]):
        success = bool(np.all(informed_round[b] != NEVER_INFORMED))
        completion = (
            int(informed_round[b].max()) if success else NEVER_INFORMED
        )
        results.append(
            BroadcastOutcome(
                success=success,
                completion_round=completion,
                total_rounds=int(total_rounds[b]),
                informed_round=informed_round[b].copy(),
                algorithm=algorithm,
                extras=extras(b) if extras else {},
            )
        )
    return results


def dissemination_probs(
    colors: np.ndarray, constants: ProtocolConstants, n: int
) -> np.ndarray:
    """Vectorized part-2 probability ``min(1, p_v * c / log n)``."""
    return np.minimum(1.0, colors * constants.dissemination / log2ceil(n))


# ----------------------------------------------------------------------
# the paper's algorithms
# ----------------------------------------------------------------------
def fast_spont_broadcast_batch(
    network: Network,
    source: int,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    tighten_eps: bool = True,
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched vectorized ``SBroadcast`` (Theorem 2).

    ``network_hook`` (optional, DESIGN.md §7) threads a per-round
    network callback through the coloring, the pilot round and the
    dissemination loop, so the broadcast runs over a moving deployment.
    ``mac_hook`` (optional, DESIGN.md §11) threads the per-slot
    transmit-decision callback through the same three stages; MAC
    arbitration is shared across replications (round-keyed draws), so
    the pilot round's single shared resolution is preserved.
    """
    if tighten_eps:
        constants = constants.with_eps_prime()
    _check_source(network, source)
    n = network.size
    B = len(rngs)
    informed, informed_round = _source_state(B, n, source)

    coloring = fast_coloring_batch(
        network, constants, rngs,
        informed=informed, informed_round=informed_round,
        network_hook=network_hook, mac_hook=mac_hook,
    )
    colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
    diss_probs = dissemination_probs(colors, constants, n)

    # Pilot round: the source transmits alone (deterministic — resolved
    # once and shared across replications, which only differ in their
    # informed sets at this point).  Under a MAC the arbitration is
    # still shared (round-keyed draws), so the filtered mask stays one
    # row and the shared resolve is preserved bit-for-bit.
    pilot_tx = np.zeros((1, n), dtype=bool)
    pilot_tx[0, source] = True
    pilot_round = coloring.rounds
    if network_hook is not None:
        network = network_hook(pilot_round, network)
    if mac_hook is not None:
        pilot_tx = mac_hook(pilot_round, pilot_tx, network)
    heard_from = resolve_reception_batch(
        network.gain_operator, pilot_tx, network.params.noise,
        network.params.beta, kernel=network.kernel_kind,
    )[0]
    newly = (heard_from != NO_SENDER)[None, :] & ~informed
    informed |= newly
    informed_round[newly] = pilot_round

    if round_budget is None:
        logn = log2ceil(n)
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = budget_scale * (depth * logn + logn * logn)

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, diss_probs, 0.0)

    last = dissemination_loop_batch(
        network, rngs, informed, informed_round, probs,
        pilot_round + 1, round_budget, network_hook=network_hook,
        mac_hook=mac_hook,
    )
    return _outcomes(
        "SBroadcast(fast)", informed_round, last,
        lambda b: {"coloring_rounds": coloring.rounds, "colors": colors[b]},
    )


def fast_spont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    tighten_eps: bool = True,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized ``SBroadcast`` (Theorem 2)."""
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_spont_broadcast_batch(
        network, source, constants, [rng],
        round_budget=round_budget, budget_scale=budget_scale,
        tighten_eps=tighten_eps, network_hook=network_hook,
        mac_hook=mac_hook,
    )[0]


def fast_nospont_broadcast_batch(
    network: Network,
    source: int,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    max_phases: Optional[int] = None,
    budget_slack: int = 8,
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched vectorized ``NoSBroadcast`` (Theorem 1).

    Phases run until every replication has informed every station or
    ``max_phases`` elapse (default ``2 * ecc + slack``).  A replication
    that completes stops participating (and stops consuming randomness)
    at the next phase boundary; per-replication round counts reflect the
    phase in which each finished.
    """
    _check_source(network, source)
    n = network.size
    B = len(rngs)
    schedule = ColoringSchedule(constants=constants, n=n)
    part2 = constants.part2_rounds(n)

    informed, informed_round = _source_state(B, n, source)

    if max_phases is None:
        depth = network.eccentricity(source) if n > 1 else 0
        max_phases = 2 * depth + budget_slack

    round_no = 0
    phases_used = np.zeros(B, dtype=int)
    total_rounds = np.zeros(B, dtype=int)
    for _phase in range(max_phases):
        running = ~informed.all(axis=1)
        if not running.any():
            break
        phases_used[running] += 1
        active = informed & running[:, None]  # fixed at the phase boundary
        coloring = fast_coloring_batch(
            network, constants, rngs,
            participants=active,
            informed=informed, informed_round=informed_round,
            round_offset=round_no,
            enabled=running,
            network_hook=network_hook,
            mac_hook=mac_hook,
        )
        round_no += coloring.rounds
        colors = np.where(np.isnan(coloring.colors), 0.0, coloring.colors)
        diss = dissemination_probs(colors, constants, n)
        diss = np.where(active, diss, 0.0)

        def probs(_round_no: int, _inf: np.ndarray) -> np.ndarray:
            # Only the stations active at the phase start disseminate.
            return diss

        last = dissemination_loop_batch(
            network, rngs, informed, informed_round, probs,
            round_no, part2, enabled=running, network_hook=network_hook,
            mac_hook=mac_hook,
        )
        round_no = round_no + part2
        total_rounds[running] = np.where(
            informed.all(axis=1)[running], last[running], round_no
        )
    return _outcomes(
        "NoSBroadcast(fast)", informed_round, total_rounds,
        lambda b: {
            "phase_rounds": constants.phase_rounds(n),
            "phases_used": int(phases_used[b]),
        },
    )


def fast_nospont_broadcast(
    network: Network,
    source: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    max_phases: Optional[int] = None,
    budget_slack: int = 8,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized ``NoSBroadcast`` (Theorem 1)."""
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_nospont_broadcast_batch(
        network, source, constants, [rng],
        max_phases=max_phases, budget_slack=budget_slack,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def _flood_batch(
    algorithm: str,
    network: Network,
    source: int,
    rngs: Rngs,
    prob_of_round: Callable[[int, np.ndarray], np.ndarray],
    round_budget: int,
    extras: Callable[[int], dict],
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    n = network.size
    informed, informed_round = _source_state(len(rngs), n, source)
    last = dissemination_loop_batch(
        network, rngs, informed, informed_round, prob_of_round,
        0, round_budget, network_hook=network_hook, mac_hook=mac_hook,
    )
    return _outcomes(algorithm, informed_round, last, extras)


def fast_uniform_broadcast_batch(
    network: Network,
    source: int,
    rngs: Rngs,
    q: Optional[float] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 64,
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched fixed-probability flooding (baseline)."""
    _check_source(network, source)
    if q is None:
        q = 1.0 / max(1, network.max_degree)
    if not 0 < q <= 1:
        raise ProtocolError(f"q must be in (0, 1], got {q}")
    if round_budget is None:
        depth = network.eccentricity(source) if network.size > 1 else 0
        round_budget = max(
            64, budget_scale * (depth + 1) * max(1, int(1.0 / q))
        )

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, q, 0.0)

    return _flood_batch(
        "UniformFlood(fast)", network, source, rngs, probs, round_budget,
        lambda b: {"q": q}, network_hook=network_hook, mac_hook=mac_hook,
    )


def fast_uniform_broadcast(
    network: Network,
    source: int,
    q: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 64,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized fixed-probability flooding (baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_uniform_broadcast_batch(
        network, source, [rng], q,
        round_budget=round_budget, budget_scale=budget_scale,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]


def fast_decay_broadcast_batch(
    network: Network,
    source: int,
    rngs: Rngs,
    *,
    ladder_len: Optional[int] = None,
    round_budget: Optional[int] = None,
    budget_scale: int = 96,
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched Decay sweep (the granularity-sensitive baseline)."""
    _check_source(network, source)
    n = network.size
    if ladder_len is None:
        ladder_len = log2ceil(n) + 1
    if ladder_len < 1:
        raise ProtocolError(f"ladder length must be >= 1, got {ladder_len}")
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = max(
            8 * ladder_len, budget_scale * (depth + 1) * ladder_len
        )

    def probs(round_no: int, inf: np.ndarray) -> np.ndarray:
        rung = round_no % ladder_len
        return np.where(inf, 2.0 ** (-rung), 0.0)

    return _flood_batch(
        "DecaySweep(fast)", network, source, rngs, probs, round_budget,
        lambda b: {"ladder_len": ladder_len},
        network_hook=network_hook, mac_hook=mac_hook,
    )


def fast_decay_broadcast(
    network: Network,
    source: int,
    rng: Optional[np.random.Generator] = None,
    *,
    ladder_len: Optional[int] = None,
    round_budget: Optional[int] = None,
    budget_scale: int = 96,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized Decay sweep (the granularity-sensitive baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_decay_broadcast_batch(
        network, source, [rng],
        ladder_len=ladder_len, round_budget=round_budget,
        budget_scale=budget_scale,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]


def fast_local_broadcast_global_batch(
    network: Network,
    source: int,
    rngs: Rngs,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    phase_scale: float = 2.0,
    network_hook=None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched local-broadcast composition (``Delta``-paying baseline)."""
    _check_source(network, source)
    n = network.size
    delta = max(1, network.max_degree)
    q = 1.0 / (2.0 * delta)
    logn = log2ceil(n)
    phase_len = max(1, int(phase_scale * (delta + logn) * logn))
    if round_budget is None:
        depth = network.eccentricity(source) if n > 1 else 0
        round_budget = (2 * depth + budget_slack) * phase_len

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, q, 0.0)

    return _flood_batch(
        "LocalBroadcastGlobal(fast)", network, source, rngs, probs,
        round_budget,
        lambda b: {"max_degree": delta, "phase_length": phase_len},
        network_hook=network_hook, mac_hook=mac_hook,
    )


def fast_local_broadcast_global(
    network: Network,
    source: int,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    phase_scale: float = 2.0,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized local-broadcast composition (``Delta``-paying baseline)."""
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_local_broadcast_global_batch(
        network, source, [rng],
        round_budget=round_budget, budget_slack=budget_slack,
        phase_scale=phase_scale,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]
