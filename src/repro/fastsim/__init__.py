"""Vectorized re-implementations of the protocols for large sweeps.

The reference implementation (:mod:`repro.sim` + :mod:`repro.core`) keeps
per-station state machines for fidelity and readability; this package
re-implements the same protocols on flat numpy arrays, trading the object
model for an order of magnitude in speed.  Both share
:class:`repro.core.constants.ColoringSchedule` for all round arithmetic,
so their phase structures are identical by construction; integration tests
cross-validate their outputs statistically (colorings satisfying the same
mass bounds, broadcasts/wake-ups/consensus completing in comparable
rounds with identical safety properties).

Every protocol exists in two forms: a single-instance function
(``fast_coloring``, ``fast_spont_broadcast``, ``fast_wakeup``,
``fast_consensus``, ``fast_leader_election``, ...) and a batched kernel
(``*_batch``) that runs ``B`` independent seed-spawned replications in
one set of numpy operations.  The single-instance form is exactly the
``B = 1`` case of the batched kernel, so batched sweeps through
:func:`repro.fastsim.sweep.run_sweep` reproduce a sequential replication
loop sample for sample (DESIGN.md §6 states the contract).

One intentional simplification: during a *global* coloring stage the
reference implementation lets any reception from an informed station carry
the broadcast payload.  The fast implementations track the same effect via
an explicit ``informed`` mask (receivers of informed senders become
informed), so message spread during coloring matches the reference
semantics exactly.
"""

from repro.fastsim.coloring import (
    FastColoringBatch,
    FastColoringResult,
    fast_coloring,
    fast_coloring_batch,
)
from repro.fastsim.broadcast import (
    fast_spont_broadcast,
    fast_spont_broadcast_batch,
    fast_nospont_broadcast,
    fast_nospont_broadcast_batch,
    fast_decay_broadcast,
    fast_decay_broadcast_batch,
    fast_uniform_broadcast,
    fast_uniform_broadcast_batch,
    fast_local_broadcast_global,
    fast_local_broadcast_global_batch,
)
from repro.fastsim.wakeup import (
    VectorColoringState,
    fast_adhoc_wakeup,
    fast_adhoc_wakeup_batch,
    fast_colored_wakeup,
    fast_colored_wakeup_batch,
    fast_wakeup,
)
from repro.fastsim.consensus import fast_consensus, fast_consensus_batch
from repro.fastsim.leader import (
    fast_leader_election,
    fast_leader_election_batch,
)
from repro.fastsim.engine import spawn_rngs
from repro.fastsim.sweep import SweepResult, run_sweep, sweep_kinds
from repro.fastsim.cache import ResultCache, point_key
from repro.fastsim.grid import (
    Derived,
    GridOptions,
    GridPoint,
    GridPointResult,
    GridSpec,
    get_default_grid_options,
    last_grid_stats,
    run_grid,
    set_default_grid_options,
)

__all__ = [
    "Derived",
    "FastColoringBatch",
    "FastColoringResult",
    "GridOptions",
    "GridPoint",
    "GridPointResult",
    "GridSpec",
    "ResultCache",
    "SweepResult",
    "VectorColoringState",
    "fast_adhoc_wakeup",
    "fast_adhoc_wakeup_batch",
    "fast_coloring",
    "fast_coloring_batch",
    "fast_colored_wakeup",
    "fast_colored_wakeup_batch",
    "fast_consensus",
    "fast_consensus_batch",
    "fast_decay_broadcast",
    "fast_decay_broadcast_batch",
    "fast_leader_election",
    "fast_leader_election_batch",
    "fast_local_broadcast_global",
    "fast_local_broadcast_global_batch",
    "fast_nospont_broadcast",
    "fast_nospont_broadcast_batch",
    "fast_spont_broadcast",
    "fast_spont_broadcast_batch",
    "fast_uniform_broadcast",
    "fast_uniform_broadcast_batch",
    "fast_wakeup",
    "get_default_grid_options",
    "last_grid_stats",
    "point_key",
    "run_grid",
    "run_sweep",
    "set_default_grid_options",
    "spawn_rngs",
    "sweep_kinds",
]
