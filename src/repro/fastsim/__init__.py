"""Vectorized re-implementations of the protocols for large sweeps.

The reference implementation (:mod:`repro.sim` + :mod:`repro.core`) keeps
per-station state machines for fidelity and readability; this package
re-implements the same protocols on flat numpy arrays, trading the object
model for an order of magnitude in speed.  Both share
:class:`repro.core.constants.ColoringSchedule` for all round arithmetic,
so their phase structures are identical by construction; integration tests
cross-validate their outputs statistically (colorings satisfying the same
mass bounds, broadcasts completing in comparable rounds).

One intentional simplification: during a *global* coloring stage the
reference implementation lets any reception from an informed station carry
the broadcast payload.  The fast implementations track the same effect via
an explicit ``informed`` mask (receivers of informed senders become
informed), so message spread during coloring matches the reference
semantics exactly.
"""

from repro.fastsim.coloring import FastColoringResult, fast_coloring
from repro.fastsim.broadcast import (
    fast_spont_broadcast,
    fast_nospont_broadcast,
    fast_decay_broadcast,
    fast_uniform_broadcast,
    fast_local_broadcast_global,
)

__all__ = [
    "FastColoringResult",
    "fast_coloring",
    "fast_spont_broadcast",
    "fast_nospont_broadcast",
    "fast_decay_broadcast",
    "fast_uniform_broadcast",
    "fast_local_broadcast_global",
]
