"""Batched replication substrate for the vectorized protocols.

The sweep engine (:mod:`repro.fastsim.sweep`) runs ``B`` independent
replications of one protocol on one deployment in a single set of numpy
operations.  This module holds the shared machinery:

* **seed-spawned generators** — every replication owns a generator
  spawned from one ``SeedSequence``, exactly like
  :func:`repro.experiments.base.trial_rngs`, so a batched sweep and a
  Python loop over single runs see the *same* random streams;
* **blocked Bernoulli draws** — a generator filling ``(rounds, n)`` in
  one call yields the identical stream to ``rounds`` successive
  ``random(n)`` calls, so draws can be batched per protocol block without
  changing any replication's sample path;
* **the batched dissemination loop** — the flooding primitive under all
  broadcast-style protocols, advancing every replication's informed set
  per round and retiring replications independently as they complete.

The equivalence contract (DESIGN.md §6): every replication's arithmetic
involves only its own ``(n,)`` slice — reductions run along station axes,
never across the batch — so outputs are bitwise independent of the batch
size.  The single-instance ``fast_*`` functions are the ``B = 1`` special
case of the batched kernels, which makes "batched sweep == loop of
single runs" an identity checked by the hypothesis suite, not a tolerance.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro import kernels as _kernels
from repro.errors import ProtocolError
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception_batch

#: Filler for replications that must not consume randomness this round;
#: transmission tests are strict (``draw < prob``), so a filler of 1.0
#: can never transmit.
NO_DRAW: float = 1.0

#: Rounds of Bernoulli draws buffered per generator call in open-ended
#: loops (amortizes generator-call overhead without changing streams).
DRAW_CHUNK: int = 16


def spawn_rngs(
    n_replications: int, seed: "int | np.random.SeedSequence"
) -> list[np.random.Generator]:
    """One independent generator per replication, spawned from ``seed``.

    Identical spawning discipline to ``repro.experiments.base.trial_rngs``:
    replication ``b`` of a batched sweep gets the same stream as trial
    ``b`` of a sequential experiment loop with the same master seed.

    ``seed`` may also be a ``numpy.random.SeedSequence`` (the grid layer
    hands every sweep a child sequence spawned from the grid's master
    seed, DESIGN.md §6.3); the sequence must be fresh — spawning from an
    already-spawned sequence yields different children.
    """
    if n_replications < 1:
        raise ProtocolError(
            f"need at least one replication, got {n_replications}"
        )
    seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [np.random.default_rng(child) for child in seq.spawn(n_replications)]


def draw_block(
    rngs: Sequence[np.random.Generator],
    active: np.ndarray,
    rounds: int,
    n: int,
) -> np.ndarray:
    """Uniform draws for ``rounds`` rounds of every *active* replication.

    Inactive replications consume no randomness (their slots are filled
    with :data:`NO_DRAW`), keeping each generator's stream aligned with a
    single-instance run that skipped the same block.

    :returns: ``(B, rounds, n)`` array of draws.
    """
    B = len(rngs)
    out = np.full((B, rounds, n), NO_DRAW)
    for b in np.flatnonzero(active):
        out[b] = rngs[b].random((rounds, n))
    return out


def dissemination_loop_batch(
    network: Network,
    rngs: Sequence[np.random.Generator],
    informed: np.ndarray,
    informed_round: np.ndarray,
    prob_of_round: Callable[[int, np.ndarray], np.ndarray],
    start_round: int,
    budget: int,
    enabled: Optional[np.ndarray] = None,
    network_hook: Optional[Callable[[int, Network], Network]] = None,
    mac_hook=None,
) -> np.ndarray:
    """Batched flooding until every replication informs everyone or times out.

    The ``B = 1`` case reproduces the classic single-instance loop: run
    rounds from ``start_round``, stop as soon as the informed set covers
    the network, return the first unused round number.  Replications
    retire independently; retired (and disabled) replications neither
    transmit nor consume randomness.

    :param informed: ``(B, n)`` boolean mask, updated in place.
    :param informed_round: ``(B, n)`` int array, updated in place.
    :param prob_of_round: maps ``(round_no, informed)`` to the ``(B, n)``
        transmission-probability array.
    :param enabled: optional ``(B,)`` mask of replications that run at
        all (disabled ones are reported as stopping at ``start_round``).
    :param network_hook: optional per-round network callback
        (DESIGN.md §7): called once per round, in order, before
        reception is resolved; the returned network's gain operator
        serves the round, so protocols run over a moving deployment.
        All replications share the one trajectory — the *environment*
        moves, replications differ only in protocol randomness.  Hooks
        must be stateful (own their trajectory, like
        :func:`repro.deploy.mobility.mobility_hook`): multi-stage
        kernels re-pass their static snapshot, not a previous stage's
        result.
    :param mac_hook: optional per-slot transmit-decision callback
        (:data:`repro.mac.TransmitHook`, DESIGN.md §11): called after
        the protocol's transmission intents are computed (and after the
        network hook, so arbitration sees the round's geometry), it
        returns the subset of intents actually transmitting.  MACs only
        *remove* transmitters; protocol state advances on the filtered
        mask, exactly as a real station that deferred would not have
        been heard.
    :returns: ``(B,)`` per-replication first unused round number.
    """
    B, n = informed.shape
    gains = network.gain_operator
    kern = network.kernel_kind
    fused = _kernels.use_compiled_updates(kern)
    noise = network.params.noise
    beta = network.params.beta
    if enabled is None:
        enabled = np.ones(B, dtype=bool)
    running = enabled & ~informed.all(axis=1)
    last = np.full(B, start_round, dtype=int)
    round_no = start_round
    end = start_round + budget
    buffer = None
    while round_no < end and running.any():
        k = (round_no - start_round) % DRAW_CHUNK
        if k == 0 or buffer is None:
            buffer = draw_block(
                rngs, running, min(DRAW_CHUNK, end - round_no), n
            )
        probs = prob_of_round(round_no, informed)
        tx_mask = running[:, None] & (buffer[:, k, :] < probs)
        if network_hook is not None:
            network = network_hook(round_no, network)
            gains = network.gain_operator
            kern = network.kernel_kind
            fused = _kernels.use_compiled_updates(kern)
        if mac_hook is not None:
            tx_mask = mac_hook(round_no, tx_mask, network)
        heard_from = resolve_reception_batch(
            gains, tx_mask, noise, beta, kernel=kern
        )
        if fused:
            # One jitted pass over (B, n) — same integer/boolean algebra
            # as the numpy expressions below (DESIGN.md §2.3).
            _kernels.spread_update(
                heard_from, informed, informed_round, running, round_no
            )
        else:
            newly = (heard_from != NO_SENDER) & ~informed & running[:, None]
            if newly.any():
                informed |= newly
                informed_round[newly] = round_no
        round_no += 1
        just_done = running & informed.all(axis=1)
        if just_done.any():
            last[just_done] = round_no
            running &= ~just_done
    last[running] = end
    return last
