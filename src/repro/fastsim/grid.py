"""Parallel grid-sweep orchestration over the batched sweep engine.

The sweep engine (:mod:`repro.fastsim.sweep`) made the *replication* axis
batch-first; this module does the same for the *grid* axis.  Every
experiment is a family of parameter points — (deployment, protocol kind,
kwargs) — and those points are embarrassingly parallel, so they are
declared as data (:class:`GridSpec`) and executed by :func:`run_grid`:

* **seed spawning** — point ``i`` of a grid with master seed ``s`` draws
  its (deployment, derived-kwargs, sweep) seeds from
  ``SeedSequence(s).spawn(P)[i].spawn(3)``.  Seeds are fixed *before*
  execution and carried by the point, so ``jobs=1`` and ``jobs=N`` runs
  are result-identical bit for bit, and no two points can collide the way
  ad hoc ``seed + n`` arithmetic could.
* **process fan-out** — pending points run on a
  ``concurrent.futures.ProcessPoolExecutor`` with the ``fork`` start
  method.  The spec (closures included) reaches workers through fork
  inheritance; the only objects pickled are point indices going in and
  :class:`~repro.fastsim.sweep.SweepResult` payloads coming out.
* **shared-memory gain arrays** — each distinct deployment's gain
  structure is materialized exactly once, into a
  ``multiprocessing.shared_memory`` segment created by the parent: the
  dense ``(n, n)`` matrix in dense mode, the sparse backend's CSR
  triple (data/indices/indptr, DESIGN.md §2.2) in sparse mode; workers
  attach by name and install read-only views on their reconstructed
  :class:`~repro.network.network.Network`.  Heavy arrays are never
  pickled.  The parent owns segment lifetime: created before dispatch,
  unlinked in a ``finally`` once every point has reported.
* **result cache** — with a cache directory configured, each point's
  result is stored content-addressed under
  :func:`repro.fastsim.cache.point_key`; re-runs (and ``--scale full``
  upgrades that share points with an earlier quick run) replay hits
  without touching the worker pool.
* **mobility descriptors** — a point whose kwargs carry a
  :class:`~repro.deploy.mobility.MobilityModel` runs over a moving
  deployment (DESIGN.md §7).  The model is a tiny seeded descriptor:
  it rides to workers through the fork payload next to the
  shared-memory gain arrays, each worker rebuilds the identical
  trajectory deterministically inside ``run_sweep``, and the model's
  ``identity()`` participates in the cache key — so ``jobs=N`` stays
  bitwise equal to ``jobs=1`` for dynamic sweeps and dynamic results
  never collide with static ones.
* **service execution** — ``run_grid(service="unix:/path.sock")``
  dispatches pending points as ``sweep`` requests to a resident-network
  query service (:mod:`repro.service`, DESIGN.md §8) instead of forking
  a pool: deployments stay hot in the daemon's pool across grid runs
  (and across interactive queries), rather than being rebuilt per fork.
  The server rebuilds each network from the same descriptor a fork
  worker would, and ``run_sweep`` arguments travel verbatim, so service
  results are bitwise identical to ``jobs=N`` runs; ``post`` hooks run
  client-side on the parent's network instance.  Cache keys are the
  ordinary :func:`~repro.fastsim.cache.point_key` on both sides, so a
  service run and a CLI run replay each other's entries.
* **multi-host sharding** — ``run_grid(workers=[addr, addr, ...])``
  generalizes service execution to N daemons on N hosts
  (:mod:`repro.distrib`, DESIGN.md §9): points are pulled from a shared
  queue by per-worker dispatch tasks, coordinated through the on-disk
  cache as the result bus, with per-request timeouts, straggler
  re-dispatch guarded by worker-side lease files, reconnect with
  backoff, and transparent fallback of orphaned points to the local
  pool.  ``service=addr`` is exactly ``workers=[addr]``.  Seeds are
  fixed at preparation time, so placement cannot change results:
  ``workers=N`` output is bitwise identical to ``jobs=1``.

DESIGN.md §6.3 records the contracts; ``benchmarks/bench_grid.py`` tracks
the speedup and asserts parallel/serial result identity.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.errors import ProtocolError
from repro.fastsim.cache import ResultCache, point_key
from repro.fastsim.journal import SweepJournal, sweep_key
from repro.fastsim.sweep import SweepResult, run_sweep
from repro.network.network import Network
from repro.sinr.sparse import SparseGainBackend


@dataclass(frozen=True)
class Derived:
    """A protocol kwarg computed from the deployed network.

    Some kwargs cannot be written down before the deployment exists (an
    adversarial wake-up schedule needs the station positions).  Wrapping
    ``fn(network, rng)`` in ``Derived`` defers them: the parent resolves
    every derived kwarg right after building the point's deployment,
    using the point's derive-rng, so resolved values are identical across
    serial and parallel execution and participate in the cache key.
    """

    fn: Callable[[Network, np.random.Generator], object]


@dataclass
class GridPoint:
    """One point of a grid sweep: a deployment, a protocol, its kwargs.

    :param kind: protocol kind, one of
        :func:`repro.fastsim.sweep.sweep_kinds`.
    :param deployment: factory ``rng -> Network``; deterministic factories
        may ignore the rng.
    :param n_replications: replications of the point's sweep.
    :param label: display label used in reports.
    :param constants: protocol constants (``None`` = practical defaults,
        resolved by ``run_sweep``).
    :param kwargs: protocol kwargs; values may be :class:`Derived`.
    :param post: optional ``(network, sweep) -> dict`` hook, executed
        where the sweep ran (i.e. inside the worker), so per-point
        analysis parallelizes with the simulation; its dict lands in
        :attr:`GridPointResult.extras` and is cached with the sweep.
    :param seed: pinned sweep master seed.  ``None`` (the default) means
        the grid derives the seed by spawning — the collision-free
        discipline; pin only where existing tests rely on exact values.
    :param share_deployment: points carrying the same non-``None`` key
        share one deployment instance (built once, with the derive
        discipline of the first such point), one fingerprint and one
        shared-memory segment — e.g. several protocols compared on the
        same random network.
    :param use_batch: forwarded to ``run_sweep``.
    """

    kind: str
    deployment: Callable[[np.random.Generator], Network]
    n_replications: int
    label: str = ""
    constants: Optional[ProtocolConstants] = None
    kwargs: dict = field(default_factory=dict)
    post: Optional[Callable[[Network, SweepResult], dict]] = None
    seed: Optional[int] = None
    share_deployment: Optional[str] = None
    use_batch: bool = True


@dataclass
class GridSpec:
    """A declarative grid sweep: the points plus the master seed."""

    points: list
    seed: int
    name: str = "grid"


@dataclass
class GridPointResult:
    """Outcome of one grid point.

    :param point: the spec entry this result answers.
    :param network: the point's deployment (parent-side instance; its
        lazy caches are independent of any worker state).
    :param sweep: the point's :class:`SweepResult`.
    :param extras: output of the point's ``post`` hook (``{}`` if none).
    :param cached: whether the result was replayed from the on-disk cache.
    """

    point: GridPoint
    network: Network
    sweep: SweepResult
    extras: dict = field(default_factory=dict)
    cached: bool = False


@dataclass
class GridOptions:
    """Execution knobs for :func:`run_grid`, settable process-wide.

    :param jobs: worker processes (``<= 1`` = run in-process).
    :param cache_dir: result-cache directory (``None`` = caching off).
    :param service: resident-network service address
        (``"unix:<path>"`` / ``"tcp:<host>:<port>"``); when set,
        pending points are dispatched to the daemon's resident pool
        instead of a fork pool and ``jobs`` is ignored (shorthand for
        a single-entry ``workers`` list).
    :param workers: addresses of several :mod:`repro.service` daemons
        (one per host); pending points are sharded across them through
        the cache result bus (DESIGN.md §9).  Takes precedence over
        ``service``.
    :param request_timeout: per-request timeout in seconds for
        service/worker dispatch (``None`` = the client default,
        :data:`repro.service.client.DEFAULT_REQUEST_TIMEOUT`).
    :param resume: pick up an interrupted sweep from its journal
        (``<sweep_key>.journal`` in the cache dir, DESIGN.md §10.1)
        instead of starting a fresh one; the CLI's ``--resume``.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    service: Optional[str] = None
    workers: Optional[list] = None
    request_timeout: Optional[float] = None
    resume: bool = False


_DEFAULT_OPTIONS = GridOptions()


def set_default_grid_options(options: GridOptions) -> None:
    """Install process-wide defaults (the CLI's ``--jobs``/``--cache-dir``
    land here; experiment modules call :func:`run_grid` with no options
    and inherit them)."""
    global _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = options


def get_default_grid_options() -> GridOptions:
    """The process-wide execution defaults :func:`run_grid` inherits."""
    return _DEFAULT_OPTIONS


# ----------------------------------------------------------------------
# preparation (parent side)
# ----------------------------------------------------------------------
@dataclass
class _Prepared:
    """A point with its deployment built, kwargs resolved, seed fixed."""

    point: GridPoint
    network: Network
    dep_index: int
    kwargs: dict
    seed: "int | np.random.SeedSequence"
    key: str = ""


def _post_name(post) -> str:
    if post is None:
        return ""
    return f"{getattr(post, '__module__', '?')}.{getattr(post, '__qualname__', repr(post))}"


def _prepare(spec: GridSpec) -> tuple[list[_Prepared], list[Network]]:
    """Build deployments, resolve kwargs and fix seeds for every point.

    Deployment sharing: points with equal ``share_deployment`` keys get
    the network built for the first of them; distinct deployments are
    deduplicated by fingerprint as well, so the shared-memory registry
    holds at most one segment per distinct gain matrix.
    """
    points = list(spec.points)
    if not points:
        raise ProtocolError(f"grid {spec.name!r} has no points")
    point_seqs = np.random.SeedSequence(spec.seed).spawn(len(points))
    shared: dict[str, Network] = {}
    deployments: list[Network] = []
    dep_index: dict[str, int] = {}
    prepared: list[_Prepared] = []
    for point, pseq in zip(points, point_seqs):
        deploy_seq, derive_seq, sweep_seq = pseq.spawn(3)
        group = point.share_deployment
        if group is not None and group in shared:
            net = shared[group]
        else:
            net = point.deployment(np.random.default_rng(deploy_seq))
            if not isinstance(net, Network):
                raise ProtocolError(
                    f"deployment factory of point {point.label!r} returned "
                    f"{type(net).__name__}, expected Network"
                )
            if group is not None:
                shared[group] = net
        fingerprint = net.fingerprint()
        if fingerprint not in dep_index:
            dep_index[fingerprint] = len(deployments)
            deployments.append(net)
        derive_rng = np.random.default_rng(derive_seq)
        kwargs = {
            k: (v.fn(net, derive_rng) if isinstance(v, Derived) else v)
            for k, v in point.kwargs.items()
        }
        seed = point.seed if point.seed is not None else sweep_seq
        prepared.append(
            _Prepared(
                point=point,
                network=net,
                dep_index=dep_index[fingerprint],
                kwargs=kwargs,
                seed=seed,
            )
        )
    for prep in prepared:
        prep.key = point_key(
            kind=prep.point.kind,
            network_fingerprint=prep.network.fingerprint(),
            constants=prep.point.constants,
            seed=prep.seed,
            n_replications=prep.point.n_replications,
            kwargs=prep.kwargs,
            use_batch=prep.point.use_batch,
            post_name=_post_name(prep.point.post),
        )
    return prepared, deployments


def _execute(prep: _Prepared, network: Network) -> tuple[SweepResult, dict]:
    """Run one prepared point on ``network`` (worker or in-process)."""
    sweep = run_sweep(
        prep.point.kind,
        network,
        prep.point.n_replications,
        prep.seed,
        prep.point.constants,
        use_batch=prep.point.use_batch,
        **prep.kwargs,
    )
    extras = prep.point.post(network, sweep) if prep.point.post else {}
    return sweep, extras


# ----------------------------------------------------------------------
# the fork worker protocol
# ----------------------------------------------------------------------
#: Set by the parent immediately before pool creation; workers inherit it
#: through ``fork`` (nothing here is ever pickled).  Layout:
#: ``(prepared, [(shm_name, shape, dtype_str, coords, params, metric,
#: channel, name), ...])``.
_FORK_PAYLOAD: Optional[tuple] = None

#: Worker-local registry of attached segments: dep_index -> (shm, Network).
_WORKER_NETS: dict[int, tuple] = {}


def _attach_network(dep_index: int) -> Network:
    """Worker-side Network with its gain arrays mapped from shared memory.

    The Network is rebuilt from the (small) coordinates and parameters;
    the heavy arrays are read-only zero-copy views into the parent's
    segment — the dense ``(n, n)`` gain matrix in dense mode, the CSR
    triple (data/indices/indptr) in sparse mode, where the cheap parts
    (cell index, far-field kernels) are derived from the coordinates
    deterministically.  Attachments are kept for the worker's lifetime
    (a worker typically runs several points of the same deployment) and
    released by process exit; the parent is the sole owner of segment
    unlinking.
    """
    cached = _WORKER_NETS.get(dep_index)
    if cached is not None:
        return cached[1]
    _, segments = _FORK_PAYLOAD
    (shm_name, payload, coords, params, metric, channel,
     name, kernel) = segments[dep_index]
    # NOTE on the resource tracker: fork workers share the parent's
    # tracker process, and its registry is a set — the attach here
    # re-registers the same name the parent registered at creation, so
    # exactly one unregister happens when the parent unlinks.  No
    # worker-side bookkeeping is needed (or correct).
    shm = shared_memory.SharedMemory(name=shm_name)
    if payload[0] == "sparse":
        _, cutoff, parts = payload
        views = []
        for shape, dtype_str, offset in parts:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=shm.buf,
                offset=offset,
            )
            view.setflags(write=False)
            views.append(view)
        net = Network(
            coords, params=params, metric=metric, name=name,
            channel=channel, backend="sparse", cutoff=cutoff,
            kernel=kernel,
        )
        net._backend_obj = SparseGainBackend.from_arrays(
            coords, params, net.channel, cutoff, *views,
            kernel=net.kernel_kind,
        )
    else:
        _, shape, dtype_str = payload
        gains = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        gains.setflags(write=False)
        net = Network(
            coords, params=params, metric=metric, name=name,
            channel=channel, backend="dense", kernel=kernel,
        )
        net._gain = gains
    _WORKER_NETS[dep_index] = (shm, net)
    return net


def _worker_run(index: int) -> tuple[int, SweepResult, dict]:
    prepared, _ = _FORK_PAYLOAD
    prep = prepared[index]
    sweep, extras = _execute(prep, _attach_network(prep.dep_index))
    return index, sweep, extras


def _create_segment(net: Network) -> tuple[shared_memory.SharedMemory, tuple]:
    """Materialize ``net``'s gain arrays into a fresh shm segment.

    Dense mode ships the ``(n, n)`` gain matrix exactly as before
    (descriptor layout ``("dense", shape, dtype)``); sparse mode packs
    the backend's CSR triple — data, then indptr, then indices, in that
    order so every section stays 8-byte aligned — into one segment and
    records per-array offsets (``("sparse", cutoff, parts)``).  The
    parent's Network keeps its lazy caches untouched, and no view into
    the segment is left dangling on the parent side (the fill views die
    inside this function), so unlinking after the run can never
    invalidate a returned result.
    """
    if net.backend_kind == "sparse":
        backend = net.sparse_backend
        arrays = (backend.data, backend.indptr, backend.indices)
        offsets = []
        total = 0
        for arr in arrays:
            offsets.append(total)
            total += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        parts = []
        for arr, offset in zip(arrays, offsets):
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            view[:] = arr
            parts.append((arr.shape, arr.dtype.str, offset))
            del view
        # from_arrays takes (data, indices, indptr): reorder the parts.
        payload = ("sparse", net.cutoff, [parts[0], parts[2], parts[1]])
    else:
        if net._gain is not None:
            source = net._gain
        else:
            source = net.channel.gain(net.distances, net.coords, net.params)
        shm = shared_memory.SharedMemory(create=True, size=source.nbytes)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[:] = source
        payload = ("dense", source.shape, source.dtype.str)
        del view
    descriptor = (
        shm.name,
        payload,
        np.asarray(net.coords),
        net.params,
        net.metric,
        net.channel,
        net.name,
        # The kernel *request* (not the resolved kind): workers resolve
        # it against their own environment, and since the kernels are
        # bitwise identical the choice never affects results or cache
        # keys (DESIGN.md §2.3).
        net._kernel_request,
    )
    return shm, descriptor


def _fork_available() -> bool:
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------
def run_grid(
    spec: GridSpec,
    *,
    jobs: Optional[int] = None,
    cache_dir: "Optional[str | os.PathLike]" = None,
    cache: Optional[bool] = None,
    service: Optional[str] = None,
    workers: Optional[Sequence[str]] = None,
    request_timeout: Optional[float] = None,
    resume: Optional[bool] = None,
) -> list[GridPointResult]:
    """Execute a :class:`GridSpec`; results in point order.

    Parameters default to the process-wide :class:`GridOptions` (see
    :func:`set_default_grid_options`); pass ``cache=False`` to bypass a
    configured cache for one call.  Execution is result-identical across
    ``jobs`` values, cache states and execution backends (fork pool,
    ``service=``, ``workers=``): seeds are fixed at preparation time and
    cached payloads are the pickled originals.

    ``service`` names a running :mod:`repro.service` daemon
    (``"unix:<path>"`` / ``"tcp:<host>:<port>"``): pending points are
    sent as concurrent ``sweep`` requests against its resident-network
    pool — bitwise identical to fork execution, with deployments kept
    hot across runs (DESIGN.md §8).  ``workers`` generalizes this to a
    list of daemons on several hosts, sharded through the cache result
    bus with fault-tolerant dispatch (DESIGN.md §9); points that
    outlive every worker fall back to the local pool transparently.
    Both paths drive their own asyncio event loop, so they must not be
    called from inside one.

    **Crash safety** (DESIGN.md §10.1): with a cache configured, every
    completed point is durably appended to a per-sweep journal
    (``<sweep_key>.journal`` beside the cache entries) before the run
    moves on, and the journal is removed on a clean finish.  A
    coordinator killed mid-sweep — SIGKILL, OOM, a dropped SSH session
    — reruns with ``resume=True`` (CLI ``--resume``): journaled points
    replay from the cache, only unjournaled points are recomputed, and
    the final results are bitwise identical to an uninterrupted run
    (seeds were fixed at preparation time either way).  SIGTERM is
    converted to ``KeyboardInterrupt`` for the duration of the run, so
    both interrupt signals drain gracefully: completed points are
    already journaled, shared-memory segments are unlinked, and worker
    processes are reaped on the way out.
    """
    options = get_default_grid_options()
    jobs = options.jobs if jobs is None else jobs
    cache_dir = options.cache_dir if cache_dir is None else cache_dir
    service = options.service if service is None else service
    workers = options.workers if workers is None else workers
    request_timeout = (
        options.request_timeout
        if request_timeout is None
        else request_timeout
    )
    resume = options.resume if resume is None else resume
    use_cache = (cache_dir is not None) if cache is None else (
        cache and cache_dir is not None
    )

    prepared, deployments = _prepare(spec)
    store = ResultCache(cache_dir) if use_cache else None

    journal: Optional[SweepJournal] = None
    journaled_before: dict = {}
    if store is not None:
        journal = SweepJournal(
            store.root,
            sweep_key(spec.name, spec.seed, [p.key for p in prepared]),
        )
        if resume:
            journaled_before = journal.load()
        elif journal.exists():
            # A fresh (non-resume) run of a sweep whose journal
            # survived: stale bookkeeping from an interrupted run the
            # caller chose not to resume.  Start over cleanly — the
            # cache still deduplicates whatever completed.
            journal.complete()
    elif resume:
        warnings.warn(
            f"grid {spec.name!r}: resume=True without a cache "
            "directory has nothing to resume from (the journal lives "
            "beside the cache); running fresh",
            RuntimeWarning,
            stacklevel=2,
        )

    results: list[Optional[GridPointResult]] = [None] * len(prepared)
    pending: list[int] = []
    journal_replays = 0
    for i, prep in enumerate(prepared):
        hit = store.get(prep.key) if store is not None else None
        if hit is not None:
            sweep, extras = hit
            results[i] = GridPointResult(
                point=prep.point,
                network=prep.network,
                sweep=sweep,
                extras=extras,
                cached=True,
            )
            if prep.key in journaled_before:
                journal_replays += 1
        else:
            pending.append(i)

    journal_appends = 0

    def finish(i: int, sweep: SweepResult, extras: dict) -> None:
        # Called per point as it completes (both paths), so an interrupt
        # or a failing later point never discards cached work.
        nonlocal journal_appends
        prep = prepared[i]
        results[i] = GridPointResult(
            point=prep.point,
            network=prep.network,
            sweep=sweep,
            extras=extras,
            cached=False,
        )
        if store is not None:
            try:
                store.put(prep.key, (sweep, extras))
            except OSError:
                # A full disk must not kill the sweep: the result is
                # in memory and the run proceeds — only the replay
                # (and this point's journal entry, which would
                # otherwise promise a cache entry that isn't there)
                # is lost.
                return
            if journal is not None:
                journal.append(prep.key)
                journal_appends += 1

    n_uncached = len(pending)
    addresses = list(workers) if workers else (
        [service] if service is not None else []
    )
    with _interruptible_sigterm():
        if pending and addresses:
            # Remote dispatch never raises on point failures: whatever
            # could not be completed remotely comes back and runs
            # locally.
            pending = _run_service(
                prepared, pending, addresses, on_result=finish,
                store=store, request_timeout=request_timeout,
                grid_name=spec.name,
            )
        if pending:
            local_jobs = max(1, min(jobs, len(pending)))
            if local_jobs > 1 and not _fork_available():
                warnings.warn(
                    f"grid {spec.name!r}: jobs={jobs} requested but the "
                    "'fork' start method is unavailable on this "
                    "platform; running points in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if local_jobs > 1 and _fork_available():
                _run_parallel(
                    prepared, deployments, pending, local_jobs,
                    on_result=finish,
                )
            else:
                for i in pending:
                    finish(i, *_execute(prepared[i], prepared[i].network))
    if journal is not None:
        # Clean finish: the journal's job is done.  Any earlier exit
        # (exception, interrupt, SIGKILL) leaves it on disk for
        # resume=True to find.
        journal.complete()
    _LAST_RUN_STATS.update(
        name=spec.name,
        points=len(prepared),
        cached=len(prepared) - n_uncached,
        journaled=journal_appends,
        journal_replays=journal_replays,
    )
    return results  # type: ignore[return-value]


@contextlib.contextmanager
def _interruptible_sigterm():
    """Convert SIGTERM to ``KeyboardInterrupt`` for the block.

    A polite kill (``kill <pid>``, a job scheduler's preemption notice)
    then drains exactly like Ctrl-C: the fork pool is torn down with
    its shared-memory segments unlinked, completed points stay
    journaled and cached, and the process exits by exception instead of
    vanishing mid-write.  Only effective on the main thread (signal
    handlers cannot be installed elsewhere — grids run from worker
    threads keep the process default); the previous handler is restored
    on exit either way.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


#: Filled after every :func:`run_grid` call; the CLI reads it to surface
#: how much of an experiment was replayed from cache (a replay of *every*
#: point after a code change means the cache is masking the change — see
#: the staleness note in :mod:`repro.fastsim.cache`) plus the crash-safety
#: accounting: ``journaled`` (points durably recorded this run) and
#: ``journal_replays`` (points a ``resume=True`` run skipped because the
#: interrupted run had journaled them).
_LAST_RUN_STATS: dict = {
    "name": "", "points": 0, "cached": 0,
    "journaled": 0, "journal_replays": 0,
}


def last_grid_stats() -> dict:
    """Stats of the most recent :func:`run_grid` call in this process."""
    return dict(_LAST_RUN_STATS)


def _run_parallel(
    prepared: Sequence[_Prepared],
    deployments: Sequence[Network],
    pending: Sequence[int],
    workers: int,
    on_result: Callable[[int, SweepResult, dict], None],
) -> None:
    """Fan pending points out over a fork pool.

    ``on_result(index, sweep, extras)`` fires per completed point in
    completion order, so the caller caches incrementally — a failing
    point or an interrupt loses only in-flight work, matching the serial
    path's behavior.

    Shared-memory lifetime: every needed deployment's segment exists
    before the first task is submitted and is closed + unlinked in the
    ``finally`` after the pool has shut down — workers only ever attach
    to live segments, and nothing keeps a mapping after the run.  The
    teardown is interrupt-proof: on ``KeyboardInterrupt`` (or any other
    exception) the pool is shut down *without* waiting for in-flight
    points — queued work cancelled, worker processes terminated — and
    every segment's close/unlink runs independently, so one failing
    unlink cannot leak its siblings (the PR 9 shm-leak satellite;
    ``tests/test_chaos.py`` interrupts a live grid and asserts nothing
    survives in ``/dev/shm``).
    """
    global _FORK_PAYLOAD
    needed = sorted({prepared[i].dep_index for i in pending})
    segments: dict[int, shared_memory.SharedMemory] = {}
    descriptors: list[Optional[tuple]] = [None] * len(deployments)
    try:
        for dep in needed:
            shm, descriptor = _create_segment(deployments[dep])
            segments[dep] = shm
            descriptors[dep] = descriptor
        _FORK_PAYLOAD = (list(prepared), descriptors)
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("fork")
        )
        try:
            futures = [pool.submit(_worker_run, i) for i in pending]
            for future in as_completed(futures):
                on_result(*future.result())
        except BaseException:
            # Interrupt/failure: don't wait out in-flight points (the
            # `with` form would block on them) — cancel the queue and
            # terminate the workers so the finally below can unlink
            # segments promptly.
            # Snapshot the worker handles first: shutdown() nulls the
            # executor's process table.
            procs = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                with contextlib.suppress(Exception):
                    proc.terminate()
            raise
        else:
            pool.shutdown(wait=True)
    finally:
        _FORK_PAYLOAD = None
        for shm in segments.values():
            with contextlib.suppress(Exception):
                shm.close()
            with contextlib.suppress(Exception):
                shm.unlink()


def _service_descriptor(net: Network) -> dict:
    """The pickled-network shape a daemon rebuilds a deployment from.

    Mirrors the fork descriptor's content (coords, params, metric,
    channel, backend/cutoff/kernel *requests*): the server-side rebuild
    is bitwise identical to the fork worker's (DESIGN.md §8).
    """
    return {
        "coords": np.asarray(net.coords),
        "params": net.params,
        "metric": net.metric,
        "channel": net.channel,
        "name": net.name,
        "backend": net._backend_request,
        "cutoff": net._cutoff,
        "kernel": net._kernel_request,
    }


def _run_service(
    prepared: Sequence[_Prepared],
    pending: Sequence[int],
    addresses: Sequence[str],
    on_result: Callable[[int, SweepResult, dict], None],
    store=None,
    request_timeout: Optional[float] = None,
    grid_name: str = "grid",
) -> list:
    """Shard pending points across :mod:`repro.service` daemons.

    One dispatch task per address pulls points from a shared queue
    (:func:`repro.distrib.shard.run_sharded`): a single address is the
    classic ``service=`` path, several are a multi-host sweep.  Each
    request carries both the deployment's fingerprint (a pool hit skips
    the rebuild entirely — the cross-run win) and its full descriptor
    (so an evicted or never-seen deployment is rebuilt server-side,
    bitwise-identically to the fork worker's reconstruction).

    Failure handling is per point, never per run: a failed or timed-out
    point is retried (on another worker where one exists) and, if it
    keeps failing, *returned* for local execution — one bad point can
    no longer cancel its siblings' in-flight requests or discard their
    completed work.  ``on_result`` fires per completed point in
    completion order, same contract as :func:`_run_parallel`; the
    return value is the sorted list of indices still to execute.

    Post hooks run *client*-side, on the locally built network — hook
    closures are not picklable and need not be.  Hooked points are
    therefore dispatched *without* a cache key: a daemon can only store
    ``(sweep, {})``, and since ``post_name`` is part of the key, a
    server-side entry with empty extras under a hooked key would replay
    as the point's real result in later CLI runs.  Hookless points ship
    their key (server-side caching is exact for them); hooked points
    still land in the *client's* cache via ``on_result``, extras and
    all.
    """
    from repro.distrib.shard import PointRequest, run_sharded

    requests = [
        PointRequest(
            index=i,
            kind=prep.point.kind,
            n_replications=prep.point.n_replications,
            seed=prep.seed,
            constants=prep.point.constants,
            kwargs=prep.kwargs,
            use_batch=prep.point.use_batch,
            fingerprint=prep.network.fingerprint(),
            descriptor=_service_descriptor(prep.network),
            key=(prep.key or None) if prep.point.post is None else None,
            label=prep.point.label,
        )
        for i, prep in ((i, prepared[i]) for i in pending)
    ]

    def on_sweep(index: int, sweep: SweepResult) -> None:
        prep = prepared[index]
        extras = (
            prep.point.post(prep.network, sweep) if prep.point.post else {}
        )
        on_result(index, sweep, extras)

    stats = run_sharded(
        requests,
        addresses,
        on_sweep=on_sweep,
        store=store,
        request_timeout=request_timeout,
    )
    if stats.leftover:
        detail = "; ".join(
            f"point {i}: {msgs[-1]}"
            for i, msgs in sorted(stats.errors.items())
        ) or "workers unreachable"
        warnings.warn(
            f"grid {grid_name!r}: {len(stats.leftover)} of "
            f"{len(requests)} dispatched points fall back to local "
            f"execution ({detail})",
            RuntimeWarning,
            stacklevel=3,
        )
    return stats.leftover
