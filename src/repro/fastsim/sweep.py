"""The batched multi-seed sweep engine.

Every experiment in this repository is a statement about a *distribution*
of round counts over random replications, so the replication loop — not
any single run — is the dominant cost of the e01–e12 sweeps.  This module
runs ``B`` independent replications of one protocol on one deployment in
a single set of numpy operations:

* replication ``b`` draws from its own generator, spawned from the master
  seed exactly like ``repro.experiments.base.trial_rngs``, so a batched
  sweep is *sample-for-sample identical* to a sequential loop of
  single-instance fast runs over the same seeds (the hypothesis suite
  asserts exact equality, not statistical closeness);
* the channel is resolved for all replications at once through
  :func:`repro.sinr.reception.resolve_reception_batch`;
* per-replication headline numbers land in a :class:`SweepResult`.

Protocols without a batched kernel fall back to looping the reference
simulator, so experiments can route every replication loop through
:func:`run_sweep` unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.errors import ProtocolError
from repro.fastsim.broadcast import (
    fast_decay_broadcast_batch,
    fast_local_broadcast_global_batch,
    fast_nospont_broadcast_batch,
    fast_spont_broadcast_batch,
    fast_uniform_broadcast_batch,
)
from repro.fastsim.coloring import fast_coloring_batch
from repro.fastsim.consensus import fast_consensus_batch
from repro.fastsim.leader import fast_leader_election_batch
from repro.fastsim.engine import spawn_rngs
from repro.fastsim.wakeup import (
    fast_adhoc_wakeup_batch,
    fast_colored_wakeup_batch,
)
from repro.network.network import Network


@dataclass
class SweepResult:
    """Aggregated outcome of one batched multi-seed sweep.

    :param kind: protocol kind the sweep ran.
    :param seed: master seed the replication generators were spawned from.
    :param rounds: ``(B,)`` per-replication headline round count
        (``nan`` where the replication failed).
    :param success: ``(B,)`` per-replication success flags.
    :param outcomes: per-replication rich results (protocol-specific).
    :param batched: whether the batched kernel ran (``False`` means the
        reference-simulator fallback loop).
    """

    kind: str
    seed: "int | np.random.SeedSequence"
    rounds: np.ndarray
    success: np.ndarray
    outcomes: list = field(default_factory=list)
    batched: bool = True

    @property
    def n_replications(self) -> int:
        """Number of replications the sweep ran."""
        return self.rounds.shape[0]

    def success_rate(self) -> float:
        """Fraction of replications that succeeded."""
        return float(np.mean(self.success))

    def successful_rounds(self) -> np.ndarray:
        """Round counts of the successful replications only."""
        return self.rounds[self.success]

    def mean_rounds(self) -> float:
        """Mean headline rounds over successful replications."""
        good = self.successful_rounds()
        return float(np.mean(good)) if good.size else float("nan")


def _broadcast_headline(outcome) -> tuple[float, bool]:
    rounds = (
        float(outcome.completion_round)
        if outcome.success
        else float("nan")
    )
    return rounds, bool(outcome.success)


def _consensus_headline(result) -> tuple[float, bool]:
    return float(result.total_rounds), bool(result.agreed and result.correct)


def _leader_headline(result) -> tuple[float, bool]:
    return float(result.total_rounds), bool(result.success)


def _coloring_headline(result) -> tuple[float, bool]:
    return float(result.rounds), True


def _traffic_headline(result) -> tuple[float, bool]:
    # Headline is mean delivery latency; a replication succeeds when its
    # accounting closes and at least one packet arrived.
    return (
        result.mean_latency(),
        bool(result.conservation_ok() and result.delivered() > 0),
    )


def _batch_traffic(network, constants, rngs, **kwargs):
    from repro.traffic.engine import run_traffic

    # Sequential per-replication runs: the traffic engine is a queueing
    # simulation, so "batched == sequential" is definitional here —
    # replication b consumes only rngs[b] and a fresh MAC session.
    return [run_traffic(network, rng=rng, **kwargs) for rng in rngs]


def _batch_coloring(network, constants, rngs, **kwargs):
    batch = fast_coloring_batch(network, constants, rngs, **kwargs)
    return [batch.replication(b) for b in range(batch.batch_size)]


def _batch_consensus(network, constants, rngs, *, x_max, values=None,
                     **kwargs):
    if values is None:
        # Mirrors the experiment loops: each replication draws its value
        # vector from its own generator before running the protocol.
        values = np.stack(
            [rng.integers(0, x_max + 1, size=network.size) for rng in rngs]
        )
    return fast_consensus_batch(
        network, values, x_max, constants, rngs, **kwargs
    )


def _reference_consensus(network, constants, rng, *, x_max, values=None,
                         **kwargs):
    from repro.core.consensus import run_consensus

    if values is None:
        values = rng.integers(0, x_max + 1, size=network.size)
    return run_consensus(
        network, np.asarray(values).tolist(), x_max, constants, rng,
        **kwargs,
    )


def _reference_adhoc_wakeup(network, constants, rng, *, schedule, **kwargs):
    from repro.core.wakeup import run_adhoc_wakeup

    return run_adhoc_wakeup(network, schedule, constants, rng, **kwargs)


def _reference_leader(network, constants, rng, **kwargs):
    from repro.core.leader_election import run_leader_election

    return run_leader_election(network, constants, rng, **kwargs)


@dataclass(frozen=True)
class _SweepKind:
    """One sweepable protocol: batched kernel + fallback + extractor.

    ``takes_mac`` marks kinds whose runner accepts a
    :class:`repro.mac.MacModel` directly as a ``mac=`` argument (the
    traffic engine builds its own sessions); other kinds receive MAC
    models translated into the kernels' ``mac_hook`` callback by
    :func:`run_sweep`.
    """

    headline: Callable
    batch: Optional[Callable] = None
    reference: Optional[Callable] = None
    takes_mac: bool = False


def _source_batch(batch_fn, needs_constants: bool = True):
    def runner(network, constants, rngs, *, source=0, **kwargs):
        if needs_constants:
            return batch_fn(network, source, constants, rngs, **kwargs)
        return batch_fn(network, source, rngs, **kwargs)

    return runner


SWEEP_KINDS: dict[str, _SweepKind] = {
    "coloring": _SweepKind(
        headline=_coloring_headline,
        batch=_batch_coloring,
    ),
    "spont_broadcast": _SweepKind(
        headline=_broadcast_headline,
        batch=_source_batch(fast_spont_broadcast_batch),
    ),
    "nospont_broadcast": _SweepKind(
        headline=_broadcast_headline,
        batch=_source_batch(fast_nospont_broadcast_batch),
    ),
    "uniform_broadcast": _SweepKind(
        headline=_broadcast_headline,
        batch=_source_batch(
            fast_uniform_broadcast_batch, needs_constants=False
        ),
    ),
    "decay_broadcast": _SweepKind(
        headline=_broadcast_headline,
        batch=_source_batch(
            fast_decay_broadcast_batch, needs_constants=False
        ),
    ),
    "local_broadcast": _SweepKind(
        headline=_broadcast_headline,
        batch=_source_batch(
            fast_local_broadcast_global_batch, needs_constants=False
        ),
    ),
    "adhoc_wakeup": _SweepKind(
        headline=_broadcast_headline,
        batch=lambda network, constants, rngs, *, schedule, **kw:
            fast_adhoc_wakeup_batch(network, schedule, constants, rngs, **kw),
        reference=_reference_adhoc_wakeup,
    ),
    "colored_wakeup": _SweepKind(
        headline=_broadcast_headline,
        batch=lambda network, constants, rngs, *, initiators, base_colors,
                     **kw:
            fast_colored_wakeup_batch(
                network, initiators, base_colors, constants, rngs, **kw
            ),
    ),
    "consensus": _SweepKind(
        headline=_consensus_headline,
        batch=_batch_consensus,
        reference=_reference_consensus,
    ),
    "leader_election": _SweepKind(
        headline=_leader_headline,
        batch=lambda network, constants, rngs, **kw:
            fast_leader_election_batch(network, constants, rngs, **kw),
        reference=_reference_leader,
    ),
    "traffic": _SweepKind(
        headline=_traffic_headline,
        batch=_batch_traffic,
        takes_mac=True,
    ),
}


def sweep_kinds() -> list[str]:
    """Names of the sweepable protocol kinds."""
    return sorted(SWEEP_KINDS)


def run_sweep(
    kind: str,
    network: Network,
    n_replications: int,
    seed: "int | np.random.SeedSequence",
    constants: Optional[ProtocolConstants] = None,
    *,
    use_batch: bool = True,
    **kwargs,
) -> SweepResult:
    """Run ``n_replications`` independent replications of one protocol.

    The workhorse of the experiment harness: spawns one generator per
    replication from ``seed`` (the same spawning discipline as
    ``trial_rngs``), dispatches to the protocol's batched kernel, and
    aggregates per-replication headline numbers.  ``use_batch=False`` (or
    a kind without a batched kernel) loops the reference simulator
    instead, one replication at a time.

    :param kind: one of :func:`sweep_kinds`.
    :param kwargs: protocol-specific arguments (``source=...`` for the
        broadcasts, ``schedule=...`` for wake-up, ``x_max=...`` for
        consensus, budget overrides, ...).  ``mobility=`` accepts a
        :class:`repro.deploy.mobility.MobilityModel`: the sweep then
        runs over a moving deployment (one trajectory shared by all
        replications, DESIGN.md §7) by translating the model into the
        kernels' ``network_hook`` callback.  The model rides in the
        kwargs, so grid cache keys cover its ``identity()`` and dynamic
        results never collide with static ones.  ``mac=`` accepts a
        :class:`repro.mac.MacModel` the same way (DESIGN.md §11):
        protocol kinds get it translated into the kernels' ``mac_hook``
        per-slot callback, the ``"traffic"`` kind consumes the model
        directly; either way the model stays in the kwargs, so cache
        keys cover MAC identity too.  The ``"traffic"`` kind also needs
        ``flows=[...]`` and ``rounds=N`` (see
        :func:`repro.traffic.engine.run_traffic`).
    """
    try:
        spec = SWEEP_KINDS[kind]
    except KeyError:
        raise ProtocolError(
            f"unknown sweep kind {kind!r}; expected one of {sweep_kinds()}"
        ) from None
    if constants is None:
        constants = ProtocolConstants.practical()
    rngs = spawn_rngs(n_replications, seed)

    mobility = kwargs.pop("mobility", None)
    if mobility is not None:
        if not use_batch or spec.batch is None:
            raise ProtocolError(
                "mobility sweeps need a batched kernel: the reference "
                "simulator has no per-round network callback "
                f"(kind {kind!r} with use_batch={use_batch})"
            )
        from repro.deploy.mobility import mobility_hook

        kwargs["network_hook"] = mobility_hook(mobility)

    mac = kwargs.pop("mac", None)
    if mac is not None:
        if spec.takes_mac:
            kwargs["mac"] = mac
        else:
            if not use_batch or spec.batch is None:
                raise ProtocolError(
                    "MAC sweeps need a batched kernel: the reference "
                    "simulator has no per-slot transmit-decision hook "
                    f"(kind {kind!r} with use_batch={use_batch})"
                )
            from repro.mac import mac_hook

            kwargs["mac_hook"] = mac_hook(mac)

    if use_batch and spec.batch is not None:
        outcomes = spec.batch(network, constants, rngs, **kwargs)
        batched = True
    elif spec.reference is not None:
        outcomes = [
            spec.reference(network, constants, rng, **kwargs)
            for rng in rngs
        ]
        batched = False
    else:
        raise ProtocolError(
            f"sweep kind {kind!r} has no reference fallback"
        )

    rounds = np.empty(n_replications)
    success = np.empty(n_replications, dtype=bool)
    for b, outcome in enumerate(outcomes):
        rounds[b], success[b] = spec.headline(outcome)
    return SweepResult(
        kind=kind,
        seed=seed,
        rounds=rounds,
        success=success,
        outcomes=list(outcomes),
        batched=batched,
    )
