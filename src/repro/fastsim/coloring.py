"""Vectorized ``StabilizeProbability``.

Same semantics as :mod:`repro.core.coloring` — the schedule, the two
tests, the success-counting rules and the quit logic are driven by the
shared :class:`~repro.core.constants.ColoringSchedule` — but all stations
advance in numpy arrays and each round costs one reception resolution.

The implementation is *batched*: :func:`fast_coloring_batch` runs ``B``
independent replications (one seed-spawned generator each) through the
deterministic schedule at once, and :func:`fast_coloring` is the ``B = 1``
special case.  Per-replication state lives in ``(B, n)`` arrays and no
operation mixes rows, so each replication's outputs are bitwise identical
to a standalone run with the same generator (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import kernels as _kernels
from repro.core.coloring import FINAL_COLOR_LEVEL, NOT_PARTICIPATING
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.errors import ProtocolError
from repro.fastsim.engine import draw_block
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception_batch


@dataclass
class FastColoringResult:
    """Vectorized coloring outcome (mirrors ``ColoringResult``)."""

    colors: np.ndarray
    quit_levels: np.ndarray
    rounds: int
    schedule: ColoringSchedule

    @property
    def participants(self) -> np.ndarray:
        """Boolean mask of the stations that took part."""
        return self.quit_levels != NOT_PARTICIPATING

    def distinct_colors(self) -> list[float]:
        """Sorted distinct colors assigned to participants."""
        values = self.colors[self.participants]
        return sorted(set(float(v) for v in values))

    def color_mask(self, color: float) -> np.ndarray:
        """Participants holding ``color`` (tolerant float compare)."""
        return self.participants & np.isclose(self.colors, color)


@dataclass
class FastColoringBatch:
    """Per-replication colorings of one batched execution.

    All arrays are ``(B, n)``; ``replication(b)`` extracts one
    replication as a :class:`FastColoringResult`.
    """

    colors: np.ndarray
    quit_levels: np.ndarray
    rounds: int
    schedule: ColoringSchedule

    @property
    def batch_size(self) -> int:
        """Number of replications ``B`` in the batch."""
        return self.colors.shape[0]

    def replication(self, b: int) -> FastColoringResult:
        """Replication ``b``'s coloring as a single-run result view."""
        return FastColoringResult(
            colors=self.colors[b],
            quit_levels=self.quit_levels[b],
            rounds=self.rounds,
            schedule=self.schedule,
        )


def _as_participant_masks(
    participants: Optional[np.ndarray],
    B: int,
    n: int,
    enabled: np.ndarray,
) -> np.ndarray:
    if participants is None:
        masks = np.ones((B, n), dtype=bool)
    else:
        participants = np.asarray(participants, dtype=bool)
        if participants.shape == (n,):
            masks = np.broadcast_to(participants, (B, n)).copy()
        elif participants.shape == (B, n):
            masks = participants.copy()
        else:
            raise ProtocolError(
                f"participants mask must have shape ({n},) or ({B}, {n})"
            )
    if not masks[enabled].any(axis=1).all():
        raise ProtocolError("coloring needs at least one participant")
    return masks


def fast_coloring_batch(
    network: Network,
    constants: ProtocolConstants,
    rngs: Sequence[np.random.Generator],
    participants: Optional[np.ndarray] = None,
    informed: Optional[np.ndarray] = None,
    informed_round: Optional[np.ndarray] = None,
    round_offset: int = 0,
    enabled: Optional[np.ndarray] = None,
    network_hook=None,
    mac_hook=None,
) -> FastColoringBatch:
    """Run ``B`` independent ``StabilizeProbability`` executions at once.

    :param rngs: one generator per replication (see
        :func:`repro.fastsim.engine.spawn_rngs`).
    :param participants: boolean mask of stations taking part — ``(n,)``
        shared or ``(B, n)`` per replication (default all).
    :param informed: optional ``(B, n)`` mask updated **in place**: a
        station that hears an informed participant becomes informed.
    :param informed_round: optional ``(B, n)`` int array updated in place
        with the global round at which stations became informed.
    :param round_offset: global round number of the execution's first
        round (for ``informed_round`` bookkeeping).
    :param enabled: optional ``(B,)`` mask; disabled replications consume
        no randomness and come back with all-NaN colors.
    :param network_hook: optional per-round network callback
        (DESIGN.md §7): called once per executed round with the global
        round number; the returned network's gain operator resolves that
        round, so the coloring runs over a moving deployment.  Skipped
        blocks (every replication quit) do not advance the hook.
    :param mac_hook: optional per-slot transmit-decision callback
        (:data:`repro.mac.TransmitHook`, DESIGN.md §11), keyed by the
        global round number — MAC arbitration is round-keyed, so a
        replication's decisions are unchanged whether its batch skips a
        quit block or runs it for other lanes.
    """
    n = network.size
    B = len(rngs)
    schedule = ColoringSchedule(constants=constants, n=n)
    if enabled is None:
        enabled = np.ones(B, dtype=bool)
    else:
        enabled = np.asarray(enabled, dtype=bool)
    masks = _as_participant_masks(participants, B, n, enabled)
    masks &= enabled[:, None]
    track_informed = informed is not None
    if track_informed and informed_round is None:
        raise ProtocolError(
            "informed_round must accompany informed for bookkeeping"
        )

    gains = network.gain_operator
    kern = network.kernel_kind
    fused = _kernels.use_compiled_updates(kern)
    noise = network.params.noise
    beta = network.params.beta
    counts_self = constants.playoff_counts_self

    in_ladder = masks.copy()
    colors = np.full((B, n), np.nan)
    quit_levels = np.full((B, n), NOT_PARTICIPATING, dtype=int)
    quit_levels[masks] = FINAL_COLOR_LEVEL

    dthresh = constants.density_threshold(n)
    pthresh = constants.playoff_threshold(n)
    global_round = round_offset

    def run_test(
        prob: float, length: int, count_tx: bool, block_active: np.ndarray
    ) -> np.ndarray:
        """Run one test for active replications; per-station successes."""
        nonlocal global_round, network, gains, kern, fused
        successes = np.zeros((B, n), dtype=int)
        draws = draw_block(rngs, block_active, length, n)
        for r in range(length):
            tx_mask = in_ladder & (draws[:, r, :] < prob)
            if network_hook is not None:
                network = network_hook(global_round, network)
                gains = network.gain_operator
                kern = network.kernel_kind
                fused = _kernels.use_compiled_updates(kern)
            if mac_hook is not None:
                tx_mask = mac_hook(global_round, tx_mask, network)
            heard_from = resolve_reception_batch(
                gains, tx_mask, noise, beta, kernel=kern
            )
            heard = heard_from != NO_SENDER
            if fused:
                _kernels.count_successes(
                    successes, heard, tx_mask, bool(count_tx)
                )
            elif count_tx:
                successes += (heard | tx_mask)
            else:
                successes += heard
            if track_informed:
                senders = np.where(heard, heard_from, 0)
                senders_informed = (
                    informed[np.arange(B)[:, None], senders] & heard
                )
                newly = senders_informed & ~informed
                if newly.any():
                    informed[newly] = True
                    informed_round[newly] = global_round
            global_round += 1
        return successes

    for level in range(schedule.levels):
        p_v = schedule.level_probability(level)
        p_playoff = min(1.0, p_v * constants.ceps)
        for _rep in range(constants.repeats):
            block_active = enabled & in_ladder.any(axis=1)
            if not block_active.any():
                # Everyone quit: rounds still elapse (fixed schedule).
                global_round += schedule.block_len
                continue
            dens = run_test(
                p_v, schedule.density_len, True, block_active
            )
            play = run_test(
                p_playoff, schedule.playoff_len, counts_self, block_active
            )
            passed = in_ladder & (dens >= dthresh) & (play >= pthresh)
            if passed.any():
                colors[passed] = p_v
                quit_levels[passed] = level
                in_ladder &= ~passed

    colors[in_ladder] = constants.survivor_color
    colors[~masks] = np.nan
    return FastColoringBatch(
        colors=colors,
        quit_levels=quit_levels,
        rounds=schedule.total_rounds,
        schedule=schedule,
    )


def fast_coloring(
    network: Network,
    constants: ProtocolConstants,
    rng: np.random.Generator,
    participants: Optional[np.ndarray] = None,
    informed: Optional[np.ndarray] = None,
    informed_round: Optional[np.ndarray] = None,
    round_offset: int = 0,
    mac_hook=None,
) -> FastColoringResult:
    """Run one ``StabilizeProbability`` execution, vectorized.

    The ``B = 1`` case of :func:`fast_coloring_batch`; see there for the
    parameter semantics (``informed``/``informed_round`` are length-``n``
    arrays here, still updated in place).
    """
    n = network.size
    if participants is not None:
        participants = np.asarray(participants, dtype=bool)
        if participants.shape != (n,):
            raise ProtocolError(
                f"participants mask must have shape ({n},)"
            )
        participants = participants[None, :]
    batch = fast_coloring_batch(
        network,
        constants,
        [rng],
        participants=participants,
        informed=None if informed is None else informed[None, :],
        informed_round=(
            None if informed_round is None else informed_round[None, :]
        ),
        round_offset=round_offset,
        mac_hook=mac_hook,
    )
    return batch.replication(0)
