"""Vectorized ``StabilizeProbability``.

Same semantics as :mod:`repro.core.coloring` — the schedule, the two
tests, the success-counting rules and the quit logic are driven by the
shared :class:`~repro.core.constants.ColoringSchedule` — but all stations
advance in numpy arrays and each round costs one reception resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.coloring import FINAL_COLOR_LEVEL, NOT_PARTICIPATING
from repro.core.constants import ColoringSchedule, ProtocolConstants
from repro.errors import ProtocolError
from repro.network.network import Network
from repro.sinr.reception import NO_SENDER, resolve_reception


@dataclass
class FastColoringResult:
    """Vectorized coloring outcome (mirrors ``ColoringResult``)."""

    colors: np.ndarray
    quit_levels: np.ndarray
    rounds: int
    schedule: ColoringSchedule

    @property
    def participants(self) -> np.ndarray:
        return self.quit_levels != NOT_PARTICIPATING

    def distinct_colors(self) -> list[float]:
        values = self.colors[self.participants]
        return sorted(set(float(v) for v in values))

    def color_mask(self, color: float) -> np.ndarray:
        return self.participants & np.isclose(self.colors, color)


def fast_coloring(
    network: Network,
    constants: ProtocolConstants,
    rng: np.random.Generator,
    participants: Optional[np.ndarray] = None,
    informed: Optional[np.ndarray] = None,
    informed_round: Optional[np.ndarray] = None,
    round_offset: int = 0,
) -> FastColoringResult:
    """Run one ``StabilizeProbability`` execution, vectorized.

    :param participants: boolean mask of stations taking part (default
        all).  Non-participants are silent but still receive.
    :param informed: optional boolean mask updated **in place**: a station
        that hears a participant who is informed becomes informed (models
        the broadcast payload riding on coloring transmissions).
    :param informed_round: optional int array updated in place with the
        (global) round at which stations became informed; used together
        with ``informed``.
    :param round_offset: global round number of the execution's first
        round (for ``informed_round`` bookkeeping).
    """
    n = network.size
    schedule = ColoringSchedule(constants=constants, n=n)
    if participants is None:
        participants = np.ones(n, dtype=bool)
    else:
        participants = np.asarray(participants, dtype=bool)
        if participants.shape != (n,):
            raise ProtocolError(
                f"participants mask must have shape ({n},)"
            )
    if not participants.any():
        raise ProtocolError("coloring needs at least one participant")
    track_informed = informed is not None
    if track_informed and informed_round is None:
        raise ProtocolError(
            "informed_round must accompany informed for bookkeeping"
        )

    gains = network.gains
    noise = network.params.noise
    beta = network.params.beta
    counts_self = constants.playoff_counts_self

    in_ladder = participants.copy()
    colors = np.full(n, np.nan)
    quit_levels = np.full(n, NOT_PARTICIPATING, dtype=int)
    quit_levels[participants] = FINAL_COLOR_LEVEL

    dthresh = constants.density_threshold(n)
    pthresh = constants.playoff_threshold(n)
    global_round = round_offset

    def run_test(prob: float, length: int, count_tx: bool) -> np.ndarray:
        """Run one test; returns per-station success counts."""
        nonlocal global_round
        successes = np.zeros(n, dtype=int)
        for _ in range(length):
            draws = rng.random(n)
            tx_mask = in_ladder & (draws < prob)
            transmitters = np.flatnonzero(tx_mask)
            heard_from = resolve_reception(gains, transmitters, noise, beta)
            heard = heard_from != NO_SENDER
            if count_tx:
                successes += (heard | tx_mask)
            else:
                successes += heard
            if track_informed and transmitters.size:
                senders_informed = np.zeros(n, dtype=bool)
                valid = heard
                senders_informed[valid] = informed[heard_from[valid]]
                newly = senders_informed & ~informed
                if newly.any():
                    informed[newly] = True
                    informed_round[newly] = global_round
            global_round += 1
        return successes

    for level in range(schedule.levels):
        p_v = schedule.level_probability(level)
        p_playoff = min(1.0, p_v * constants.ceps)
        for _rep in range(constants.repeats):
            if not in_ladder.any():
                # Everyone quit: rounds still elapse (fixed schedule).
                global_round += schedule.block_len
                continue
            dens = run_test(p_v, schedule.density_len, count_tx=True)
            play = run_test(
                p_playoff, schedule.playoff_len, count_tx=counts_self
            )
            passed = in_ladder & (dens >= dthresh) & (play >= pthresh)
            if passed.any():
                colors[passed] = p_v
                quit_levels[passed] = level
                in_ladder &= ~passed

    colors[in_ladder] = constants.survivor_color
    colors[~participants] = np.nan
    return FastColoringResult(
        colors=colors,
        quit_levels=quit_levels,
        rounds=schedule.total_rounds,
        schedule=schedule,
    )
