"""Crash-safe per-sweep progress journal for checkpoint/resume.

A multi-hour grid sweep (DESIGN.md §10.1) must survive its coordinator
dying — SIGKILL from the OOM killer, a lost SSH session, a preempted
node.  The result cache already makes every *completed point* durable,
but it cannot say which points belong to *this sweep* or prove that a
replayed entry was computed rather than inherited; the journal does.

One sweep gets one journal file, ``<sweep_key>.journal``, next to the
cache it rides on.  The sweep key is content-addressed from the same
material as the point keys (:func:`sweep_key`), so a resumed run — the
same spec, seed and grid — finds its own journal by construction, and a
*different* sweep can never consume it.

Format: one JSON record per line, appended with a single
``O_APPEND`` write and fsynced before the append returns, so the file
is a prefix-closed log — a crash mid-append leaves at most one torn
tail line, which :meth:`SweepJournal.load` detects (it fails to parse)
and discards.  A journaled point is therefore a *hard* guarantee: its
``put`` into the result cache completed **and** reached disk before
the journal record did (callers append only after a successful store).

Lifecycle: created lazily on the first append, consulted by
``run_grid(resume=True)`` to skip completed points, and deleted by
:meth:`SweepJournal.complete` when the sweep finishes cleanly — a
journal on disk always means an interrupted sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional

#: Journal filename suffix (``<sweep_key>.journal`` in the cache dir).
JOURNAL_SUFFIX = ".journal"


def sweep_key(name: str, seed, point_keys: Iterable[str]) -> str:
    """Content-addressed identity of one sweep.

    Digest of the spec name, the master seed and the *sorted* point
    keys — the same key material the cache addresses points by — so
    two runs of the same grid share a journal and any change to the
    grid (a point added, a constant tweaked, a different seed) yields
    a different journal that cannot shadow the old one.  Sorting makes
    the key independent of point enumeration order.
    """
    h = hashlib.sha256()
    h.update(f"sweep:{name}:{seed!r}:".encode())
    for key in sorted(point_keys):
        h.update(key.encode())
        h.update(b";")
    return h.hexdigest()


class SweepJournal:
    """Append-only completion log for one sweep's points.

    :param root: directory the journal lives in (normally the sweep's
        cache dir; created on first append).
    :param key: the sweep's :func:`sweep_key`.
    """

    def __init__(self, root: "str | os.PathLike", key: str):
        self.root = Path(root)
        self.key = key
        #: Number of records discarded as torn by the last :meth:`load`
        #: (0 or 1 after a single crash; the log is prefix-closed).
        self.torn = 0

    @property
    def path(self) -> Path:
        """The journal file (``<root>/<sweep_key>.journal``)."""
        return self.root / f"{self.key}{JOURNAL_SUFFIX}"

    def load(self) -> "dict[str, dict]":
        """Replay the journal: ``{point_key: record}`` for every intact
        line.

        Torn tail lines (a crash mid-append) and any other unparsable
        line are discarded and counted in :attr:`torn` — never raised:
        a damaged journal degrades to recomputing more points, which is
        always correct (the cache still deduplicates the work).
        """
        self.torn = 0
        done: dict[str, dict] = {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            return done
        for line in raw.split(b"\n"):
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
            except (ValueError, KeyError, TypeError):
                self.torn += 1
                continue
            done[key] = record
        return done

    def append(self, key: str, meta: Optional[dict] = None) -> None:
        """Durably record ``key`` as completed.

        One JSON line in a single ``O_APPEND`` write (atomic with
        respect to concurrent appenders for records far below
        ``PIPE_BUF``), fsynced before returning — after this call the
        record survives power loss.  Callers append only *after* the
        point's result is safely in the cache, preserving the
        journaled ⊆ cached invariant resume relies on.

        A torn tail (the file not ending in a newline — the previous
        writer crashed mid-append) is healed by prefixing the record
        with a newline, so the new record starts on a fresh line
        instead of merging into the damaged one and being lost with it.

        :param key: the completed point's cache key.
        :param meta: optional extra fields merged into the record
            (e.g. ``{"source": "bus"}``); must be JSON-able and must
            not include ``"key"``.
        """
        record = {"key": key}
        if meta:
            record.update(meta)
            if record["key"] != key:
                raise ValueError("meta must not override the point key")
        line = json.dumps(record, sort_keys=True) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            size = os.fstat(fd).st_size
            if size and os.pread(fd, 1, size - 1) != b"\n":
                line = "\n" + line
            os.write(fd, line.encode())
            os.fsync(fd)
        finally:
            os.close(fd)

    def complete(self) -> None:
        """Delete the journal after a clean finish.

        A journal on disk is the durable marker of an *interrupted*
        sweep; removing it on success keeps the cache dir free of
        stale journals (and makes ``resume=True`` on a finished sweep
        a fresh, fully-cached run rather than a replay of old
        bookkeeping).  Missing file is fine — a fully-cached rerun
        never created one.
        """
        try:
            self.path.unlink()
        except OSError:
            pass

    def exists(self) -> bool:
        """Whether an interrupted sweep left a journal on disk."""
        return self.path.exists()
