"""Vectorized wake-up protocols (paper Sect. 5).

Mirrors :mod:`repro.core.wakeup` on flat arrays:

* :func:`fast_adhoc_wakeup` — ad hoc wake-up under an adversarial
  schedule.  Stations hold the wake-up message once they wake
  spontaneously or hear anything; holders join the ``NoSBroadcast`` phase
  structure at the next phase boundary (coloring part + dissemination
  part), exactly like ``AdhocWakeupNode``.
* :func:`fast_colored_wakeup` — wake-up with established coloring: an
  auxiliary coloring ``q_v`` among the initiators, then dissemination
  with colors ``p_v + q_v``.  The building block of consensus and leader
  election.

Both have batched forms running ``B`` seed-spawned replications at once;
the single-instance functions are the ``B = 1`` case (DESIGN.md §6).
Unlike the coloring/broadcast fast paths, the reference wake-up logic
lives in per-node state machines, so the vectorized coloring here is
driven round by round through :class:`VectorColoringState` — the ``(B, n)``
equivalent of :class:`repro.core.coloring.ColoringCore`, consuming the
same :class:`~repro.core.constants.ColoringSchedule` positions.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro import kernels as _kernels
from repro.core.constants import ColoringSchedule, ProtocolConstants, log2ceil
from repro.core.outcome import NEVER_INFORMED, BroadcastOutcome
from repro.errors import ProtocolError
from repro.fastsim.broadcast import dissemination_probs
from repro.fastsim.coloring import fast_coloring_batch
from repro.fastsim.engine import dissemination_loop_batch, draw_block
from repro.network.network import Network
from repro.sim.wakeup import WakeupSchedule
from repro.sinr.reception import NO_SENDER, resolve_reception_batch

Rngs = Sequence[np.random.Generator]


class VectorColoringState:
    """Round-driven ``StabilizeProbability`` state over ``(B, n)`` arrays.

    The array form of :class:`repro.core.coloring.ColoringCore`: callers
    feed it round offsets within one coloring execution plus per-round
    channel outcomes, and it tracks quit levels and test counters for all
    stations of all replications.  Stations outside the ``active`` mask
    neither transmit nor observe (their counters stay frozen), matching
    inactive reference nodes.  ``kernel`` selects the accumulation
    implementation (fused jitted loops under ``"compiled"`` with numba;
    the numpy expressions otherwise — same integer algebra either way,
    DESIGN.md §2.3).
    """

    def __init__(
        self,
        schedule: ColoringSchedule,
        batch_size: int,
        kernel: str = "numpy",
    ):
        self.schedule = schedule
        self.constants = schedule.constants
        self._fused = _kernels.use_compiled_updates(kernel)
        shape = (batch_size, schedule.n)
        self.quit_level = np.full(shape, -1, dtype=int)
        self.has_quit = np.zeros(shape, dtype=bool)
        self._density = np.zeros(shape, dtype=int)
        self._playoff = np.zeros(shape, dtype=int)

    def transmission_probs(
        self, offset: int, active: np.ndarray
    ) -> np.ndarray:
        """Per-station probability for the round at ``offset``."""
        level, _block, part, _r = self.schedule.position(offset)
        p_v = self.schedule.level_probability(level)
        if part != "density":
            p_v = min(1.0, p_v * self.constants.ceps)
        return np.where(active & ~self.has_quit, p_v, 0.0)

    def observe(
        self,
        offset: int,
        heard: np.ndarray,
        transmitted: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Account one round's outcome; evaluate tests at block ends."""
        level, _block, part, _r = self.schedule.position(offset)
        counting = active & ~self.has_quit
        if part == "density":
            if self._fused:
                _kernels.observe_accumulate(
                    self._density, counting, heard, transmitted, True
                )
            else:
                self._density += counting & (heard | transmitted)
        else:
            counts_self = self.constants.playoff_counts_self
            if self._fused:
                _kernels.observe_accumulate(
                    self._playoff, counting, heard, transmitted,
                    bool(counts_self),
                )
            else:
                self._playoff += counting & (
                    heard | (transmitted & counts_self)
                )
        if self.schedule.is_block_end(offset):
            n = self.schedule.n
            passed = (
                counting
                & (self._density >= self.constants.density_threshold(n))
                & (self._playoff >= self.constants.playoff_threshold(n))
            )
            self.quit_level[passed] = level
            self.has_quit |= passed
            self._density[:] = 0
            self._playoff[:] = 0

    def finished_colors(self) -> np.ndarray:
        """Per-station color once the execution is over (survivors get
        ``2 p_max``), regardless of activity."""
        n = self.schedule.n
        ladder = np.array(
            [
                self.constants.color_of_level(lv, n)
                for lv in range(self.schedule.levels)
            ]
        )
        colors = np.full(self.quit_level.shape, self.constants.survivor_color)
        quit_lv = np.clip(self.quit_level, 0, self.schedule.levels - 1)
        colors = np.where(self.has_quit, ladder[quit_lv], colors)
        return colors


def fast_adhoc_wakeup_batch(
    network: Network,
    schedule: WakeupSchedule,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    network_hook: Optional[Callable[[int, Network], Network]] = None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched ad hoc wake-up under one adversarial schedule.

    Semantics mirror :func:`repro.core.wakeup.run_adhoc_wakeup`: a
    station is awake once it wakes spontaneously or hears any message;
    woken stations join the phase structure (coloring + dissemination) at
    the next phase boundary.  ``completion_round`` is the round at which
    the last station woke; ``extras['wakeup_time']`` subtracts the first
    spontaneous wake.  A replication stops the moment all its stations
    are awake (per-replication ``total_rounds``).

    :param network_hook: optional per-round network callback
        (DESIGN.md §7) — each round's reception resolves on the network
        the hook returns, so the wake-up runs over a moving deployment
        (the default round budget still derives from the *initial*
        network's diameter).
    :param mac_hook: optional per-slot transmit-decision callback
        (:data:`repro.mac.TransmitHook`, DESIGN.md §11): applied to each
        round's transmission intents before reception resolves; the
        coloring state observes the *filtered* mask, exactly as a
        deferring real station would not have transmitted.
    """
    n = network.size
    B = len(rngs)
    if schedule.size != n:
        raise ProtocolError(
            f"wake schedule covers {schedule.size} stations, network has {n}"
        )
    coloring_schedule = ColoringSchedule(constants=constants, n=n)
    phase_len = constants.phase_rounds(n)
    coloring_len = coloring_schedule.total_rounds
    if round_budget is None:
        depth = network.diameter if n > 1 else 0
        spread = int(np.max(schedule.wake_rounds))
        round_budget = spread + phase_len * (2 * depth + budget_slack)

    gains = network.gain_operator
    kern = network.kernel_kind
    fused = _kernels.use_compiled_updates(kern)
    noise = network.params.noise
    beta = network.params.beta

    wake_rounds = schedule.wake_rounds
    spontaneous = wake_rounds >= 0

    awake_round = np.full((B, n), NEVER_INFORMED, dtype=int)
    # Phase from which a station participates (holders join at the next
    # phase boundary); "infinity" until awake.
    active_from = np.full((B, n), np.iinfo(np.int64).max, dtype=np.int64)
    total_rounds = np.full(B, round_budget, dtype=int)
    running = np.ones(B, dtype=bool)
    state: Optional[VectorColoringState] = None

    def mark_awake(mask: np.ndarray, round_no: int) -> None:
        newly = mask & (awake_round == NEVER_INFORMED)
        awake_round[newly] = round_no
        active_from[newly] = round_no // phase_len + 1

    phase_diss: Optional[np.ndarray] = None
    for round_no in range(round_budget):
        if not running.any():
            break
        phase, offset = divmod(round_no, phase_len)
        if offset == 0 or state is None:
            state = VectorColoringState(coloring_schedule, B, kernel=kern)
            phase_diss = None
        # Spontaneous wake-ups fire before this round's transmissions.
        if spontaneous.any():
            due = spontaneous & (wake_rounds == round_no)
            if due.any():
                mark_awake(running[:, None] & due[None, :], round_no)
        active = running[:, None] & (active_from <= phase)
        if offset < coloring_len:
            probs = state.transmission_probs(offset, active)
        else:
            if phase_diss is None:
                # Colors are frozen once the coloring part ends (observe
                # only runs during it), so compute the phase's
                # dissemination probabilities once.
                phase_diss = dissemination_probs(
                    state.finished_colors(), constants, n
                )
            probs = np.where(active, phase_diss, 0.0)
        draws = draw_block(rngs, running, 1, n)[:, 0, :]
        tx_mask = draws < probs
        if network_hook is not None:
            network = network_hook(round_no, network)
            gains = network.gain_operator
            kern = network.kernel_kind
            fused = _kernels.use_compiled_updates(kern)
        if mac_hook is not None:
            tx_mask = mac_hook(round_no, tx_mask, network)
        heard_from = resolve_reception_batch(
            gains, tx_mask, noise, beta, kernel=kern
        )
        heard = heard_from != NO_SENDER
        if fused:
            _kernels.wake_update(
                heard, awake_round, active_from, round_no,
                round_no // phase_len + 1, NEVER_INFORMED,
            )
        else:
            mark_awake(heard, round_no)
        if offset < coloring_len:
            state.observe(offset, heard, tx_mask, active)
        just_done = running & (awake_round != NEVER_INFORMED).all(axis=1)
        if just_done.any():
            total_rounds[just_done] = round_no + 1
            running &= ~just_done

    outcomes = []
    first_wake = schedule.first_wake
    for b in range(B):
        success = bool(np.all(awake_round[b] != NEVER_INFORMED))
        completion = int(awake_round[b].max()) if success else NEVER_INFORMED
        outcomes.append(
            BroadcastOutcome(
                success=success,
                completion_round=completion,
                total_rounds=int(total_rounds[b]),
                informed_round=awake_round[b].copy(),
                algorithm="AdhocWakeup(fast)",
                extras={
                    "first_wake": first_wake,
                    "wakeup_time": (
                        completion - first_wake if success else -1
                    ),
                },
            )
        )
    return outcomes


def fast_adhoc_wakeup(
    network: Network,
    schedule: WakeupSchedule,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_slack: int = 8,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized ad hoc wake-up (the ``B = 1`` batched case)."""
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_adhoc_wakeup_batch(
        network, schedule, constants, [rng],
        round_budget=round_budget, budget_slack=budget_slack,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]


#: Alias matching the protocol name used by the sweep engine and tests.
fast_wakeup = fast_adhoc_wakeup


def _initiator_masks(
    initiators, B: int, n: int
) -> np.ndarray:
    """Normalize initiators to a ``(B, n)`` boolean mask."""
    arr = np.asarray(initiators)
    if arr.dtype == bool and arr.shape == (n,):
        masks = np.broadcast_to(arr, (B, n)).copy()
    elif arr.dtype == bool and arr.shape == (B, n):
        masks = arr.copy()
    else:
        idx = sorted(set(int(i) for i in np.atleast_1d(arr).ravel()))
        if not all(0 <= i < n for i in idx):
            raise ProtocolError("initiator index outside station range")
        masks = np.zeros((B, n), dtype=bool)
        masks[:, idx] = True
    return masks


def fast_colored_wakeup_batch(
    network: Network,
    initiators,
    base_colors: np.ndarray,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    refresh_coloring: bool = True,
    enabled: Optional[np.ndarray] = None,
    network_hook: Optional[Callable[[int, Network], Network]] = None,
    mac_hook=None,
) -> list[BroadcastOutcome]:
    """Batched wake-up with established coloring (Sect. 5).

    :param initiators: spontaneously woken stations — an index sequence
        (shared), an ``(n,)`` boolean mask, or a per-replication ``(B, n)``
        mask.
    :param base_colors: backbone colors ``p_v`` — ``(n,)`` shared or
        ``(B, n)`` per replication.
    :param enabled: optional ``(B,)`` mask; disabled replications consume
        no randomness (consensus uses this for silent bit boxes).  Every
        enabled replication needs at least one initiator.
    :param network_hook: optional per-round network callback
        (DESIGN.md §7), threaded through the auxiliary coloring and the
        dissemination loop so the whole execution rides one moving
        deployment.
    :param mac_hook: optional per-slot transmit-decision callback
        (:data:`repro.mac.TransmitHook`, DESIGN.md §11), threaded
        through both stages.  Stage-local round numbers key the
        arbitration (each stage restarts at 0), so batched and
        sequential executions see identical MAC decisions.
    """
    n = network.size
    B = len(rngs)
    if enabled is None:
        enabled = np.ones(B, dtype=bool)
    else:
        enabled = np.asarray(enabled, dtype=bool)
    masks = _initiator_masks(initiators, B, n)
    masks &= enabled[:, None]
    if not masks[enabled].any(axis=1).all():
        raise ProtocolError("colored wake-up needs at least one initiator")
    base_colors = np.asarray(base_colors, dtype=float)
    if base_colors.shape == (n,):
        base_colors = np.broadcast_to(base_colors, (B, n))
    elif base_colors.shape != (B, n):
        raise ProtocolError(
            f"base_colors must have shape ({n},) or ({B}, {n}), "
            f"got {base_colors.shape}"
        )

    aux_rounds = 0
    q_colors = np.zeros((B, n))
    if refresh_coloring:
        aux = fast_coloring_batch(
            network, constants, rngs, participants=masks, enabled=enabled,
            network_hook=network_hook, mac_hook=mac_hook,
        )
        aux_rounds = aux.rounds
        q_colors = np.where(np.isnan(aux.colors), 0.0, aux.colors)

    combined = base_colors + q_colors
    diss = dissemination_probs(combined, constants, n)
    informed = masks.copy()
    informed_round = np.where(masks, 0, NEVER_INFORMED)

    if round_budget is None:
        depth = network.diameter if n > 1 else 0
        logn = log2ceil(n)
        round_budget = budget_scale * (depth * logn + logn * logn)

    def probs(_round_no: int, inf: np.ndarray) -> np.ndarray:
        return np.where(inf, diss, 0.0)

    last = dissemination_loop_batch(
        network, rngs, informed, informed_round, probs,
        0, round_budget, enabled=enabled, network_hook=network_hook,
        mac_hook=mac_hook,
    )

    outcomes = []
    for b in range(B):
        # Shift by the auxiliary stage so reported rounds are end-to-end.
        reported = np.where(
            informed_round[b] >= 0,
            informed_round[b] + aux_rounds,
            NEVER_INFORMED,
        )
        success = bool(enabled[b]) and bool(
            np.all(reported != NEVER_INFORMED)
        )
        completion = int(reported.max()) if success else NEVER_INFORMED
        outcomes.append(
            BroadcastOutcome(
                success=success,
                completion_round=completion,
                total_rounds=int(last[b]) + aux_rounds,
                informed_round=reported,
                algorithm="ColoredWakeup(fast)",
                extras={"aux_coloring_rounds": aux_rounds},
            )
        )
    return outcomes


def fast_colored_wakeup(
    network: Network,
    initiators,
    base_colors: np.ndarray,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    round_budget: Optional[int] = None,
    budget_scale: int = 16,
    refresh_coloring: bool = True,
    network_hook=None,
    mac_hook=None,
) -> BroadcastOutcome:
    """Vectorized wake-up with established coloring (``B = 1``)."""
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_colored_wakeup_batch(
        network, initiators, base_colors, constants, [rng],
        round_budget=round_budget, budget_scale=budget_scale,
        refresh_coloring=refresh_coloring, network_hook=network_hook,
        mac_hook=mac_hook,
    )[0]
