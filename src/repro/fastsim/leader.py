"""Vectorized leader election (paper Sect. 5).

Mirrors :mod:`repro.core.leader_election`: every station draws an ID
uniformly from ``{1..n^3}`` (unique whp) and the network runs
min-consensus on the IDs; the holder of the agreed minimum is the
leader.  The batched form draws each replication's IDs from its own
seed-spawned generator — in the same stream position as the reference,
so reference and fast runs with one seed see identical ID vectors — and
then pushes all replications through :func:`fast_consensus_batch`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.core.leader_election import LeaderElectionResult
from repro.errors import ProtocolError
from repro.fastsim.consensus import fast_consensus_batch
from repro.network.network import Network

Rngs = Sequence[np.random.Generator]


def fast_leader_election_batch(
    network: Network,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    box_budget: Optional[int] = None,
    network_hook=None,
    mac_hook=None,
) -> list[LeaderElectionResult]:
    """Batched leader election over seed-spawned replications.

    ``network_hook`` (optional, DESIGN.md §7) is forwarded to the
    underlying consensus so the election runs over a moving deployment;
    ``mac_hook`` (DESIGN.md §11) likewise threads MAC arbitration
    through every consensus stage.
    """
    n = network.size
    if n < 1:
        raise ProtocolError("leader election needs at least one station")
    id_space = max(2, n ** 3)
    ids = np.stack(
        [rng.integers(1, id_space + 1, size=n) for rng in rngs]
    )
    results = fast_consensus_batch(
        network, ids, id_space, constants, rngs, box_budget=box_budget,
        network_hook=network_hook, mac_hook=mac_hook,
    )
    elections = []
    for b, result in enumerate(results):
        agreed = int(result.decided[0]) if result.agreed else -1
        holders = (
            np.flatnonzero(ids[b] == agreed) if agreed >= 0 else np.array([])
        )
        leader = int(holders[0]) if holders.size == 1 else -1
        elections.append(
            LeaderElectionResult(
                leader=leader,
                ids=ids[b],
                agreed_id=agreed,
                unique=holders.size == 1,
                total_rounds=result.total_rounds,
            )
        )
    return elections


def fast_leader_election(
    network: Network,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    box_budget: Optional[int] = None,
    network_hook=None,
    mac_hook=None,
) -> LeaderElectionResult:
    """Vectorized leader election (the ``B = 1`` batched case).

    Same signature and result type as
    :func:`repro.core.leader_election.run_leader_election`.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    return fast_leader_election_batch(
        network, constants, [rng], box_budget=box_budget,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]
