"""Vectorized bitwise min-consensus (paper Sect. 5).

Mirrors :mod:`repro.core.consensus`: one global ``StabilizeProbability``
establishes backbone colors, then one time-boxed colored wake-up per bit
of the message space — stations whose value extends the learned prefix
with ``0`` initiate, hearing (or initiating) within the box records bit
``0``, silence records bit ``1``.  Prefix bookkeeping is integer-valued
here (``prefix*2 + bit``) instead of the reference's bit strings, which
is the same induction vectorized.

:func:`fast_consensus_batch` runs ``B`` replications (independent value
vectors and random streams) through every bit box at once; replications
whose initiator set is empty sit out the box silently without consuming
randomness, exactly like the reference's no-transmitter branch.  Results
reuse :class:`repro.core.consensus.ConsensusResult` so the experiment
harness and tests treat reference and fast runs uniformly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.consensus import ConsensusResult, bits_for_range
from repro.core.constants import ProtocolConstants, log2ceil
from repro.errors import ProtocolError
from repro.fastsim.coloring import fast_coloring_batch
from repro.fastsim.wakeup import fast_colored_wakeup_batch
from repro.network.network import Network

Rngs = Sequence[np.random.Generator]


def fast_consensus_batch(
    network: Network,
    values: np.ndarray,
    x_max: int,
    constants: ProtocolConstants,
    rngs: Rngs,
    *,
    box_budget: Optional[int] = None,
    budget_scale: int = 16,
    network_hook=None,
    mac_hook=None,
) -> list[ConsensusResult]:
    """Agree on the minimum of each replication's values, batched.

    :param values: per-station initial values in ``{0..x_max}`` —
        ``(n,)`` shared across replications or ``(B, n)`` per replication.
    :param box_budget: rounds per bit time box; defaults to the wake-up
        budget ``budget_scale * (D log n + log^2 n)`` — every box must
        use the *same* fixed length so silence is meaningful.
    :param network_hook: optional per-round network callback
        (DESIGN.md §7), threaded through the backbone coloring and every
        bit box; a stateful hook (``repro.deploy.mobility.mobility_hook``)
        keeps one trajectory across all stages.
    :param mac_hook: optional per-slot transmit-decision callback
        (:data:`repro.mac.TransmitHook`, DESIGN.md §11), threaded
        through the backbone coloring and every bit box (round-keyed
        arbitration makes the skipped silent boxes stream-neutral).
    """
    n = network.size
    B = len(rngs)
    values = np.asarray(values, dtype=np.int64)
    if values.shape == (n,):
        values = np.broadcast_to(values, (B, n)).copy()
    elif values.shape != (B, n):
        raise ProtocolError(
            f"need one value per station: values must have shape ({n},) "
            f"or ({B}, {n}), got {values.shape}"
        )
    if (values < 0).any():
        raise ProtocolError("consensus values must be >= 0")
    width = bits_for_range(x_max)
    if (values >= 2 ** width).any():
        raise ProtocolError(f"some value does not fit in {width} bits")

    backbone = fast_coloring_batch(
        network, constants, rngs, network_hook=network_hook,
        mac_hook=mac_hook,
    )
    base_colors = np.where(np.isnan(backbone.colors), 0.0, backbone.colors)
    total_rounds = np.full(B, backbone.rounds, dtype=int)

    if box_budget is None:
        depth = network.diameter if n > 1 else 0
        logn = log2ceil(n)
        box_budget = budget_scale * (depth * logn + logn * logn)
    silent_box = box_budget + constants.coloring_total_rounds(n)

    prefix = np.zeros((B, n), dtype=np.int64)
    # Whether each station's own value still extends its learned prefix.
    matches = np.ones((B, n), dtype=bool)
    rounds_per_bit = np.zeros((B, width), dtype=int)
    for bit_pos in range(width):
        bits = (values >> (width - 1 - bit_pos)) & 1
        initiators = matches & (bits == 0)
        live = initiators.any(axis=1)
        if live.any():
            outcomes = fast_colored_wakeup_batch(
                network,
                initiators,
                base_colors,
                constants,
                rngs,
                round_budget=box_budget,
                enabled=live,
                network_hook=network_hook,
                mac_hook=mac_hook,
            )
            heard = np.stack(
                [out.informed_round >= 0 for out in outcomes]
            )
            box_rounds = np.array(
                [out.total_rounds for out in outcomes], dtype=int
            )
        else:
            heard = np.zeros((B, n), dtype=bool)
            box_rounds = np.zeros(B, dtype=int)
        # Nobody transmits: the box is silent for its full length.
        heard[~live] = False
        box_rounds[~live] = silent_box
        rounds_per_bit[:, bit_pos] = box_rounds
        total_rounds += box_rounds
        decided_bit = np.where(heard, 0, 1)
        prefix = prefix * 2 + decided_bit
        matches &= bits == decided_bit

    results = []
    for b in range(B):
        decided = prefix[b]
        agreed = bool(np.all(decided == decided[0]))
        correct = agreed and int(decided[0]) == int(values[b].min())
        results.append(
            ConsensusResult(
                decided=decided.copy(),
                agreed=agreed,
                correct=correct,
                total_rounds=int(total_rounds[b]),
                rounds_per_bit=[int(r) for r in rounds_per_bit[b]],
                bits=width,
            )
        )
    return results


def fast_consensus(
    network: Network,
    values: Sequence[int],
    x_max: int,
    constants: Optional[ProtocolConstants] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    box_budget: Optional[int] = None,
    budget_scale: int = 16,
    network_hook=None,
    mac_hook=None,
) -> ConsensusResult:
    """Vectorized min-consensus (the ``B = 1`` batched case).

    Same signature and result type as
    :func:`repro.core.consensus.run_consensus`.
    """
    if constants is None:
        constants = ProtocolConstants.practical()
    if rng is None:
        rng = np.random.default_rng(0)
    values = np.asarray([int(v) for v in values], dtype=np.int64)
    if values.shape != (len(network),):
        raise ProtocolError(
            f"need one value per station: got {values.shape[0]} for "
            f"n={network.size}"
        )
    return fast_consensus_batch(
        network, values, x_max, constants, [rng],
        box_budget=box_budget, budget_scale=budget_scale,
        network_hook=network_hook, mac_hook=mac_hook,
    )[0]
