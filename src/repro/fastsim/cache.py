"""Content-addressed on-disk cache for grid-sweep results.

A grid point is fully determined by *(protocol kind, deployment
fingerprint, constants, seed, kwargs)* — see :func:`point_key` — so its
:class:`~repro.fastsim.sweep.SweepResult` can be stored once and replayed
on every re-run.  This is what makes ``python -m repro.experiments all``
incremental: upgrading ``--scale quick`` to ``--scale full`` re-uses every
point the quick sweep already computed, and repeated full runs are pure
cache replays.

Keys are SHA-256 digests of a canonical byte encoding
(:func:`fingerprint_bytes`) of everything that determines a point's
result.  Numpy arrays contribute shape + dtype + raw bytes; dataclasses
contribute their type name and field values; generic objects (wake-up
schedules, ...) contribute their type name and ``__dict__``.  Anything
that changes the simulation — constants, deployment coordinates, SINR
parameters, seeds, per-protocol kwargs — therefore changes the key, and
stale entries are simply never addressed again (no invalidation protocol
is needed for *input* changes; prune the directory to reclaim space).

**Keys cover inputs, not code.**  Editing a simulation kernel or a
``post`` hook's body does not change any key, so a populated cache will
replay pre-change results.  The CLI surfaces every replay ("N/M grid
points from cache") exactly so this is visible; after changing
simulation code, pass ``--no-cache`` or clear the directory.  Bump
:data:`CACHE_SCHEMA_VERSION` when the stored payload layout changes.

Storage is one pickle file per key, written atomically (temp file +
fsync + ``os.replace``) so a crashed run never leaves a truncated entry
a later run would trip over.  Every entry additionally carries a
**content checksum header** (:data:`ENTRY_MAGIC` + SHA-256 of the
payload bytes): :meth:`ResultCache.get` verifies it end-to-end, so a
torn, truncated or bit-flipped entry — however it got that way — is
detected, moved aside as ``<key>.quarantine`` for inspection, and
served as a *miss*; never a crash, and never a silently wrong replay
(DESIGN.md §10.2).  ``tools/cache_gc.py --verify`` runs the same check
over a whole directory for fleet cron jobs.  Temp files orphaned by a
crash (plus stale ``*.lease`` markers from :mod:`repro.distrib.leases`
and aged ``*.quarantine`` files) are swept by
:meth:`ResultCache.prune` after a grace window.

That atomicity is also what lets many *hosts* treat one cache directory
as a **result bus** (DESIGN.md §9): concurrent ``put`` calls for the
same key are last-write-wins of identical deterministic bytes, readers
see either nothing or a complete entry — never a torn one — and
``run_grid(workers=[...])`` coordinates whole sweeps through it.

**Shared with the query service.**  A :mod:`repro.service` daemon given
``--cache-dir`` stores its ``sweep`` results under the same
:func:`point_key` a CLI grid run computes — the key is derived purely
from the point's inputs, never from *how* it was executed — so a
directory populated by a service run replays in CLI runs and vice
versa.  This sharing is by construction, not by convention, and is
pinned down in ``tests/test_service.py``.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro import faults

#: Bump when the stored payload layout changes; old entries become
#: unaddressable rather than mis-read.
CACHE_SCHEMA_VERSION = 1

#: Age (seconds since last mtime) past which :meth:`ResultCache.prune`
#: sweeps orphaned write temporaries (``.*.tmp``), lease files
#: (``*.lease``) and quarantined entries (``*.quarantine``).  Generous:
#: a live writer finishes its ``os.replace`` in milliseconds and a live
#: lease holder refreshes its file every few seconds, so anything this
#: old belongs to a crashed process.
TMP_GRACE_S = 3600.0

#: Leading bytes of a checksummed cache entry: the magic, one space,
#: 64 hex chars of SHA-256 over the payload, one newline, then the
#: pickled payload.  Files without the magic are legacy (pre-checksum)
#: entries and load unverified.
ENTRY_MAGIC = b"repro-cache-v2"

#: Clock-skew tolerance for mtime-based decisions in
#: :meth:`ResultCache.prune`.  An mtime further in the future than this
#: cannot come from a live writer on any sanely synchronized host: the
#: entry's recency is unknowable, so it ranks *oldest* for LRU (the
#: safe direction — entries are recomputable, and treating skew as
#: freshness would pin the entry forever), and debris so dated is
#: sweepable immediately.
CLOCK_SKEW_TOLERANCE_S = 900.0

#: Suffix of quarantined entries: a ``<key>.pkl`` whose checksum or
#: unpickling failed is atomically renamed ``<key>.quarantine`` — out
#: of the addressable namespace (the next ``get`` is a clean miss and
#: the recompute's ``put`` does not resurrect it), kept on disk for
#: inspection until :meth:`ResultCache.prune` ages it out.
QUARANTINE_SUFFIX = ".quarantine"


def fingerprint_bytes(obj) -> bytes:
    """Canonical byte encoding of ``obj`` for cache-key hashing.

    Deterministic across processes and sessions (no ``id()``, no salted
    hashes, no pickle memo effects) for the value types that appear in
    grid points; unknown objects fall back to type name + ``__dict__``.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return f"{type(obj).__name__}:{obj!r};".encode()
    if isinstance(obj, float):
        # repr round-trips doubles exactly in python >= 3.1.
        return f"float:{obj!r};".encode()
    if isinstance(obj, np.generic):
        return fingerprint_bytes(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        head = f"ndarray:{arr.shape}:{arr.dtype.str};".encode()
        return head + arr.tobytes()
    if isinstance(obj, np.random.SeedSequence):
        return (
            f"seedseq:{obj.entropy!r}:{tuple(obj.spawn_key)!r};".encode()
        )
    if isinstance(obj, (tuple, list)):
        parts = b"".join(fingerprint_bytes(v) for v in obj)
        return f"{type(obj).__name__}[".encode() + parts + b"];"
    if isinstance(obj, dict):
        parts = b"".join(
            fingerprint_bytes(k) + fingerprint_bytes(v)
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return b"dict{" + parts + b"};"
    fp = getattr(obj, "fingerprint", None)
    if callable(fp):
        return f"fp:{type(obj).__name__}:{fp()};".encode()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        parts = b"".join(
            fingerprint_bytes(f.name)
            + fingerprint_bytes(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        )
        return f"dc:{type(obj).__name__}(".encode() + parts + b");"
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return f"obj:{type(obj).__name__}(".encode() + fingerprint_bytes(
            dict(state)
        ) + b");"
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} for the result cache"
    )


def digest(obj) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(fingerprint_bytes(obj)).hexdigest()


def point_key(
    kind: str,
    network_fingerprint: str,
    constants,
    seed,
    n_replications: int,
    kwargs: dict,
    use_batch: bool = True,
    post_name: str = "",
) -> str:
    """Cache key of one grid point — the tuple the ISSUE of record names:
    *(kind, deployment fingerprint, constants, seed, kwargs)*, plus the
    replication count, the batch/reference switch and the identity of the
    point's post-processing hook (its extras are stored alongside the
    sweep, so a renamed hook must not replay stale extras).

    The *kernel* choice (``Network(kernel=...)`` / ``REPRO_KERNEL``) is
    deliberately absent, here and in the network fingerprint the key
    embeds: compiled and numpy kernels are bitwise identical
    (DESIGN.md §2.3, enforced by ``tests/test_kernel_differential.py``),
    so a compiled run replaying a numpy run's entry — or vice versa —
    returns exactly the bytes it would have computed.
    """
    return digest(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "network": network_fingerprint,
            "constants": constants,
            "seed": seed,
            "n_replications": n_replications,
            "kwargs": kwargs,
            "use_batch": use_batch,
            "post": post_name,
        }
    )


def _flip_byte_on_disk(path: Path) -> None:
    """Invert the last byte of ``path`` in place (chaos helper).

    Implements the ``cache.get.corrupt`` site: bit-rot injected just
    before a read, so the reader's checksum pass — not the writer's
    good intentions — is what the test exercises.  Missing files are
    ignored (the site may fire on a miss).
    """
    try:
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes((byte[0] ^ 0xFF,)))
    except (OSError, IndexError):
        pass


class ResultCache:
    """One directory of content-addressed grid-point results.

    Mobility sweeps are keyed like everything else — through their
    inputs: a dynamic grid point carries its
    :class:`~repro.deploy.mobility.MobilityModel` in the kwargs, and
    :func:`fingerprint_bytes` hashes the model via its
    ``fingerprint()`` — a digest of ``identity()`` (model type, every
    physical knob, the trajectory seed).  A static run and a dynamic
    run of the same deployment therefore have different keys by
    construction, as do runs under different mobility models or seeds;
    dynamic and static results can never replay each other
    (DESIGN.md §7).

    :param root: cache directory (created on first write).
    """

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the addressable namespace.

        Atomic rename to ``<key>.quarantine``: concurrent readers see
        either the (corrupt) entry — and quarantine it themselves, the
        second rename failing harmlessly — or a clean miss.  The file
        is preserved for inspection (``tools/cache_gc.py --verify``
        reports it) and aged out by :meth:`prune`.
        """
        target = path.with_suffix(QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            return
        self.quarantined += 1

    @staticmethod
    def _decode(data: bytes):
        """Verify and unpickle one entry's raw bytes.

        :raises ValueError: on a checksum mismatch (torn / truncated /
            bit-flipped entry) or a malformed header.
        :raises pickle.UnpicklingError: (and friends) when the payload
            does not unpickle — legacy entries have no checksum to
            catch corruption first.
        """
        if data.startswith(ENTRY_MAGIC):
            header_end = data.index(b"\n", 0, len(ENTRY_MAGIC) + 80)
            stored = data[len(ENTRY_MAGIC) + 1:header_end]
            body = memoryview(data)[header_end + 1:]
            actual = hashlib.sha256(body).hexdigest().encode("ascii")
            if actual != stored:
                raise ValueError(
                    f"checksum mismatch: header {stored!r:.74}, "
                    f"payload {actual!r}"
                )
            return pickle.loads(body)
        # Legacy (pre-checksum) entry: plain pickle, loaded unverified.
        return pickle.loads(data)

    def get(self, key: str) -> Optional[tuple]:
        """Stored ``(sweep, extras)`` payload, or ``None`` on a miss.

        Integrity is verified end-to-end: the payload's SHA-256 must
        match the entry's header.  A torn, truncated or bit-flipped
        entry — or one whose pickle does not load — is **quarantined**
        (renamed ``<key>.quarantine``, counted in :attr:`quarantined`)
        and served as a miss, so the caller recomputes; corruption can
        never crash a sweep or replay as a wrong result.  This is also
        the contract the distributed result bus leans on: a shard
        coordinator's bus-recovery probe goes through this method, so a
        foreign daemon's torn publish degrades to a re-dispatch, never
        a consumed corruption (DESIGN.md §10.2).
        """
        path = self._path(key)
        if faults.maybe_fire("cache.get.corrupt") is not None:
            _flip_byte_on_disk(path)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = self._decode(data)
        except (ValueError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, KeyError,
                MemoryError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Refresh recency so LRU pruning (:meth:`prune`) evicts the
            # entries that stopped being replayed, not the ones in
            # active service.
            os.utime(path)
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: tuple) -> None:
        """Atomically store ``(sweep, extras)`` under ``key``.

        The payload is pickled once, its SHA-256 recorded in the entry
        header, and the bytes fsynced before the atomic ``os.replace``
        — a host crash leaves either no entry or a complete, verified
        one, and anything in between (torn by a dying kernel, truncated
        by ``ENOSPC`` cleanup) fails :meth:`get`'s checksum and is
        quarantined rather than replayed.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if faults.maybe_fire("cache.put.enospc") is not None:
            raise OSError(
                errno.ENOSPC, "injected ENOSPC (chaos plan)",
                str(self._path(key)),
            )
        header = (
            ENTRY_MAGIC + b" "
            + hashlib.sha256(blob).hexdigest().encode("ascii") + b"\n"
        )
        if faults.maybe_fire("cache.put.torn") is not None:
            # A write cut mid-payload: the header promises the full
            # blob, the body stops halfway — get() must quarantine it.
            blob = blob[: max(1, len(blob) // 2)]
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def usage(self) -> tuple[int, int]:
        """``(entries, bytes)`` currently stored."""
        entries = size = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return entries, size

    def verify(self) -> dict:
        """Integrity scan of every stored entry, without side effects.

        Reads each ``*.pkl`` and checks its checksum header (legacy
        pre-checksum entries are counted separately — they carry no
        checksum to verify), and counts quarantined files already on
        disk.  Nothing is renamed, deleted or recomputed: this is the
        read-only audit behind ``tools/cache_gc.py --verify``, safe to
        run against a cache a fleet is actively using.

        :returns: report dict with ``entries``, ``verified``,
            ``legacy`` (unverifiable pre-checksum entries), ``corrupt``
            (checksum or unpickle failures, with the offending keys in
            ``corrupt_keys``) and ``quarantined`` (files a previous
            reader already pulled from the namespace).
        """
        entries = verified = legacy = 0
        corrupt_keys = []
        quarantined = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.pkl")):
                entries += 1
                try:
                    data = path.read_bytes()
                    self._decode(data)
                except (OSError, ValueError, pickle.UnpicklingError,
                        EOFError, AttributeError, ImportError,
                        IndexError, KeyError, MemoryError):
                    corrupt_keys.append(path.stem)
                    continue
                if data.startswith(ENTRY_MAGIC):
                    verified += 1
                else:
                    legacy += 1
            quarantined = sum(
                1 for _ in self.root.glob(f"*{QUARANTINE_SUFFIX}")
            )
        return {
            "root": str(self.root),
            "entries": entries,
            "verified": verified,
            "legacy": legacy,
            "corrupt": len(corrupt_keys),
            "corrupt_keys": corrupt_keys,
            "quarantined": quarantined,
        }

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        dry_run: bool = False,
        tmp_grace_s: float = TMP_GRACE_S,
    ) -> dict:
        """Evict least-recently-used entries until within the budgets.

        Content-addressed keys never go stale on input changes, so the
        directory only ever grows — this is the reclamation path
        (``tools/cache_gc.py`` and the CLI's ``--cache-prune``).
        Recency is file mtime, refreshed on every :meth:`get` hit; the
        oldest entries go first.  Nothing is evicted when no budget is
        given (pure report).

        Mtimes are advisory, not trusted: an entry dated more than
        :data:`CLOCK_SKEW_TOLERANCE_S` into the future (written through
        a skewed NFS client, a container with a broken clock, a badly
        restored backup) ranks *oldest*, not freshest — otherwise one
        skewed writer would pin its entries in the cache forever while
        honestly-dated neighbours are evicted around them.  Eviction is
        the safe direction: entries are recomputable by construction.

        Every call additionally sweeps the directory's *debris*: write
        temporaries (``.*.tmp`` — a :meth:`put` killed between
        ``mkstemp`` and ``os.replace`` leaks one, invisible to the
        ``*.pkl`` accounting), lease files (``*.lease``, left by
        SIGKILLed workers — :mod:`repro.distrib.leases`) and
        quarantined entries (``*.quarantine``, preserved long enough to
        inspect) whose mtime is older than ``tmp_grace_s`` **or**
        beyond the future-skew tolerance (far-future debris would
        otherwise never age into the horizon).  Live writers and lease
        holders touch their files far more often than the grace window,
        so the sweep only ever collects orphans.

        :param max_bytes: target total payload size.
        :param max_entries: target entry count.
        :param dry_run: report what would be evicted without deleting.
        :param tmp_grace_s: minimum age of swept debris files (pass
            ``None`` to skip the sweep entirely).
        :returns: report dict with ``entries``/``bytes`` before and
            after, the number of entries (to be) ``evicted``, the
            number of debris files (to be) swept as ``tmp_swept``, and
            the number of quarantined files present before the sweep
            as ``quarantined``.
        """
        now = time.time()
        skew_horizon = now + CLOCK_SKEW_TOLERANCE_S

        def lru_rank(mtime: float) -> float:
            # Future-skewed entries rank before (older than) everything
            # honestly dated; among themselves, most-skewed goes first.
            if mtime > skew_horizon:
                return skew_horizon - mtime  # negative, monotone in skew
            return mtime

        records = []
        debris = []
        quarantined = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records.append(
                    (lru_rank(stat.st_mtime), stat.st_size, path)
                )
            quarantined = sum(
                1 for _ in self.root.glob(f"*{QUARANTINE_SUFFIX}")
            )
            if tmp_grace_s is not None:
                horizon = now - tmp_grace_s
                patterns = (".*.tmp", "*.lease", f"*{QUARANTINE_SUFFIX}")
                for pattern in patterns:
                    for path in self.root.glob(pattern):
                        try:
                            mtime = path.stat().st_mtime
                        except OSError:
                            continue
                        if mtime <= horizon or mtime > skew_horizon:
                            debris.append(path)
        if not dry_run:
            for path in debris:
                try:
                    path.unlink()
                except OSError:
                    pass
        records.sort()  # oldest effective mtime first
        total_entries = len(records)
        total_bytes = sum(size for _, size, _ in records)
        keep_entries, keep_bytes = total_entries, total_bytes
        evict = []
        for _rank, size, path in records:
            over_bytes = max_bytes is not None and keep_bytes > max_bytes
            over_entries = (
                max_entries is not None and keep_entries > max_entries
            )
            if not (over_bytes or over_entries):
                break
            evict.append(path)
            keep_entries -= 1
            keep_bytes -= size
        if not dry_run:
            for path in evict:
                try:
                    path.unlink()
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "evicted": len(evict),
            "kept_entries": keep_entries,
            "kept_bytes": keep_bytes,
            "tmp_swept": len(debris),
            "quarantined": quarantined,
            "dry_run": dry_run,
        }
