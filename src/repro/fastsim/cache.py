"""Content-addressed on-disk cache for grid-sweep results.

A grid point is fully determined by *(protocol kind, deployment
fingerprint, constants, seed, kwargs)* — see :func:`point_key` — so its
:class:`~repro.fastsim.sweep.SweepResult` can be stored once and replayed
on every re-run.  This is what makes ``python -m repro.experiments all``
incremental: upgrading ``--scale quick`` to ``--scale full`` re-uses every
point the quick sweep already computed, and repeated full runs are pure
cache replays.

Keys are SHA-256 digests of a canonical byte encoding
(:func:`fingerprint_bytes`) of everything that determines a point's
result.  Numpy arrays contribute shape + dtype + raw bytes; dataclasses
contribute their type name and field values; generic objects (wake-up
schedules, ...) contribute their type name and ``__dict__``.  Anything
that changes the simulation — constants, deployment coordinates, SINR
parameters, seeds, per-protocol kwargs — therefore changes the key, and
stale entries are simply never addressed again (no invalidation protocol
is needed for *input* changes; prune the directory to reclaim space).

**Keys cover inputs, not code.**  Editing a simulation kernel or a
``post`` hook's body does not change any key, so a populated cache will
replay pre-change results.  The CLI surfaces every replay ("N/M grid
points from cache") exactly so this is visible; after changing
simulation code, pass ``--no-cache`` or clear the directory.  Bump
:data:`CACHE_SCHEMA_VERSION` when the stored payload layout changes.

Storage is one pickle file per key, written atomically (temp file +
``os.replace``) so a crashed run never leaves a truncated entry a later
run would trip over; unreadable entries degrade to misses, and temp
files orphaned by a crash (plus stale ``*.lease`` markers from
:mod:`repro.distrib.leases`) are swept by :meth:`ResultCache.prune`
after a grace window.

That atomicity is also what lets many *hosts* treat one cache directory
as a **result bus** (DESIGN.md §9): concurrent ``put`` calls for the
same key are last-write-wins of identical deterministic bytes, readers
see either nothing or a complete entry — never a torn one — and
``run_grid(workers=[...])`` coordinates whole sweeps through it.

**Shared with the query service.**  A :mod:`repro.service` daemon given
``--cache-dir`` stores its ``sweep`` results under the same
:func:`point_key` a CLI grid run computes — the key is derived purely
from the point's inputs, never from *how* it was executed — so a
directory populated by a service run replays in CLI runs and vice
versa.  This sharing is by construction, not by convention, and is
pinned down in ``tests/test_service.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

#: Bump when the stored payload layout changes; old entries become
#: unaddressable rather than mis-read.
CACHE_SCHEMA_VERSION = 1

#: Age (seconds since last mtime) past which :meth:`ResultCache.prune`
#: sweeps orphaned write temporaries (``.*.tmp``) and lease files
#: (``*.lease``).  Generous: a live writer finishes its ``os.replace``
#: in milliseconds and a live lease holder refreshes its file every few
#: seconds, so anything this old belongs to a crashed process.
TMP_GRACE_S = 3600.0


def fingerprint_bytes(obj) -> bytes:
    """Canonical byte encoding of ``obj`` for cache-key hashing.

    Deterministic across processes and sessions (no ``id()``, no salted
    hashes, no pickle memo effects) for the value types that appear in
    grid points; unknown objects fall back to type name + ``__dict__``.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return f"{type(obj).__name__}:{obj!r};".encode()
    if isinstance(obj, float):
        # repr round-trips doubles exactly in python >= 3.1.
        return f"float:{obj!r};".encode()
    if isinstance(obj, np.generic):
        return fingerprint_bytes(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        head = f"ndarray:{arr.shape}:{arr.dtype.str};".encode()
        return head + arr.tobytes()
    if isinstance(obj, np.random.SeedSequence):
        return (
            f"seedseq:{obj.entropy!r}:{tuple(obj.spawn_key)!r};".encode()
        )
    if isinstance(obj, (tuple, list)):
        parts = b"".join(fingerprint_bytes(v) for v in obj)
        return f"{type(obj).__name__}[".encode() + parts + b"];"
    if isinstance(obj, dict):
        parts = b"".join(
            fingerprint_bytes(k) + fingerprint_bytes(v)
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return b"dict{" + parts + b"};"
    fp = getattr(obj, "fingerprint", None)
    if callable(fp):
        return f"fp:{type(obj).__name__}:{fp()};".encode()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        parts = b"".join(
            fingerprint_bytes(f.name)
            + fingerprint_bytes(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        )
        return f"dc:{type(obj).__name__}(".encode() + parts + b");"
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return f"obj:{type(obj).__name__}(".encode() + fingerprint_bytes(
            dict(state)
        ) + b");"
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} for the result cache"
    )


def digest(obj) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(fingerprint_bytes(obj)).hexdigest()


def point_key(
    kind: str,
    network_fingerprint: str,
    constants,
    seed,
    n_replications: int,
    kwargs: dict,
    use_batch: bool = True,
    post_name: str = "",
) -> str:
    """Cache key of one grid point — the tuple the ISSUE of record names:
    *(kind, deployment fingerprint, constants, seed, kwargs)*, plus the
    replication count, the batch/reference switch and the identity of the
    point's post-processing hook (its extras are stored alongside the
    sweep, so a renamed hook must not replay stale extras).

    The *kernel* choice (``Network(kernel=...)`` / ``REPRO_KERNEL``) is
    deliberately absent, here and in the network fingerprint the key
    embeds: compiled and numpy kernels are bitwise identical
    (DESIGN.md §2.3, enforced by ``tests/test_kernel_differential.py``),
    so a compiled run replaying a numpy run's entry — or vice versa —
    returns exactly the bytes it would have computed.
    """
    return digest(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "network": network_fingerprint,
            "constants": constants,
            "seed": seed,
            "n_replications": n_replications,
            "kwargs": kwargs,
            "use_batch": use_batch,
            "post": post_name,
        }
    )


class ResultCache:
    """One directory of content-addressed grid-point results.

    Mobility sweeps are keyed like everything else — through their
    inputs: a dynamic grid point carries its
    :class:`~repro.deploy.mobility.MobilityModel` in the kwargs, and
    :func:`fingerprint_bytes` hashes the model via its
    ``fingerprint()`` — a digest of ``identity()`` (model type, every
    physical knob, the trajectory seed).  A static run and a dynamic
    run of the same deployment therefore have different keys by
    construction, as do runs under different mobility models or seeds;
    dynamic and static results can never replay each other
    (DESIGN.md §7).

    :param root: cache directory (created on first write).
    """

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[tuple]:
        """Stored ``(sweep, extras)`` payload, or ``None`` on a miss.

        Corrupt or unreadable entries count as misses — the caller
        recomputes and overwrites them.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Refresh recency so LRU pruning (:meth:`prune`) evicts the
            # entries that stopped being replayed, not the ones in
            # active service.
            os.utime(path)
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: tuple) -> None:
        """Atomically store ``(sweep, extras)`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def usage(self) -> tuple[int, int]:
        """``(entries, bytes)`` currently stored."""
        entries = size = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return entries, size

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        dry_run: bool = False,
        tmp_grace_s: float = TMP_GRACE_S,
    ) -> dict:
        """Evict least-recently-used entries until within the budgets.

        Content-addressed keys never go stale on input changes, so the
        directory only ever grows — this is the reclamation path
        (``tools/cache_gc.py`` and the CLI's ``--cache-prune``).
        Recency is file mtime, refreshed on every :meth:`get` hit; the
        oldest entries go first.  Nothing is evicted when no budget is
        given (pure report).

        Every call additionally sweeps the directory's *debris*: write
        temporaries (``.*.tmp`` — a :meth:`put` killed between
        ``mkstemp`` and ``os.replace`` leaks one, invisible to the
        ``*.pkl`` accounting) and lease files (``*.lease``, left by
        SIGKILLed workers — :mod:`repro.distrib.leases`) whose mtime is
        older than ``tmp_grace_s``.  Live writers and lease holders
        touch their files far more often than the grace window, so the
        sweep only ever collects orphans.

        :param max_bytes: target total payload size.
        :param max_entries: target entry count.
        :param dry_run: report what would be evicted without deleting.
        :param tmp_grace_s: minimum age of swept debris files (pass
            ``None`` to skip the sweep entirely).
        :returns: report dict with ``entries``/``bytes`` before and
            after, the number of entries (to be) ``evicted``, and the
            number of debris files (to be) swept as ``tmp_swept``.
        """
        records = []
        debris = []
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records.append((stat.st_mtime, stat.st_size, path))
            if tmp_grace_s is not None:
                horizon = time.time() - tmp_grace_s
                for pattern in (".*.tmp", "*.lease"):
                    for path in self.root.glob(pattern):
                        try:
                            if path.stat().st_mtime <= horizon:
                                debris.append(path)
                        except OSError:
                            continue
        if not dry_run:
            for path in debris:
                try:
                    path.unlink()
                except OSError:
                    pass
        records.sort()  # oldest mtime first
        total_entries = len(records)
        total_bytes = sum(size for _, size, _ in records)
        keep_entries, keep_bytes = total_entries, total_bytes
        evict = []
        for mtime, size, path in records:
            over_bytes = max_bytes is not None and keep_bytes > max_bytes
            over_entries = (
                max_entries is not None and keep_entries > max_entries
            )
            if not (over_bytes or over_entries):
                break
            evict.append(path)
            keep_entries -= 1
            keep_bytes -= size
        if not dry_run:
            for path in evict:
                try:
                    path.unlink()
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "evicted": len(evict),
            "kept_entries": keep_entries,
            "kept_bytes": keep_bytes,
            "tmp_swept": len(debris),
            "dry_run": dry_run,
        }
