"""The asyncio daemon serving resident-network queries.

One :class:`ServiceServer` owns a :class:`~repro.service.pool.NetworkPool`
of hot networks, a per-(network, noise, beta) family of
:class:`~repro.service.coalescer.BatchCoalescer` instances, and
optionally the shared on-disk :class:`~repro.fastsim.cache.ResultCache`.
It listens on a unix socket and/or loopback TCP, speaking the
newline-JSON protocol of :mod:`repro.service.protocol`.

Requests on one connection are handled concurrently (one task per
frame), so a single pipelining client coalesces against itself just
like a thousand separate clients do; responses carry the request ``id``
and go out in completion order.

Supported ops — see :meth:`ServiceServer.handlers`:

``build``
    Deploy (or look up) a network from a JSON spec; admit it to the
    pool; reply with its fingerprint — the handle every other op takes.
``sinr``
    Resolve receptions for one transmitter set through the coalescer.
``ball`` / ``graph`` / ``is_connected``
    Geometry and connectivity queries against the resident structures.
``advance``
    One mobility tick: :meth:`Network.advance` (incremental CSR
    patching where applicable), successor admitted to the pool.
``sweep``
    Run a full protocol sweep on a resident network (pickle payload;
    the ``run_grid(service=...)`` execution path, DESIGN.md §8).
``stats`` / ``ping`` / ``shutdown``
    Introspection and lifecycle.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import inspect
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

import numpy as np

from repro import faults
from repro.distrib.leases import DEFAULT_TTL_S, LeaseBoard
from repro.errors import ReproError
from repro.fastsim.cache import ResultCache
from repro.fastsim.sweep import run_sweep
from repro.network.network import Network
from repro.service.coalescer import BatchCoalescer
from repro.service.pool import NetworkPool
from repro.service.protocol import (
    ServiceError,
    encode_frame,
    error_response,
    pack_pickle,
    read_frame,
    unpack_pickle,
)
from repro.sinr.params import SINRParameters
from repro.sinr.reception import (
    NO_SENDER,
    resolve_reception_batch,
    resolve_reception_many,
)
from repro.sysmem import peak_rss_bytes

#: Deployment families the ``build`` op accepts, resolved lazily so the
#: module import stays light.  Every factory takes ``rng=`` plus its own
#: keyword arguments (``docs/api.md`` lists them).
BUILD_FAMILIES = (
    "uniform_square",
    "uniform_disk",
    "uniform_cube",
    "fractal_clusters",
    "corridor",
    "grid",
    "uniform_chain",
)

#: Stream buffer limit for incoming frames (must exceed the largest
#: request line; displacement arrays for big deployments are the driver).
_STREAM_LIMIT = 256 * 1024 * 1024


def build_network(spec: dict) -> Network:
    """Deterministically build a :class:`Network` from a ``build`` spec.

    Two spec shapes:

    * ``{"coords": [[x, y], ...]}`` — explicit coordinates;
    * ``{"family": <name>, "seed": <int>, "args": {...}}`` — a seeded
      deployment factory from :data:`BUILD_FAMILIES` (``args`` passed
      through, e.g. ``{"n": 20000, "side": 40.0}``).

    Shared optional keys: ``params`` (kwargs of
    :meth:`SINRParameters.default`), ``channel`` (``{"kind":
    "uniform" | "log_normal" | "dual_slope", ...kwargs}``), ``backend``,
    ``cutoff``, ``kernel``, ``name``.  The same spec always builds the
    same network — the fingerprint is the client's stable handle.
    """
    from repro import deploy
    from repro.sinr.channel import (
        DualSlope,
        LogNormalShadowing,
        UniformPower,
    )

    params = None
    if spec.get("params"):
        params = SINRParameters.default(**spec["params"])
    channel = None
    channel_spec = spec.get("channel")
    if channel_spec:
        kind = channel_spec.get("kind", "uniform")
        kwargs = {k: v for k, v in channel_spec.items() if k != "kind"}
        makers = {
            "uniform": UniformPower,
            "log_normal": LogNormalShadowing,
            "dual_slope": DualSlope,
        }
        if kind not in makers:
            raise ServiceError(
                f"unknown channel kind {kind!r}; expected one of "
                f"{sorted(makers)}"
            )
        channel = makers[kind](**kwargs)

    shared = {
        key: spec[key]
        for key in ("backend", "cutoff", "kernel")
        if key in spec and spec[key] is not None
    }
    if "coords" in spec:
        return Network(
            np.asarray(spec["coords"], dtype=float),
            params=params,
            channel=channel,
            name=spec.get("name", "service-coords"),
            **shared,
        )
    family = spec.get("family")
    if family not in BUILD_FAMILIES:
        raise ServiceError(
            f"unknown deployment family {family!r}; expected one of "
            f"{BUILD_FAMILIES} (or explicit 'coords')"
        )
    factory = getattr(deploy, family)
    factory_params = inspect.signature(factory).parameters
    args = dict(spec.get("args", {}))
    if "rng" in factory_params:
        # Deterministic families (grid, uniform_chain) take no rng.
        args["rng"] = np.random.default_rng(spec.get("seed", 0))
    if "name" in spec and "name" in factory_params:
        args.setdefault("name", spec["name"])
    net = factory(params=params, **args)
    if channel is not None:
        net = net.with_channel(channel)
    if shared:
        net = Network(
            np.array(net.coords), params=net.params, metric=net.metric,
            name=net.name, channel=net.channel, **shared,
        )
    return net


class ServiceServer:
    """The resident-network daemon (one instance per process).

    :param pool: resident-network pool; a default-budget
        :class:`NetworkPool` when omitted.
    :param cache_dir: result-cache directory for ``sweep`` requests
        (``None`` = no server-side caching; ``run_grid`` clients may
        still cache on their side — same keys either way).
    :param window: coalescing window in seconds (see
        :class:`BatchCoalescer`).
    :param max_batch: largest coalesced batch per kernel call.
    :param coalesce: ``False`` serves every query as its own ``B = 1``
        masked call of the classic batched resolver — the legacy
        pre-coalescer serving model the load benchmark measures
        against.  Decisions agree with coalesced serving whenever the
        SINR margin exceeds far-field rounding (sub-band, tested), and
        bit for bit whenever the far set is empty.
    :param lease_ttl: time-to-live of the per-point lease files this
        daemon takes on keyed ``sweep`` requests (DESIGN.md §9.2; only
        meaningful with ``cache_dir``).  A lease is refreshed at a
        third of this while its point computes, so a ttl only ever
        elapses when the holding daemon died mid-point.
    """

    def __init__(
        self,
        *,
        pool: Optional[NetworkPool] = None,
        cache_dir: Optional[str] = None,
        window: float = 0.002,
        max_batch: int = 128,
        coalesce: bool = True,
        lease_ttl: float = DEFAULT_TTL_S,
    ):
        self.pool = pool if pool is not None else NetworkPool()
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.leases = (
            LeaseBoard(self.cache.root, ttl=lease_ttl)
            if self.cache is not None
            else None
        )
        self.window = window
        self.max_batch = max_batch
        self.coalesce = coalesce
        # One worker: kernel calls are serialized, so measured
        # throughput reflects batch efficiency rather than core-count
        # contention, and resident-memory pressure stays single-fold.
        self._kernel_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="service-kernel"
        )
        self._coalescers: dict[tuple, BatchCoalescer] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._shutdown = asyncio.Event()
        self._started = time.time()
        self.requests_served = 0
        #: ``sweep`` results whose cache publish failed (ENOSPC, bad
        #: disk) — served anyway; surfaced in ``stats`` for alerting.
        self.put_failures = 0
        #: (host, port) of the TCP listener once bound (port 0 resolves).
        self.tcp_address: Optional[tuple[str, int]] = None
        #: Path of the unix listener once bound.
        self.unix_path: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start_unix(self, path: str, backlog: int = 2048) -> None:
        """Listen on a unix-domain socket at ``path``.

        ``backlog`` defaults high enough that a thousand simultaneous
        connection attempts (the soak scenario) don't get refused while
        the single-threaded loop works through the accept queue.
        """
        server = await asyncio.start_unix_server(
            self._handle_client, path=path, limit=_STREAM_LIMIT,
            backlog=backlog,
        )
        self.unix_path = path
        self._servers.append(server)

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0, backlog: int = 2048
    ) -> None:
        """Listen on TCP (loopback by default; ``port=0`` picks a free
        port, readable from :attr:`tcp_address`)."""
        server = await asyncio.start_server(
            self._handle_client, host=host, port=port,
            limit=_STREAM_LIMIT, backlog=backlog,
        )
        sock = server.sockets[0]
        self.tcp_address = sock.getsockname()[:2]
        self._servers.append(server)

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or the ``shutdown`` op)."""
        await self._shutdown.wait()
        await self.aclose()

    def shutdown(self) -> None:
        """Request shutdown; :meth:`serve_forever` returns soon after."""
        self._shutdown.set()

    async def aclose(self) -> None:
        """Close all listeners (idempotent)."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - platform quirks
                pass
        self._servers.clear()
        self._kernel_executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One connection: read frames, answer each in its own task.

        A dropped connection cancels the connection's in-flight request
        tasks, which cancels their coalescer futures — the mid-batch
        cancellation path ``tests/test_service.py`` exercises; other
        clients' requests in the same batch are unaffected.
        """
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()

        async def respond(message: dict) -> None:
            async with write_lock:
                writer.write(encode_frame(message))
                await writer.drain()

        async def serve_one(request: dict) -> None:
            response = await self._dispatch(request)
            # Chaos sites on the reply path (no-ops without a plan):
            # drop the connection instead of answering, stall the
            # reply past the client's timeout, or mangle a pickle
            # payload so the client-side checksum must reject it.
            if faults.maybe_fire("service.conn.drop") is not None:
                writer.close()
                return
            stall = faults.maybe_fire("service.reply.stall")
            if stall is not None:
                await asyncio.sleep(stall.delay_s)
            if "payload" in response and (
                faults.maybe_fire("service.reply.corrupt") is not None
            ):
                response = dict(response)
                response["payload"] = _mangle_payload(
                    response["payload"]
                )
            await respond(response)

        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ServiceError as exc:
                    # Framing is gone; answer best-effort and drop.
                    try:
                        await respond(error_response(None, exc))
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if request is None:
                    break
                task = asyncio.ensure_future(serve_one(request))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels connection tasks mid-read; treat it
            # as a disconnect so teardown is clean, not an error dump.
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Loop shutdown can cancel the handler while it flushes
                # the close; the transport is down either way, and a
                # task that ends cancelled here only feeds asyncio's
                # "exception in callback" log, so end quietly instead.
                task = asyncio.current_task()
                if task is not None:
                    task.uncancel()

    async def _dispatch(self, request: dict) -> dict:
        """Route one request to its handler; never raises."""
        request_id = request.get("id")
        op = request.get("op")
        handler = self.handlers().get(op)
        if handler is None:
            return error_response(
                request_id,
                ServiceError(
                    f"unknown op {op!r}; expected one of "
                    f"{sorted(self.handlers())}"
                ),
            )
        try:
            payload = await handler(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - every failure must
            # become an error *reply*: an exception that escaped here
            # would kill the per-request task and leave the client
            # awaiting a response that never comes.
            return error_response(request_id, exc)
        self.requests_served += 1
        return {"id": request_id, "ok": True, **payload}

    def handlers(self) -> dict[str, Callable]:
        """Op-name -> coroutine handler map."""
        return {
            "build": self._op_build,
            "sinr": self._op_sinr,
            "ball": self._op_ball,
            "graph": self._op_graph,
            "is_connected": self._op_is_connected,
            "advance": self._op_advance,
            "sweep": self._op_sweep,
            "stats": self._op_stats,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------
    # op handlers
    # ------------------------------------------------------------------
    def _network(self, request: dict) -> Network:
        """The resident network a request addresses."""
        fingerprint = request.get("net")
        if not isinstance(fingerprint, str):
            raise ServiceError("request is missing the 'net' fingerprint")
        net = self.pool.get(fingerprint)
        if net is None:
            raise ServiceError(
                f"no resident network {fingerprint[:16]}...; "
                "issue a 'build' first (it may have been evicted)"
            )
        return net

    async def _op_build(self, request: dict) -> dict:
        """Build/admit a network from ``request['spec']``."""
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise ServiceError("'build' needs a 'spec' object")
        known = spec.get("fingerprint")
        if isinstance(known, str):
            net = self.pool.get(known)
            if net is not None:
                return self._build_reply(known, net, [])
        net = await asyncio.to_thread(self._build_resident, spec)
        fingerprint, evicted = self.pool.add(net)
        return self._build_reply(fingerprint, net, evicted)

    def _build_resident(self, spec: dict) -> Network:
        """Build the network and force its serving structures hot."""
        net = build_network(spec)
        net.gain_operator  # force the backend / gain matrix build
        return net

    def _build_reply(
        self, fingerprint: str, net: Network, evicted: list[str]
    ) -> dict:
        return {
            "net": fingerprint,
            "n": net.size,
            "backend": net.backend_kind,
            "kernel": net.kernel_kind,
            "resident_bytes": net.resident_bytes(),
            "evicted": evicted,
        }

    def _coalescer_for(
        self, fingerprint: str, net: Network, noise: float, beta: float
    ) -> BatchCoalescer:
        """The coalescer serving (network, noise, beta) — only queries
        sharing all three may ride one kernel call."""
        key = (fingerprint, float(noise), float(beta))
        coalescer = self._coalescers.get(key)
        if coalescer is None:
            fold = functools.partial(
                _fold_sinr if self.coalesce else _fold_sinr_legacy,
                net.gain_operator, float(noise), float(beta),
            )
            coalescer = BatchCoalescer(
                fold,
                window=self.window,
                max_batch=self.max_batch,
                enabled=self.coalesce,
                executor=self._kernel_executor,
            )
            self._coalescers[key] = coalescer
        return coalescer

    async def _op_sinr(self, request: dict) -> dict:
        """Resolve receptions for one transmitter set (coalesced)."""
        net = self._network(request)
        transmitters = np.asarray(
            request.get("transmitters", []), dtype=np.intp
        )
        if transmitters.size and (
            transmitters.min() < 0 or transmitters.max() >= net.size
        ):
            raise ServiceError(
                f"transmitter indices must be in [0, {net.size})"
            )
        noise = request.get("noise", net.params.noise)
        beta = request.get("beta", net.params.beta)
        coalescer = self._coalescer_for(
            request["net"], net, noise, beta
        )
        receivers, senders = await coalescer.submit(transmitters)
        if request.get("full"):
            heard = np.full(net.size, NO_SENDER, dtype=np.intp)
            heard[receivers] = senders
            return {"heard": heard.tolist()}
        # column_stack + tolist converts to native ints in C — replies
        # routinely carry hundreds of pairs and this runs per request.
        pairs = np.column_stack((receivers, senders))
        return {"receptions": pairs.tolist(), "n": net.size}

    async def _op_ball(self, request: dict) -> dict:
        """Stations within ``radius`` of ``center``."""
        net = self._network(request)
        center = int(request["center"])
        radius = float(request["radius"])
        if not 0 <= center < net.size:
            raise ServiceError(f"center must be in [0, {net.size})")
        members = await asyncio.to_thread(net.ball, center, radius)
        return {"stations": np.asarray(members).tolist()}

    async def _op_graph(self, request: dict) -> dict:
        """Communication-graph summary (edge list unless ``count_only``)."""
        net = self._network(request)

        def build() -> dict:
            graph = net.graph
            payload = {
                "n": net.size,
                "num_edges": graph.number_of_edges(),
                "max_degree": net.max_degree,
            }
            if not request.get("count_only"):
                payload["edges"] = [
                    [int(u), int(v)] for u, v in graph.edges()
                ]
            return payload

        return await asyncio.to_thread(build)

    async def _op_is_connected(self, request: dict) -> dict:
        """Connectivity of the communication graph."""
        net = self._network(request)
        connected = await asyncio.to_thread(lambda: net.is_connected)
        return {"connected": bool(connected)}

    async def _op_advance(self, request: dict) -> dict:
        """One mobility tick; the successor becomes resident."""
        net = self._network(request)
        disp = np.asarray(request["displacements"], dtype=float)
        successor = await asyncio.to_thread(net.advance, disp)
        if successor is net:
            return {
                "net": request["net"],
                "advance_mode": "unmoved",
                "n": net.size,
            }
        # Force the successor's serving structures before admission so
        # pool accounting sees actuals (mirrors _build_resident).
        await asyncio.to_thread(lambda: successor.gain_operator)
        fingerprint, evicted = self.pool.add(successor)
        return {
            "net": fingerprint,
            "advance_mode": successor.advance_mode,
            "n": successor.size,
            "evicted": evicted,
        }

    async def _op_sweep(self, request: dict) -> dict:
        """Run a protocol sweep on a resident network (pickle payload).

        The payload (see :meth:`repro.service.client.ServiceClient.sweep`)
        carries either a resident fingerprint or a full network
        descriptor to build on miss, plus the ``run_sweep`` arguments
        and an optional precomputed cache key.  With a server-side
        cache configured, hits replay without touching the kernels —
        and because the key is the ordinary
        :func:`repro.fastsim.cache.point_key`, entries are shared with
        CLI grid runs in both directions.

        Keyed points are additionally guarded by a lease file beside
        their cache entry (DESIGN.md §9.2): before computing, the
        daemon claims ``<key>.lease``; a point another daemon is
        already computing is *waited for* and served from the bus when
        its publish lands, and a lease whose holder died (deadline
        passed unrefreshed) is stolen and the point re-run.  That is
        what makes a coordinator's straggler re-dispatch cheap —
        the second daemon joins the first's work instead of repeating
        it — while SIGKILLed holders cost at most one lease ttl.
        """
        if faults.maybe_fire("service.sweep.error") is not None:
            raise ServiceError("injected sweep failure (chaos plan)")
        payload = unpack_pickle(request["payload"])
        fingerprint = payload.get("net")
        net = self.pool.get(fingerprint) if fingerprint else None
        if net is None:
            descriptor = payload.get("descriptor")
            if descriptor is None:
                raise ServiceError(
                    "sweep payload has neither a resident 'net' nor a "
                    "'descriptor' to build from"
                )
            net = await asyncio.to_thread(
                self._descriptor_network, descriptor
            )
            fingerprint, _ = self.pool.add(net)
        key = payload.get("key")
        leased = key and self.cache is not None and self.leases is not None
        if key and self.cache is not None:
            hit = self.cache.get(key)
            if hit is None and leased:
                hit = await self._claim_point(key)
            if hit is not None:
                sweep, _extras = hit
                return {
                    "payload": pack_pickle(sweep),
                    "net": fingerprint,
                    "cached": True,
                }
        hold = (
            asyncio.ensure_future(self._hold_lease(key)) if leased else None
        )
        try:
            sweep = await asyncio.to_thread(
                run_sweep,
                payload["kind"],
                net,
                payload["n_replications"],
                payload["seed"],
                payload.get("constants"),
                use_batch=payload.get("use_batch", True),
                **payload.get("kwargs", {}),
            )
            if key and self.cache is not None:
                # Extras (post hooks) run client-side in service mode, so
                # the server can only store an empty extras dict.  That is
                # exact for hookless points, and the grid client only
                # ships keys for those (`_run_service` withholds the key
                # when a post hook exists — its `post_name` is part of the
                # key, so an empty-extras entry under it would replay as
                # the real result).
                try:
                    self.cache.put(key, (sweep, {}))
                except OSError:
                    # A full or failing cache disk (ENOSPC) must not
                    # fail the request — the result is in hand and goes
                    # out on the wire; only the *replay* is lost.
                    self.put_failures += 1
        finally:
            if hold is not None:
                hold.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await hold
            if leased:
                await asyncio.to_thread(self.leases.release, key)
        return {
            "payload": pack_pickle(sweep),
            "net": fingerprint,
            "cached": False,
        }

    async def _claim_point(self, key: str):
        """Take ``key``'s lease, or wait out its live holder.

        Returns ``None`` once this daemon holds the lease (the caller
        must compute and release), or the holder's published
        ``(sweep, extras)`` when waiting paid off.  A holder that dies
        without publishing is detected by lease expiry — the claim
        loop then steals the lease and the caller computes after all.
        """
        poll = max(0.02, min(1.0, self.leases.ttl / 10.0))
        while True:
            if await asyncio.to_thread(self.leases.claim, key):
                # Claimed — but the previous holder may have published
                # and released between our cache miss and this claim.
                hit = await asyncio.to_thread(self.cache.get, key)
                if hit is None:
                    return None
                await asyncio.to_thread(self.leases.release, key)
                return hit
            hit = await asyncio.to_thread(self.cache.get, key)
            if hit is not None:
                return hit
            await asyncio.sleep(poll)

    async def _hold_lease(self, key: str) -> None:
        """Refresh ``key``'s lease while its sweep computes.

        Cancelled by ``_op_sweep`` when the compute finishes; the
        refresh cadence (a third of the ttl) guarantees a live holder's
        lease never expires, so steals only ever hit dead daemons.
        """
        interval = max(0.02, self.leases.ttl / 3.0)
        while True:
            await asyncio.sleep(interval)
            await asyncio.to_thread(self.leases.refresh, key)

    def _descriptor_network(self, descriptor: dict) -> Network:
        """Rebuild a network from a grid client's pickled descriptor.

        Mirrors the fork worker's reconstruction
        (:func:`repro.fastsim.grid._attach_network`): same coordinates,
        params, metric and channel produce a bitwise-identical gain
        structure, which is what makes ``run_grid(service=...)`` results
        bitwise equal to fork-pool runs.
        """
        net = Network(
            descriptor["coords"],
            params=descriptor["params"],
            metric=descriptor["metric"],
            name=descriptor.get("name", "service-sweep"),
            channel=descriptor["channel"],
            backend=descriptor.get("backend", "auto"),
            cutoff=descriptor.get("cutoff"),
            kernel=descriptor.get("kernel", "auto"),
        )
        net.gain_operator
        return net

    async def _op_stats(self, request: dict) -> dict:
        """Pool, coalescer, cache and process statistics."""
        coalescers = {}
        for (fingerprint, noise, beta), co in self._coalescers.items():
            label = f"{fingerprint[:12]}:noise={noise}:beta={beta}"
            coalescers[label] = co.stats.as_dict()
        payload = {
            "uptime_s": time.time() - self._started,
            "requests_served": self.requests_served,
            "peak_rss_bytes": peak_rss_bytes(),
            "pool": self.pool.stats(),
            "coalescers": coalescers,
            "coalescing": self.coalesce,
            "window_s": self.window,
            "max_batch": self.max_batch,
        }
        if self.cache is not None:
            payload["cache"] = {
                "root": str(self.cache.root),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "quarantined": self.cache.quarantined,
                "put_failures": self.put_failures,
            }
        if self.leases is not None:
            payload["leases"] = self.leases.stats()
        return payload

    async def _op_ping(self, request: dict) -> dict:
        """Liveness probe."""
        return {"pong": True}

    async def _op_shutdown(self, request: dict) -> dict:
        """Acknowledge, then stop the daemon."""
        asyncio.get_running_loop().call_soon(self.shutdown)
        return {"stopping": True}


def _mangle_payload(payload: str) -> str:
    """Deterministically damage a pickle payload string (chaos helper).

    Implements ``service.reply.corrupt``: the last character of the
    wire payload is swapped, so the client's checksum pass
    (:func:`repro.service.protocol.unpack_pickle`) must raise
    :class:`~repro.service.protocol.ServiceCorruptPayload` rather than
    consume mutated bytes.
    """
    if not payload:
        return "A"
    tail = "B" if payload[-1] == "A" else "A"
    return payload[:-1] + tail


def _fold_sinr(gain_operator, noise: float, beta: float, sets) -> list:
    """The coalescer's fold: one batched-resolver call for ``sets``.

    Returns one ``(receivers, senders)`` pair per set (the resolver's
    ``compact`` projection) — replies need exactly those pairs, and the
    compact path never materializes a ``(B, n)`` block for the burst.

    Module-level (not a closure) so its identity is stable and the
    kernel work happens on the executor thread the coalescer runs it
    on; thread-safety of the resolver caches is guaranteed by
    :mod:`repro.sinr.reception` (PR 7's lock satellite).
    """
    return resolve_reception_many(
        gain_operator, sets, noise, beta, compact=True
    )


def _fold_sinr_legacy(
    gain_operator, noise: float, beta: float, sets
) -> list:
    """Per-request ``B = 1`` masked resolves — the uncoalesced baseline.

    What serving looked like before the coalescer existed: each query
    builds its own ``(1, n)`` transmitter mask and pays one full
    batched-resolver call — per-request cell/far-field setup included.
    ``benchmarks/bench_service.py`` runs a ``coalesce=False`` server on
    this fold to measure the coalescing speedup floor against it.
    Results use the same ``(receivers, senders)`` reply shape as
    :func:`_fold_sinr` so reply building is mode-independent.
    """
    shape = getattr(gain_operator, "shape", None)
    n = shape[0] if shape is not None else gain_operator.n
    out = []
    for transmitters in sets:
        mask = np.zeros((1, n), dtype=bool)
        mask[0, np.asarray(transmitters, dtype=np.intp)] = True
        row = resolve_reception_batch(gain_operator, mask, noise, beta)[0]
        receivers = np.flatnonzero(row != NO_SENDER)
        out.append((receivers, row[receivers]))
    return out
