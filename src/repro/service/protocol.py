"""Wire protocol of the query service: newline-delimited JSON frames.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.  The
format is deliberately boring: any language (or ``nc``) can speak it,
frames are self-delimiting without length prefixes, and the asyncio
streams API reads it natively with ``readline``.

Requests carry ``{"id": <int>, "op": <str>, ...}``; responses echo the
``id`` with either ``{"ok": true, ...}`` or ``{"ok": false, "error":
<message>, "kind": <exception class>}``.  Clients may pipeline: ids
correlate out-of-order responses (the server answers in completion
order, which is what lets slow kernel calls coalesce behind fast ones).

Two ops (``sweep``, and any future op shipping rich Python objects)
embed base64-encoded **pickles** inside the JSON frame
(:func:`pack_pickle` / :func:`unpack_pickle`).  Pickle implies trust:
the service is a *local, same-user* daemon — run it on a unix socket
with filesystem permissions, or on loopback TCP, never on an exposed
interface (DESIGN.md §8).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import pickle
from typing import Optional

#: Hard per-frame byte bound (requests *and* responses).  A 1M-station
#: displacement array pickles to ~16 MB and a 20k-edge graph reply to a
#: few MB, so the bound is generous; it exists to turn a corrupt or
#: hostile stream into a clean error instead of an OOM.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ServiceError(RuntimeError):
    """A request the service rejected (unknown op, bad args, missing
    network).  Raised client-side when a response carries ``ok: false``;
    server-side handlers raise it for anticipated failures so the
    connection survives and only the offending request errors."""


class ServiceConnectionError(ServiceError, ConnectionError):
    """The transport failed mid-request (peer closed, reset, EOF).

    Distinct from a plain :class:`ServiceError` so callers can tell a
    *worker* problem (reconnect / re-dispatch the point elsewhere) from
    a *request* problem (the server answered and said no); the shard
    dispatcher (:mod:`repro.distrib.shard`) routes on exactly this
    split.
    """


class ServiceTimeout(ServiceError):
    """No response arrived within the per-request timeout.

    The peer may be dead without having closed the socket (host crash,
    TCP partition) or merely slow; either way the caller gets control
    back instead of awaiting forever.  The request's future is
    abandoned — a late response is discarded by the reader loop.
    """


class ServiceCorruptPayload(ServiceError):
    """A pickle payload failed its integrity check.

    The frame parsed as JSON but the embedded payload's SHA-256 did not
    match its header (bit-rot, a proxy mangling bytes, an injected
    ``service.reply.corrupt`` fault) or it would not unpickle.  Never
    the caller's fault and never safe to consume: the shard dispatcher
    treats it like a transport failure — drop the connection, requeue
    the point — rather than a server-side rejection (DESIGN.md §10.3).
    """


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its wire form (JSON + newline)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` on a cleanly closed stream.

    :raises ServiceError: on oversized or non-JSON frames (the caller
        should drop the connection — framing is lost).
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ServiceError(
            f"frame exceeds the stream buffer limit: {exc}"
        ) from exc
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES"
        )
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"frames must be JSON objects, got {type(message).__name__}"
        )
    return message


def pack_pickle(obj) -> str:
    """Checksummed, base64-encoded pickle of ``obj`` for embedding in a
    JSON frame.

    Wire form is ``"<sha256 hex>:<base64>"`` — ``:`` is not in the
    base64 alphabet, so legacy checksum-less payloads (bare base64,
    pre-PR 9 peers) remain distinguishable and are accepted unverified
    by :func:`unpack_pickle`.  The digest covers the raw pickle bytes,
    end to end: whatever mangles the payload between the two calls —
    kernel, proxy, cosmic ray, chaos plan — is caught at the consumer.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        hashlib.sha256(blob).hexdigest()
        + ":"
        + base64.b64encode(blob).decode("ascii")
    )


def unpack_pickle(payload: str):
    """Inverse of :func:`pack_pickle`.  Trusted input only — see the
    module docstring's threat model.

    :raises ServiceCorruptPayload: when the checksum header disagrees
        with the payload bytes, or the payload does not decode /
        unpickle — the bytes are damaged and must not be consumed.
    """
    digest, sep, body = payload.partition(":")
    try:
        if sep:
            blob = base64.b64decode(body.encode("ascii"))
            actual = hashlib.sha256(blob).hexdigest()
            if actual != digest:
                raise ServiceCorruptPayload(
                    f"payload checksum mismatch: header {digest:.16}…, "
                    f"payload {actual:.16}…"
                )
        else:
            # Legacy peer: bare base64, nothing to verify against.
            blob = base64.b64decode(payload.encode("ascii"))
        return pickle.loads(blob)
    except ServiceCorruptPayload:
        raise
    except Exception as exc:
        raise ServiceCorruptPayload(
            f"payload would not decode: {exc}"
        ) from exc


def error_response(request_id, exc: BaseException) -> dict:
    """The ``ok: false`` response for a failed request."""
    return {
        "id": request_id,
        "ok": False,
        "error": str(exc),
        "kind": type(exc).__name__,
    }
