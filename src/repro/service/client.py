"""Asyncio client for the resident-network query service.

A :class:`ServiceClient` owns one connection and supports **pipelining**:
any number of asyncio tasks may issue requests concurrently over it —
requests are tagged with monotonically increasing ids, responses are
correlated by a background reader task, and the server is free to answer
out of order.  That concurrency is exactly what feeds the server's batch
coalescer, so a single client with ``asyncio.gather`` gets the same
batching win as a fleet of separate connections.

Addresses are strings: ``unix:/path/to.sock`` or ``tcp:host:port``
(:func:`connect` parses them); ``python -m repro.service`` prints the
matching string on startup.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

import numpy as np

from repro import faults
from repro.service.protocol import (
    ServiceConnectionError,
    ServiceError,
    ServiceTimeout,
    encode_frame,
    pack_pickle,
    read_frame,
    unpack_pickle,
)


async def connect(
    address: str, *, timeout: "Optional[float]" = None
) -> "ServiceClient":
    """Open a client for ``unix:<path>`` or ``tcp:<host>:<port>``.

    ``timeout`` overrides the client's default per-request timeout
    (:data:`DEFAULT_REQUEST_TIMEOUT`); ``None`` keeps the default.
    """
    if address.startswith("unix:"):
        reader, writer = await asyncio.open_unix_connection(
            address[len("unix:"):], limit=_STREAM_LIMIT
        )
    elif address.startswith("tcp:"):
        host, _, port = address[len("tcp:"):].rpartition(":")
        reader, writer = await asyncio.open_connection(
            host, int(port), limit=_STREAM_LIMIT
        )
    else:
        raise ServiceError(
            f"unrecognized service address {address!r}; expected "
            "'unix:<path>' or 'tcp:<host>:<port>'"
        )
    if timeout is None:
        return ServiceClient(reader, writer)
    return ServiceClient(reader, writer, timeout=timeout)


#: Mirror of the server's stream limit (big displacement/graph frames).
_STREAM_LIMIT = 256 * 1024 * 1024

#: Default per-request timeout.  Generous — a full-scale sweep point
#: legitimately computes for minutes — but *finite*: a peer that dies
#: without closing its socket (host crash, TCP partition) must fail the
#: request with :class:`ServiceTimeout` rather than hang the caller
#: forever.  Pass ``timeout=None`` per client or per request to wait
#: unboundedly where that is genuinely wanted.
DEFAULT_REQUEST_TIMEOUT = 600.0

#: Sentinel distinguishing "use the client default" from an explicit
#: ``timeout=None`` (wait forever) on one request.
_USE_DEFAULT = object()


class ServiceClient:
    """One pipelined connection to a :class:`~repro.service.server.ServiceServer`.

    Construct via :func:`connect` (or from an existing stream pair, as
    the in-process tests do).  All public methods are coroutines; they
    raise :class:`ServiceError` when the server answers ``ok: false``,
    :class:`ServiceTimeout` when no answer arrives within the
    per-request timeout, and :class:`ServiceConnectionError` when the
    transport dies mid-request.

    :param timeout: default per-request timeout in seconds
        (:data:`DEFAULT_REQUEST_TIMEOUT`); ``None`` waits forever.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ):
        self._reader = reader
        self._writer = writer
        self.timeout = timeout
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        """Correlate responses to pending requests by id."""
        error: Optional[BaseException] = None
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ServiceError, ConnectionError, OSError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        error
                        if error is not None
                        else ServiceConnectionError(
                            "connection closed by server"
                        )
                    )
            self._pending.clear()

    async def request(
        self, op: str, *, timeout: object = _USE_DEFAULT, **fields
    ) -> dict:
        """Issue one raw request; return the ``ok: true`` payload.

        ``timeout`` (keyword-only, seconds) bounds the wait for the
        response — it defaults to the client's :attr:`timeout`, and
        ``None`` waits forever.  No wire field may be named
        ``timeout``; none is.

        :raises ServiceError: when the server rejects the request (the
            message carries the server-side error text and kind).
        :raises ServiceTimeout: when no response arrives in time — the
            peer may be dead without having closed the socket; the
            request's future is abandoned and a late response is
            discarded.
        """
        limit = self.timeout if timeout is _USE_DEFAULT else timeout
        if faults.maybe_fire("client.send.drop") is not None:
            # Chaos site: the connection dies before the request is
            # written — the caller sees the same error a mid-send RST
            # produces and must re-dispatch (DESIGN.md §10.3).
            self._writer.close()
            raise ServiceConnectionError(
                "injected client-side connection drop (chaos plan)"
            )
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(
                    encode_frame({"id": request_id, "op": op, **fields})
                )
                await self._writer.drain()
            if limit is None:
                response = await future
            else:
                try:
                    response = await asyncio.wait_for(future, limit)
                except asyncio.TimeoutError:
                    raise ServiceTimeout(
                        f"{op!r} request got no response within "
                        f"{limit:g}s (peer dead or stalled)"
                    ) from None
        finally:
            self._pending.pop(request_id, None)
        if not response.get("ok"):
            raise ServiceError(
                f"{op}: {response.get('error')} "
                f"[{response.get('kind', 'ServiceError')}]"
            )
        return response

    # ------------------------------------------------------------------
    # typed ops
    # ------------------------------------------------------------------
    async def build(self, spec: dict) -> dict:
        """Build/admit a network; returns the reply with its ``net``
        fingerprint handle (see :func:`repro.service.server.build_network`
        for the spec shapes)."""
        return await self.request("build", spec=spec)

    async def sinr(
        self,
        net: str,
        transmitters: Sequence[int],
        *,
        noise: Optional[float] = None,
        beta: Optional[float] = None,
        full: bool = False,
    ) -> dict:
        """Resolve receptions for ``transmitters`` on network ``net``.

        Returns ``{"receptions": [[listener, sender], ...]}`` — or, with
        ``full=True``, the dense length-``n`` heard array under
        ``"heard"``.  Bitwise identical whether or not the server
        coalesced the call with others (DESIGN.md §8).
        """
        fields: dict = {
            "net": net,
            "transmitters": np.asarray(transmitters).tolist(),
        }
        if noise is not None:
            fields["noise"] = noise
        if beta is not None:
            fields["beta"] = beta
        if full:
            fields["full"] = True
        return await self.request("sinr", **fields)

    async def ball(self, net: str, center: int, radius: float) -> list[int]:
        """Station indices within ``radius`` of ``center``."""
        reply = await self.request(
            "ball", net=net, center=center, radius=radius
        )
        return reply["stations"]

    async def graph(self, net: str, *, count_only: bool = False) -> dict:
        """Communication-graph summary (``edges`` unless ``count_only``)."""
        return await self.request("graph", net=net, count_only=count_only)

    async def is_connected(self, net: str) -> bool:
        """Whether the communication graph is connected."""
        reply = await self.request("is_connected", net=net)
        return reply["connected"]

    async def advance(self, net: str, displacements) -> dict:
        """One mobility tick; returns the successor's ``net`` handle and
        ``advance_mode`` (``"patched-sparse"`` / ``"patched-dense"`` /
        ``"rebuild"`` / ``"unmoved"``)."""
        return await self.request(
            "advance",
            net=net,
            displacements=np.asarray(displacements, dtype=float).tolist(),
        )

    async def sweep(
        self,
        kind: str,
        n_replications: int,
        seed,
        *,
        net: Optional[str] = None,
        descriptor: Optional[dict] = None,
        constants=None,
        kwargs: Optional[dict] = None,
        use_batch: bool = True,
        key: Optional[str] = None,
        timeout: object = _USE_DEFAULT,
    ) -> dict:
        """Run a protocol sweep server-side on a resident network.

        Either ``net`` (a resident fingerprint) or ``descriptor`` (the
        pickled-network shape :meth:`repro.service.server.ServiceServer._descriptor_network`
        rebuilds from) must be given; ``key`` enables server-side result
        caching under the ordinary grid ``point_key``; ``timeout``
        overrides the client's per-request timeout for this (typically
        long-running) request.  Returns ``{"sweep": SweepResult, "net":
        fingerprint, "cached": bool}``.
        """
        payload = {
            "net": net,
            "descriptor": descriptor,
            "kind": kind,
            "n_replications": n_replications,
            "seed": seed,
            "constants": constants,
            "kwargs": kwargs or {},
            "use_batch": use_batch,
            "key": key,
        }
        reply = await self.request(
            "sweep", timeout=timeout, payload=pack_pickle(payload)
        )
        return {
            "sweep": unpack_pickle(reply["payload"]),
            "net": reply["net"],
            "cached": reply["cached"],
        }

    async def stats(self) -> dict:
        """Server statistics (pool, coalescers, cache, process)."""
        return await self.request("stats")

    async def ping(self) -> bool:
        """Liveness probe."""
        reply = await self.request("ping")
        return bool(reply.get("pong"))

    async def shutdown(self) -> None:
        """Ask the daemon to stop serving."""
        await self.request("shutdown")

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        """Context-manager entry (connection already open)."""
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        await self.aclose()
