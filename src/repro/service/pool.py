"""The resident-network pool: LRU of hot ``Network`` objects.

A network is expensive to admit (the n=1M sparse build measures 135 s)
and cheap to serve once resident, so the pool's job is simple: keep as
many hot networks as the memory budget allows, evict the least recently
*queried* one when a new admission would burst it.  Budgeting uses
:meth:`repro.network.network.Network.resident_bytes` — actual
materialized footprint plus the lazy arrays serving will force — against
a byte budget derived from ``/proc/meminfo`` by default
(:func:`repro.sysmem.available_memory_bytes`).

Networks are keyed by :meth:`~repro.network.network.Network.fingerprint`
— the same content hash the result cache keys on — so two clients
building the same deployment share one resident instance, and a
``build`` of something already resident is a refresh, not a rebuild.
"""

from __future__ import annotations

from typing import Optional

from repro.network.network import Network
from repro.sysmem import available_memory_bytes

#: Fraction of currently-available system memory the default budget
#: claims.  Deliberately conservative: the service shares the host with
#: the kernels' workspaces and the clients themselves.
DEFAULT_BUDGET_FRACTION = 0.25


class NetworkPool:
    """An LRU pool of resident networks bounded by a peak-RSS budget.

    :param budget_bytes: total :meth:`Network.resident_bytes` the pool
        may hold.  ``None`` derives it from available system memory at
        construction time (``DEFAULT_BUDGET_FRACTION`` of it).
    :param max_networks: optional additional cap on the entry count.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        max_networks: Optional[int] = None,
    ):
        if budget_bytes is None:
            budget_bytes = int(
                DEFAULT_BUDGET_FRACTION * available_memory_bytes()
            )
        self.budget_bytes = int(budget_bytes)
        self.max_networks = max_networks
        #: fingerprint -> (network, resident_bytes); insertion order is
        #: recency order (oldest first), maintained by the pop/re-insert
        #: refresh in :meth:`get`.
        self._entries: dict[str, tuple[Network, int]] = {}
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.evicted = 0

    def get(self, fingerprint: str) -> Optional[Network]:
        """The resident network under ``fingerprint``, refreshing its
        recency; ``None`` when not resident."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries[fingerprint] = self._entries.pop(fingerprint)
        self.hits += 1
        return entry[0]

    def add(self, network: Network) -> tuple[str, list[str]]:
        """Admit ``network`` (or refresh it if already resident).

        Eviction happens *after* admission: least-recently-used entries
        go until the pool fits the byte budget (and ``max_networks``)
        again, never evicting the entry just admitted — a single network
        larger than the whole budget is served resident-alone rather
        than rejected, matching the "one huge deployment" use case.

        :returns: ``(fingerprint, evicted fingerprints)``.
        """
        fingerprint = network.fingerprint()
        if fingerprint in self._entries:
            self._entries.pop(fingerprint)
        else:
            self.admitted += 1
        self._entries[fingerprint] = (network, network.resident_bytes())
        evicted: list[str] = []
        while self._over_budget() and len(self._entries) > 1:
            victim = next(iter(self._entries))
            if victim == fingerprint:  # pragma: no cover - newest is last
                break
            self._entries.pop(victim)
            self.evicted += 1
            evicted.append(victim)
        return fingerprint, evicted

    def _over_budget(self) -> bool:
        if (
            self.max_networks is not None
            and len(self._entries) > self.max_networks
        ):
            return True
        return self.resident_bytes() > self.budget_bytes

    def resident_bytes(self) -> int:
        """Total admission-time resident size of the pooled networks."""
        return sum(size for _, size in self._entries.values())

    def fingerprints(self) -> list[str]:
        """Resident fingerprints, least recently used first."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def stats(self) -> dict:
        """Counters and occupancy for the ``stats`` op."""
        return {
            "networks": len(self._entries),
            "resident_bytes": self.resident_bytes(),
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "admitted": self.admitted,
            "evicted": self.evicted,
        }
