"""The resident-network query service (DESIGN.md §8).

Every entry point before this package was a batch CLI run that paid the
full network-build cost per invocation and threw the hot state away.
This package is the long-running alternative: an asyncio daemon
(``python -m repro.service``) holds a pool of resident
:class:`~repro.network.network.Network` objects — sparse CSR backends,
compiled kernels, lazy caches all warm — and serves SINR / connectivity
/ ball / mobility-advance queries over newline-delimited JSON on a unix
or TCP socket.

The performance core is the **batch coalescer**
(:class:`~repro.service.coalescer.BatchCoalescer`): SINR queries
arriving within a short window — or while a kernel call is already in
flight — against the same network are folded into a single invocation
of the batched resolver
(:func:`repro.sinr.reception.resolve_reception_many`), whose
exact-zero-neutral fold contract makes every answer bitwise identical
to a dedicated single-query call.  Throughput therefore scales with the
kernel's batch efficiency instead of per-request Python overhead
(``benchmarks/bench_service.py`` gates the floor).

Grid sweeps become clients of the same pool through
``run_grid(service=...)`` (:mod:`repro.fastsim.grid`), and sweep
results flow through the ordinary content-addressed result cache, whose
keys are shared with CLI runs by construction.
"""

from repro.service.client import ServiceClient, connect
from repro.service.coalescer import BatchCoalescer, CoalescerStats
from repro.service.pool import NetworkPool
from repro.service.protocol import (
    ServiceConnectionError,
    ServiceCorruptPayload,
    ServiceError,
    ServiceTimeout,
)
from repro.service.server import ServiceServer

__all__ = [
    "BatchCoalescer",
    "CoalescerStats",
    "NetworkPool",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceCorruptPayload",
    "ServiceError",
    "ServiceServer",
    "ServiceTimeout",
    "connect",
]
