"""The batch coalescer — the service's headline optimisation.

Serving one SINR query costs one batched-resolver call at ``B = 1``:
per-call Python dispatch, cell/far-field setup and kernel launch
dominate the arithmetic.  Under concurrent load those fixed costs are
shared: queries arriving within a short window — or, the common case
under load, *while a previous kernel call is still in flight* — are
folded into a single ``(B, n)`` invocation of the batched resolver, so
throughput scales with the kernel's batch efficiency instead of
per-request overhead.

Coalescing is **semantically invisible** by construction: the fold runs
through :func:`repro.sinr.reception.resolve_reception_many`, whose
exact-zero-neutral fold contract (DESIGN.md §6.2) makes every row of a
batch bitwise identical to the same query served alone.  The
equivalence is tested, not assumed (``tests/test_service.py``), and it
is why a coalescing server needs no opt-in from clients.

The class is generic over its ``fold`` callable so the policy
(window, max batch, in-flight accumulation, cancellation) is testable
without a network stack; the server instantiates one coalescer per
(network, noise, beta) signature — only queries against the same
resolver arguments may share a kernel call.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


@dataclass
class CoalescerStats:
    """Observable batching behaviour (the ``stats`` op reports these).

    :param requests: queries submitted.
    :param batches: kernel calls issued.
    :param max_batch: largest batch folded into one call.
    :param folded: requests that shared their call with at least one
        other request — the coalescing win counter.
    """

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    folded: int = 0
    _sizes: list = field(default_factory=list, repr=False)

    def record(self, batch_size: int) -> None:
        """Account one issued kernel call of ``batch_size`` requests."""
        self.batches += 1
        self.max_batch = max(self.max_batch, batch_size)
        if batch_size > 1:
            self.folded += batch_size

    def mean_batch(self) -> float:
        """Mean requests per kernel call."""
        return self.requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        """JSON-ready view for the ``stats`` op."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "folded": self.folded,
            "mean_batch": self.mean_batch(),
        }


class BatchCoalescer:
    """Fold concurrently submitted items into batched ``fold`` calls.

    :param fold: ``fold(items) -> results`` (one result per item, in
        order), executed on a worker thread so the event loop keeps
        accepting — and coalescing — new submissions while a fold is in
        flight.  For the SINR service this is a partial application of
        :func:`repro.sinr.reception.resolve_reception_many`.
    :param window: seconds the drainer waits after the first pending
        item before issuing a call, letting near-simultaneous arrivals
        join.  ``0`` still coalesces under load (arrivals during an
        in-flight fold pile up for the next one); it just issues the
        first call immediately.
    :param max_batch: largest batch per call — bounds the ``(B, n)``
        mask a burst can materialize.  Excess items wait for the next
        call, in arrival order.
    :param enabled: ``False`` serves every item as its own ``B = 1``
        fold call (the uncoalesced baseline the load benchmark compares
        against).  Results are bitwise identical either way.
    :param executor: optional ``concurrent.futures`` executor the fold
        runs on.  The server passes a single worker so kernel calls are
        serialized — throughput then measures batch efficiency, not how
        many cores happen to contend over one resolver.  ``None`` uses
        ``asyncio.to_thread``'s default pool.
    """

    def __init__(
        self,
        fold: Callable[[Sequence], list],
        *,
        window: float = 0.002,
        max_batch: int = 128,
        enabled: bool = True,
        executor=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._fold = fold
        self.window = window
        self.max_batch = max_batch
        self.enabled = enabled
        self.executor = executor
        self.stats = CoalescerStats()
        self._pending: list[tuple[object, asyncio.Future]] = []
        self._drainer: Optional[asyncio.Task] = None

    async def _run_fold(self, items: list) -> list:
        """Run one fold call off the event loop (see ``executor``)."""
        if self.executor is None:
            return await asyncio.to_thread(self._fold, items)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor, self._fold, items
        )

    async def submit(self, item):
        """Serve ``item`` through a (possibly shared) fold call.

        Cancellation-safe mid-batch: cancelling the awaiting task
        cancels only this item's future — the fold still runs (or
        completes) for the other items in the batch, whose results are
        delivered normally.
        """
        self.stats.requests += 1
        if not self.enabled:
            results = await self._run_fold([item])
            self.stats.record(1)
            return results[0]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if self._drainer is None or self._drainer.done():
            self._drainer = loop.create_task(self._drain())
        return await future

    async def _drain(self) -> None:
        """Issue fold calls until the pending queue is empty.

        One drainer exists at a time; it snapshots up to ``max_batch``
        pending entries per iteration, runs the fold on a worker thread
        and distributes results.  Items submitted while the fold runs
        land in ``self._pending`` and are picked up by the next
        iteration — that in-flight accumulation is where coalescing
        comes from under sustained load.
        """
        while self._pending:
            if self.window > 0:
                await asyncio.sleep(self.window)
            else:
                # Yield once so submissions queued in the same event-loop
                # tick can still join this batch.
                await asyncio.sleep(0)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            if not batch:  # pragma: no cover - pending drained elsewhere
                continue
            live = [(item, fut) for item, fut in batch if not fut.done()]
            if not live:
                continue
            self.stats.record(len(live))
            try:
                results = await self._run_fold(
                    [item for item, _ in live]
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded per future
                for _, fut in live:
                    if not fut.done():
                        fut.set_exception(exc)
                if not isinstance(exc, Exception):
                    raise  # propagate cancellations / SystemExit
                continue
            for (_, fut), result in zip(live, results):
                if not fut.done():
                    fut.set_result(result)
