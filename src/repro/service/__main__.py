"""``python -m repro.service`` — launch the resident-network daemon.

Examples::

    # Unix socket (recommended: filesystem permissions are the ACL)
    python -m repro.service --unix /tmp/repro.sock --cache-dir ~/.repro-cache

    # Loopback TCP on a fixed port
    python -m repro.service --tcp 127.0.0.1:7040

    # Uncoalesced baseline for benchmarking
    python -m repro.service --unix /tmp/repro.sock --no-coalesce

The daemon prints one ``serving on <address>`` line per listener (the
exact string :func:`repro.service.client.connect` accepts) and runs
until SIGINT/SIGTERM or a client ``shutdown`` op.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.service.pool import NetworkPool
from repro.service.server import ServiceServer


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resident-network SINR query service (DESIGN.md §8).",
        epilog="Queries against one resident network coalesce into "
        "batched kernel calls, bitwise identical to serving them "
        "one at a time; sweep results share the CLI result cache.",
    )
    parser.add_argument(
        "--unix", metavar="PATH",
        help="listen on a unix-domain socket at PATH",
    )
    parser.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="listen on TCP (use port 0 for an ephemeral port)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache for sweep requests "
        "(shared with CLI --cache-dir runs)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="time-to-live of per-point lease files on keyed sweeps "
        "(multi-host sharding, DESIGN.md §9.2; default %(default)s)",
    )
    parser.add_argument(
        "--window", type=float, default=0.002, metavar="SECONDS",
        help="coalescing window (default %(default)s)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=128, metavar="B",
        help="largest coalesced batch per kernel call (default %(default)s)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="serve every query as its own B=1 kernel call "
        "(benchmark baseline; results are bitwise identical)",
    )
    parser.add_argument(
        "--memory-budget", type=float, default=None, metavar="GB",
        help="resident-pool budget in GB (default: a quarter of "
        "available memory)",
    )
    parser.add_argument(
        "--max-networks", type=int, default=None, metavar="N",
        help="cap on resident networks (default: bytes budget only)",
    )
    parser.add_argument(
        "--fault-plan", metavar="PLAN.json",
        help="install a repro.faults.FaultPlan from a JSON file "
        "(chaos testing only; equivalent to the REPRO_FAULT_PLAN "
        "environment variable)",
    )
    args = parser.parse_args(argv)
    if not args.unix and not args.tcp:
        parser.error("need at least one listener: --unix and/or --tcp")
    return args


async def _serve(args: argparse.Namespace) -> None:
    if args.fault_plan:
        from repro import faults

        faults.install(faults.FaultPlan.load(args.fault_plan))
    budget = (
        int(args.memory_budget * 1e9)
        if args.memory_budget is not None
        else None
    )
    server = ServiceServer(
        pool=NetworkPool(
            budget_bytes=budget, max_networks=args.max_networks
        ),
        cache_dir=args.cache_dir,
        window=args.window,
        max_batch=args.max_batch,
        coalesce=not args.no_coalesce,
        lease_ttl=args.lease_ttl,
    )
    if args.unix:
        await server.start_unix(args.unix)
        print(f"serving on unix:{args.unix}", flush=True)
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        await server.start_tcp(host or "127.0.0.1", int(port))
        bound_host, bound_port = server.tcp_address
        print(f"serving on tcp:{bound_host}:{bound_port}", flush=True)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, server.shutdown)
    await server.serve_forever()
    print("service stopped", flush=True)


def main(argv=None) -> int:
    """CLI entry point."""
    try:
        asyncio.run(_serve(_parse_args(argv)))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
