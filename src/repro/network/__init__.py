"""Deployed networks and their communication graphs."""

from repro.network.network import Network
from repro.network.graph import (
    bfs_layers,
    communication_graph,
    diameter,
    eccentricity,
    granularity,
    max_degree,
)

__all__ = [
    "Network",
    "communication_graph",
    "diameter",
    "eccentricity",
    "bfs_layers",
    "granularity",
    "max_degree",
]
