"""The :class:`Network` aggregate: stations + metric + SINR parameters.

A ``Network`` owns everything static about a deployment — coordinates, the
distance matrix, the path-gain matrix, and the communication graph — and
computes each lazily exactly once.  All simulators (reference and
vectorized) and all analysis code consume networks through this class.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import networkx as nx
import numpy as np

from repro.errors import DeploymentError
from repro.geometry.metric import (
    EuclideanMetric,
    Metric,
    MIN_DISTANCE,
)
from repro.network import graph as graph_utils
from repro.sinr.channel import ChannelModel, default_channel
from repro.sinr.params import SINRParameters


class Network:
    """An immutable deployed wireless network.

    :param coords: ``(n, d)`` station coordinates (or ``(n,)`` for a line).
    :param params: SINR model parameters; defaults to the paper's
        normalization (range 1, ``P = N beta``).
    :param metric: metric used for distances; defaults to the Euclidean
        metric of the coordinate dimension.
    :param name: optional human-readable label used in reports.
    :param channel: channel model producing the gain matrix; defaults to
        the paper's uniform-power ``P d^-alpha`` channel (DESIGN.md §2.1).
        The communication graph stays distance-based regardless of the
        channel — E13 measures exactly that mismatch.
    """

    def __init__(
        self,
        coords: np.ndarray,
        params: Optional[SINRParameters] = None,
        metric: Optional[Metric] = None,
        name: str = "network",
        channel: Optional[ChannelModel] = None,
    ):
        coords = np.asarray(coords, dtype=float)
        if coords.ndim == 1:
            coords = coords[:, None]
        if coords.ndim != 2 or coords.shape[0] == 0:
            raise DeploymentError(
                f"coordinates must be a non-empty (n, d) array, "
                f"got shape {coords.shape}"
            )
        self._coords = coords
        self._coords.setflags(write=False)
        self.params = params if params is not None else SINRParameters.default()
        self.metric = metric if metric is not None else EuclideanMetric(
            coords.shape[1]
        )
        self.name = name
        self.channel = channel if channel is not None else default_channel()
        self._dist: Optional[np.ndarray] = None
        self._gain: Optional[np.ndarray] = None
        self._graph: Optional[nx.Graph] = None
        self._diameter: Optional[int] = None
        self._max_degree: Optional[int] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stations ``n``."""
        return self._coords.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def coords(self) -> np.ndarray:
        """Read-only ``(n, d)`` coordinate array."""
        return self._coords

    @property
    def distances(self) -> np.ndarray:
        """Lazily computed ``(n, n)`` distance matrix."""
        if self._dist is None:
            dist = self.metric.distance_matrix(self._coords)
            n = self.size
            if n > 1:
                off = dist[~np.eye(n, dtype=bool)]
                if np.any(off < MIN_DISTANCE):
                    raise DeploymentError(
                        "deployment contains co-located stations; the SINR "
                        "model requires distinct positions"
                    )
            dist.setflags(write=False)
            self._dist = dist
        return self._dist

    @property
    def gains(self) -> np.ndarray:
        """Lazily computed gain matrix, routed through the channel model
        (``P * d^-alpha`` under the default :class:`UniformPower`)."""
        if self._gain is None:
            gain = self.channel.gain(
                self.distances, self._coords, self.params
            )
            gain.setflags(write=False)
            self._gain = gain
        return self._gain

    # ------------------------------------------------------------------
    # communication graph
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The communication graph (edges at distance ``<= (1-eps) r``)."""
        if self._graph is None:
            self._graph = graph_utils.communication_graph(
                self.distances, self.params.comm_radius
            )
        return self._graph

    @property
    def is_connected(self) -> bool:
        """Whether the communication graph is connected."""
        return self.size == 1 or nx.is_connected(self.graph)

    @property
    def diameter(self) -> int:
        """Diameter ``D`` of the communication graph (cached)."""
        if self._diameter is None:
            self._diameter = graph_utils.diameter(self.graph)
        return self._diameter

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the communication graph (cached)."""
        if self._max_degree is None:
            self._max_degree = graph_utils.max_degree(self.graph)
        return self._max_degree

    @property
    def granularity(self) -> float:
        """Granularity ``Rs`` (max/min communication-edge length)."""
        return graph_utils.granularity(self.distances, self.graph)

    def eccentricity(self, source: int) -> int:
        """Broadcast depth from ``source``."""
        return graph_utils.eccentricity(self.graph, source)

    def bfs_layers(self, source: int) -> list[list[int]]:
        """Stations grouped by hop distance from ``source``."""
        return graph_utils.bfs_layers(self.graph, source)

    def neighbors(self, v: int) -> list[int]:
        """Communication-graph neighbours of station ``v``."""
        return sorted(self.graph.neighbors(v))

    def fingerprint(self) -> str:
        """Content hash of everything that determines simulation results.

        Covers the coordinates (bytes), the SINR parameters, the metric
        identity and the channel model's :meth:`~repro.sinr.channel.ChannelModel.identity`
        — but *not* ``name``, which is a display label.  Two networks with
        equal fingerprints produce identical gain matrices and hence
        identical protocol behaviour on identical seeds; the grid layer
        keys its shared-memory registry and the on-disk result cache on
        this value (DESIGN.md §6.3), so networks differing only in
        channel never replay each other's results.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(
                repr(
                    (
                        self._coords.shape,
                        str(self._coords.dtype),
                        type(self.metric).__name__,
                        self.metric.growth_dimension,
                        self.params,
                        self.channel.identity(),
                    )
                ).encode()
            )
            digest.update(np.ascontiguousarray(self._coords).tobytes())
            explicit = getattr(self.metric, "_matrix", None)
            if explicit is not None:
                # MatrixMetric ignores coordinates; the matrix is the
                # geometry.
                digest.update(np.ascontiguousarray(explicit).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def ball(self, center: int, radius: float) -> np.ndarray:
        """Indices of stations within ``radius`` of station ``center``."""
        return np.flatnonzero(self.distances[center] <= radius)

    def with_params(self, params: SINRParameters) -> "Network":
        """A copy of this network under different SINR parameters.

        Reuses nothing mutable; distance matrix is recomputed lazily (the
        metric is shared, which is safe because metrics are stateless).
        """
        return Network(
            np.array(self._coords), params=params, metric=self.metric,
            name=self.name, channel=self.channel,
        )

    def with_channel(self, channel: ChannelModel) -> "Network":
        """A copy of this network under a different channel model.

        Coordinates, parameters and hence the communication graph are
        unchanged; gains (and the fingerprint) are not.  This is how E13
        sweeps one deployment across channels.
        """
        return Network(
            np.array(self._coords), params=self.params, metric=self.metric,
            name=self.name, channel=channel,
        )

    def describe(self) -> dict:
        """Summary dict used by experiment reports."""
        connected = self.is_connected
        return {
            "name": self.name,
            "n": self.size,
            "connected": connected,
            "diameter": self.diameter if connected else None,
            "max_degree": self.max_degree,
            "granularity": self.granularity,
            "alpha": self.params.alpha,
            "beta": self.params.beta,
            "eps": self.params.eps,
            "channel": self.channel.identity()[0],
        }

    def __repr__(self) -> str:
        return f"Network(name={self.name!r}, n={self.size})"
