"""The :class:`Network` aggregate: stations + metric + SINR parameters.

A ``Network`` owns everything static about a deployment — coordinates, the
distance matrix, the path-gain matrix, and the communication graph — and
computes each lazily exactly once.  All simulators (reference and
vectorized) and all analysis code consume networks through this class.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import networkx as nx
import numpy as np

from repro import kernels as _kernels
from repro.errors import DeploymentError, ProtocolError
from repro.geometry.metric import (
    EuclideanMetric,
    Metric,
    MIN_DISTANCE,
)
from repro.network import graph as graph_utils
from repro.sinr.channel import ChannelModel, default_channel
from repro.sinr.params import SINRParameters
from repro.sinr.sparse import (
    SPARSE_AUTO_MIN,
    SparseGainBackend,
    default_cutoff,
    sparse_supported,
)

#: Recognized SINR backend selectors (DESIGN.md §2.2).
BACKENDS = ("auto", "dense", "sparse")

#: Recognized kernel selectors (DESIGN.md §2.3) — re-exported from
#: :mod:`repro.kernels` so callers validating ``Network(kernel=...)``
#: requests need only this module.
KERNELS = _kernels.KERNELS

#: Moved-station fraction above which :meth:`Network.advance` drops the
#: incremental patch and lets the successor rebuild lazily from scratch
#: — splicing cost approaches full-build cost well before every row is
#: touched (DESIGN.md §7).
MOBILITY_REBUILD_FRACTION = 0.25


class Network:
    """An immutable deployed wireless network.

    :param coords: ``(n, d)`` station coordinates (or ``(n,)`` for a line).
    :param params: SINR model parameters; defaults to the paper's
        normalization (range 1, ``P = N beta``).
    :param metric: metric used for distances; defaults to the Euclidean
        metric of the coordinate dimension.
    :param name: optional human-readable label used in reports.
    :param channel: channel model producing the gain matrix; defaults to
        the paper's uniform-power ``P d^-alpha`` channel (DESIGN.md §2.1).
        The communication graph stays distance-based regardless of the
        channel — E13 measures exactly that mismatch.
    :param backend: SINR backend selector (DESIGN.md §2.2): ``"dense"``
        materializes the ``(n, n)`` matrices, ``"sparse"`` serves
        reception from a cell-indexed CSR near field with a certified
        far-field bound, ``"auto"`` (default) picks sparse for large
        Euclidean deployments under radial channels and dense otherwise.
    :param cutoff: near-field cutoff radius of the sparse backend
        (default ``2 r``); ignored in dense mode.
    :param kernel: kernel selector (DESIGN.md §2.3): ``"numpy"`` runs
        the vectorized reference arithmetic, ``"compiled"`` the
        numba-jitted loop kernels (pure-python loops when numba is
        absent), ``"auto"`` (default) defers to the ``REPRO_KERNEL``
        environment variable and then to numba availability.  The two
        kernels are bitwise identical, so the choice never enters
        :meth:`fingerprint` or cache keys.
    """

    def __init__(
        self,
        coords: np.ndarray,
        params: Optional[SINRParameters] = None,
        metric: Optional[Metric] = None,
        name: str = "network",
        channel: Optional[ChannelModel] = None,
        backend: str = "auto",
        cutoff: Optional[float] = None,
        kernel: str = "auto",
    ):
        if backend not in BACKENDS:
            raise ProtocolError(
                f"unknown SINR backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if kernel not in KERNELS:
            raise ProtocolError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        coords = np.asarray(coords, dtype=float)
        if coords.ndim == 1:
            coords = coords[:, None]
        if coords.ndim != 2 or coords.shape[0] == 0:
            raise DeploymentError(
                f"coordinates must be a non-empty (n, d) array, "
                f"got shape {coords.shape}"
            )
        self._coords = coords
        self._coords.setflags(write=False)
        self.params = params if params is not None else SINRParameters.default()
        self.metric = metric if metric is not None else EuclideanMetric(
            coords.shape[1]
        )
        self.name = name
        self.channel = channel if channel is not None else default_channel()
        self._backend_request = backend
        self._cutoff = cutoff
        self._kernel_request = kernel
        self._kernel_kind: Optional[str] = None
        self._backend_kind: Optional[str] = None
        self._backend_obj: Optional[SparseGainBackend] = None
        self._dist: Optional[np.ndarray] = None
        self._gain: Optional[np.ndarray] = None
        self._graph: Optional[nx.Graph] = None
        self._diameter: Optional[int] = None
        self._max_degree: Optional[int] = None
        self._fingerprint: Optional[str] = None
        #: How this network came to be when produced by :meth:`advance`
        #: (``"patched-sparse"`` / ``"patched-dense"`` / ``"rebuild"``);
        #: ``None`` for directly constructed networks.
        self.advance_mode: Optional[str] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stations ``n``."""
        return self._coords.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def coords(self) -> np.ndarray:
        """Read-only ``(n, d)`` coordinate array."""
        return self._coords

    @property
    def distances(self) -> np.ndarray:
        """Lazily computed ``(n, n)`` distance matrix."""
        if self._dist is None:
            dist = self.metric.distance_matrix(self._coords)
            n = self.size
            if n > 1:
                off = dist[~np.eye(n, dtype=bool)]
                if np.any(off < MIN_DISTANCE):
                    raise DeploymentError(
                        "deployment contains co-located stations; the SINR "
                        "model requires distinct positions"
                    )
            dist.setflags(write=False)
            self._dist = dist
        return self._dist

    @property
    def gains(self) -> np.ndarray:
        """Lazily computed gain matrix, routed through the channel model
        (``P * d^-alpha`` under the default :class:`UniformPower`).

        Always the *dense* matrix — sparse-mode code paths go through
        :attr:`gain_operator` instead and never materialize it; calling
        this on a 100k-station network allocates ``n^2`` floats.
        """
        if self._gain is None:
            gain = self.channel.gain(
                self.distances, self._coords, self.params
            )
            gain.setflags(write=False)
            self._gain = gain
        return self._gain

    # ------------------------------------------------------------------
    # SINR backend (DESIGN.md §2.2)
    # ------------------------------------------------------------------
    @property
    def backend_kind(self) -> str:
        """Resolved backend: ``"dense"`` or ``"sparse"``.

        ``"auto"`` resolves to sparse for deployments of at least
        :data:`~repro.sinr.sparse.SPARSE_AUTO_MIN` stations on a
        Euclidean metric under a radial channel (and a sane cell
        budget); an *explicit* ``"sparse"`` request on an unsupported
        deployment raises when the backend is first touched.
        """
        if self._backend_kind is None:
            if self._backend_request == "auto":
                self._backend_kind = (
                    "sparse"
                    if self.size >= SPARSE_AUTO_MIN and sparse_supported(
                        self._coords, self.params, self.metric,
                        self.channel, cutoff=self._cutoff,
                    )
                    else "dense"
                )
            else:
                self._backend_kind = self._backend_request
        return self._backend_kind

    @property
    def kernel_kind(self) -> str:
        """Resolved kernel: ``"numpy"`` or ``"compiled"``.

        ``"auto"`` consults the ``REPRO_KERNEL`` environment variable
        and then numba availability (:func:`repro.kernels.resolve_kernel`),
        once, at first access; an explicit constructor request always
        wins over the environment.  The fastsim round loops pass this to
        the resolvers each round.
        """
        if self._kernel_kind is None:
            self._kernel_kind = _kernels.resolve_kernel(
                self._kernel_request
            )
        return self._kernel_kind

    @property
    def sparse_backend(self) -> SparseGainBackend:
        """The lazily built sparse backend (sparse mode only)."""
        if self.backend_kind != "sparse":
            raise ProtocolError(
                f"network {self.name!r} runs the dense backend"
            )
        if self._backend_obj is None:
            if not isinstance(self.metric, EuclideanMetric):
                raise ProtocolError(
                    "the sparse backend needs coordinate geometry "
                    "(EuclideanMetric); this network's metric is "
                    f"{type(self.metric).__name__}"
                )
            self._backend_obj = SparseGainBackend(
                self._coords, self.params, self.channel, self._cutoff,
                kernel=self.kernel_kind,
            )
        return self._backend_obj

    @property
    def gain_operator(self):
        """What the resolvers consume: dense gains or the sparse backend.

        Every :mod:`repro.fastsim` kernel passes this to
        :func:`repro.sinr.reception.resolve_reception_batch`, which
        dispatches on the type (DESIGN.md §2.2).
        """
        if self.backend_kind == "sparse":
            return self.sparse_backend
        return self.gains

    @property
    def cutoff(self) -> float:
        """The sparse near-field cutoff radius in effect."""
        return float(
            self._cutoff if self._cutoff is not None
            else default_cutoff(self.params)
        )

    # ------------------------------------------------------------------
    # communication graph
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The communication graph (edges at distance ``<= (1-eps) r``).

        In sparse mode the edge list comes from cell-index neighbour
        queries (the comm radius is below the cutoff by construction),
        so the dense distance matrix is never materialized; the edges
        are identical to the dense construction bit for bit.
        """
        if self._graph is None:
            if self.backend_kind == "sparse":
                ii, jj = self.sparse_backend.pairs_within(
                    self.params.comm_radius
                )
                graph = nx.Graph()
                graph.add_nodes_from(range(self.size))
                graph.add_edges_from(zip(ii.tolist(), jj.tolist()))
                self._graph = graph
            else:
                self._graph = graph_utils.communication_graph(
                    self.distances, self.params.comm_radius
                )
        return self._graph

    @property
    def is_connected(self) -> bool:
        """Whether the communication graph is connected.

        Sparse mode answers with a frontier BFS over the CSR near field
        — no networkx graph object is built for the check.
        """
        if self.size == 1:
            return True
        if self.backend_kind == "sparse" and self._graph is None:
            return self.sparse_backend.connected(self.params.comm_radius)
        return nx.is_connected(self.graph)

    @property
    def diameter(self) -> int:
        """Diameter ``D`` of the communication graph (cached)."""
        if self._diameter is None:
            self._diameter = graph_utils.diameter(self.graph)
        return self._diameter

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the communication graph (cached)."""
        if self._max_degree is None:
            self._max_degree = graph_utils.max_degree(self.graph)
        return self._max_degree

    @property
    def granularity(self) -> float:
        """Granularity ``Rs`` (max/min communication-edge length)."""
        return graph_utils.granularity(self.distances, self.graph)

    def eccentricity(self, source: int) -> int:
        """Broadcast depth from ``source``."""
        return graph_utils.eccentricity(self.graph, source)

    def bfs_layers(self, source: int) -> list[list[int]]:
        """Stations grouped by hop distance from ``source``."""
        return graph_utils.bfs_layers(self.graph, source)

    def neighbors(self, v: int) -> list[int]:
        """Communication-graph neighbours of station ``v``."""
        return sorted(self.graph.neighbors(v))

    def resident_bytes(self) -> int:
        """Estimated resident memory of this network's gain structure.

        The number the service's :class:`~repro.service.pool.NetworkPool`
        budgets against (DESIGN.md §8): what holding this network hot
        costs — or will cost once serving forces its lazy arrays.
        Materialized arrays (coordinates, distance/gain matrices, the
        sparse backend's CSR + cell index) are counted at their actual
        size; in dense mode the ``(n, n)`` distance and gain matrices
        are counted even while still lazy, because the first query
        forces them.  A sparse backend not yet built contributes
        nothing — the service builds it eagerly at admission, so pool
        accounting sees actuals.
        """
        total = self._coords.nbytes
        if self._dist is not None:
            total += self._dist.nbytes
        if self._gain is not None:
            total += self._gain.nbytes
        if self.backend_kind == "sparse":
            if self._backend_obj is not None:
                total += self._backend_obj.nbytes()
        else:
            projected = 8 * self.size * self.size
            if self._dist is None:
                total += projected
            if self._gain is None:
                total += projected
        return total

    def fingerprint(self) -> str:
        """Content hash of everything that determines simulation results.

        Covers the coordinates (bytes), the SINR parameters, the metric
        identity and the channel model's :meth:`~repro.sinr.channel.ChannelModel.identity`
        — but *not* ``name``, which is a display label.  Two networks with
        equal fingerprints produce identical gain matrices and hence
        identical protocol behaviour on identical seeds; the grid layer
        keys its shared-memory registry and the on-disk result cache on
        this value (DESIGN.md §6.3), so networks differing only in
        channel never replay each other's results.

        Dense-mode fingerprints are byte-identical to pre-backend
        releases, so existing result caches stay valid; sparse mode
        appends a ``("sparse-backend", cutoff)`` marker because its
        conservative reception decisions may differ from dense ones —
        the two backends must never replay each other's cache entries.
        The *kernel* choice is deliberately absent: compiled and numpy
        kernels are bitwise identical (DESIGN.md §2.3), so their runs
        may — must — share cache entries.

        Run-time strategy objects — a
        :class:`~repro.deploy.mobility.MobilityModel`, a
        :class:`~repro.mac.MacModel`, traffic flows, a
        :class:`~repro.mac.RateTable` — are likewise absent *by
        design*: they describe how a run exercises the network, not
        the network itself.  Their ``identity()`` reaches cache keys
        through the sweep kwargs instead
        (:func:`repro.fastsim.cache.point_key` fingerprints every
        kwarg, DESIGN.md §11.4), so a ``mac=`` or traffic sweep can
        never alias a bare sweep's cached results even though both ran
        on the same fingerprint.
        """
        if self._fingerprint is None:
            identity = (
                self._coords.shape,
                str(self._coords.dtype),
                type(self.metric).__name__,
                self.metric.growth_dimension,
                self.params,
                self.channel.identity(),
            )
            if self.backend_kind == "sparse":
                from repro.sinr.sparse import CELLS_PER_CUTOFF

                identity = identity + (
                    ("sparse-backend", self.cutoff, CELLS_PER_CUTOFF),
                )
            digest = hashlib.sha256()
            digest.update(repr(identity).encode())
            digest.update(np.ascontiguousarray(self._coords).tobytes())
            explicit = getattr(self.metric, "_matrix", None)
            if explicit is not None:
                # MatrixMetric ignores coordinates; the matrix is the
                # geometry.
                digest.update(np.ascontiguousarray(explicit).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def ball(self, center: int, radius: float) -> np.ndarray:
        """Indices of stations within ``radius`` of station ``center``.

        Sparse mode serves radii up to the cutoff from the cell index;
        larger radii (rare — analysis code on small networks) fall back
        to the dense distance matrix.
        """
        if (
            self.backend_kind == "sparse"
            and self._dist is None
            and radius <= self.cutoff
        ):
            return self.sparse_backend.neighbors_within(center, radius)
        return np.flatnonzero(self.distances[center] <= radius)

    # ------------------------------------------------------------------
    # mobility (DESIGN.md §7)
    # ------------------------------------------------------------------
    def advance(
        self,
        displacements: np.ndarray,
        *,
        rebuild_fraction: float = MOBILITY_REBUILD_FRACTION,
    ) -> "Network":
        """The network one mobility step later (a new ``Network``).

        Networks stay immutable: ``advance`` returns a successor at
        ``coords + displacements`` with the same parameters, channel and
        backend request, whose lazy caches (graph, diameter,
        fingerprint) start empty — they are position-dependent.  What
        carries over is the expensive gain structure, *incrementally*:

        * **sparse** — when this network's backend is built and at most
          ``rebuild_fraction`` of the stations moved, the successor gets
          :meth:`repro.sinr.sparse.SparseGainBackend.advanced`'s patched
          backend: only CSR rows whose cell neighbourhood saw a moved
          station are recomputed, the rest are copied.  The patched
          state is bitwise equal to a from-scratch build at the new
          coordinates (the equivalence suite asserts it); when the cell
          grid itself drifts (bounding-box origin/shape change) the
          patch is unsound and the successor rebuilds lazily.
        * **dense** — the moved rows/columns of the distance matrix are
          recomputed with the elementwise pairwise expression (bitwise
          equal to a fresh :func:`~repro.geometry.metric.pairwise_distances`);
          radial channels additionally patch the gain rows through
          :meth:`~repro.sinr.channel.ChannelModel.radial_gain`, while
          non-radial channels (shadowing, obstacles) recompute gains
          lazily from the patched distances.

        ``advance_mode`` on the returned successor records which path
        ran (``"patched-sparse"``, ``"patched-dense"``, ``"rebuild"``).
        An all-zero displacement returns ``self`` untouched — no
        successor exists and this network's own ``advance_mode`` (the
        record of how *it* was produced) is not clobbered.

        :param displacements: ``(n, d)`` per-station displacement array;
            stations with an exact-zero row are treated as unmoved.
        :param rebuild_fraction: moved-fraction threshold above which no
            patching is attempted.
        """
        disp = np.asarray(displacements, dtype=float)
        if disp.ndim == 1:
            disp = disp[:, None]
        if disp.shape != self._coords.shape:
            raise DeploymentError(
                f"displacements must have shape {self._coords.shape}, "
                f"got {disp.shape}"
            )
        if not isinstance(self.metric, EuclideanMetric):
            raise ProtocolError(
                "mobility needs coordinate geometry (EuclideanMetric); "
                f"this network's metric is {type(self.metric).__name__}"
            )
        moved = np.flatnonzero(np.any(disp != 0.0, axis=1))
        if moved.size == 0:
            return self
        new_coords = self._coords + disp
        successor = Network(
            new_coords, params=self.params, metric=self.metric,
            name=self.name, channel=self.channel,
            backend=self._backend_request, cutoff=self._cutoff,
            kernel=self._kernel_request,
        )
        successor.advance_mode = "rebuild"
        if moved.size <= rebuild_fraction * self.size:
            if self.backend_kind == "sparse" and self._backend_obj is not None:
                patched = self._backend_obj.advanced(new_coords, moved)
                if patched is not None:
                    successor._backend_kind = "sparse"
                    successor._backend_obj = patched
                    successor.advance_mode = "patched-sparse"
            elif self.backend_kind == "dense" and self._dist is not None:
                self._patch_dense(successor, new_coords, moved)
                successor.advance_mode = "patched-dense"
        return successor

    def _patch_dense(
        self, successor: "Network", new_coords: np.ndarray,
        moved: np.ndarray,
    ) -> None:
        """Install patched distance (and gain) matrices on ``successor``.

        Only the ``moved`` rows and columns are recomputed; the
        expressions mirror :func:`repro.geometry.metric.pairwise_distances`
        and the radial channel's elementwise gain, so patched entries
        are bitwise equal to a fresh build's.
        """
        diff = new_coords[moved][:, None, :] - new_coords[None, :, :]
        rows = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        rows[np.arange(moved.size), moved] = 0.0
        check = rows.copy()
        check[np.arange(moved.size), moved] = np.inf
        if self.size > 1 and float(check.min()) < MIN_DISTANCE:
            raise DeploymentError(
                "deployment contains co-located stations; the SINR "
                "model requires distinct positions"
            )
        dist = np.array(self._dist)
        dist[moved] = rows
        dist[:, moved] = rows.T
        dist.setflags(write=False)
        successor._dist = dist
        if self._gain is None:
            return
        gain_rows = self.channel.radial_gain(rows, self.params)
        if gain_rows is None:
            # Non-radial channels draw whole-matrix structure (seeded
            # shadowing, obstacle crossings); rows cannot be patched in
            # isolation.  The successor recomputes gains lazily from
            # the patched distances — exactly what a fresh build does.
            return
        gain_rows = np.array(gain_rows)
        gain_rows[np.arange(moved.size), moved] = 0.0
        gain = np.array(self._gain)
        gain[moved] = gain_rows
        gain[:, moved] = gain_rows.T
        gain.setflags(write=False)
        successor._gain = gain

    def with_params(self, params: SINRParameters) -> "Network":
        """A copy of this network under different SINR parameters.

        Reuses nothing mutable; distance matrix is recomputed lazily (the
        metric is shared, which is safe because metrics are stateless).
        """
        return Network(
            np.array(self._coords), params=params, metric=self.metric,
            name=self.name, channel=self.channel,
            backend=self._backend_request, cutoff=self._cutoff,
            kernel=self._kernel_request,
        )

    def with_channel(self, channel: ChannelModel) -> "Network":
        """A copy of this network under a different channel model.

        Coordinates, parameters and hence the communication graph are
        unchanged; gains (and the fingerprint) are not.  This is how E13
        sweeps one deployment across channels.
        """
        return Network(
            np.array(self._coords), params=self.params, metric=self.metric,
            name=self.name, channel=channel,
            backend=self._backend_request, cutoff=self._cutoff,
            kernel=self._kernel_request,
        )

    def describe(self) -> dict:
        """Summary dict used by experiment reports."""
        connected = self.is_connected
        return {
            "name": self.name,
            "n": self.size,
            "connected": connected,
            "diameter": self.diameter if connected else None,
            "max_degree": self.max_degree,
            "granularity": self.granularity,
            "alpha": self.params.alpha,
            "beta": self.params.beta,
            "eps": self.params.eps,
            "channel": self.channel.identity()[0],
            "backend": self.backend_kind,
            "kernel": self.kernel_kind,
        }

    def __repr__(self) -> str:
        return f"Network(name={self.name!r}, n={self.size})"
