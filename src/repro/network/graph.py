"""Communication-graph utilities.

The communication graph ``G`` (paper Sect. 1.1) connects stations at
distance at most ``(1 - eps) * r``.  All of the paper's complexity bounds
are phrased in terms of this graph: its diameter ``D``, its maximum degree
``Delta`` (for the local-broadcast comparison) and its *granularity*
``Rs`` — the maximum ratio between distances of connected stations (used by
Daum et al. [5], whose bound the paper improves upon).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import DisconnectedNetworkError, GeometryError


def communication_graph(dist: np.ndarray, comm_radius: float) -> nx.Graph:
    """Build the communication graph from a distance matrix.

    Nodes are station indices ``0..n-1``; ``{i, j}`` is an edge iff
    ``dist(i, j) <= comm_radius`` and ``i != j``.  Uniform power makes the
    graph symmetric (Sect. 1.1).
    """
    if comm_radius <= 0:
        raise GeometryError(
            f"communication radius must be positive, got {comm_radius}"
        )
    n = dist.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    ii, jj = np.nonzero(np.triu(dist <= comm_radius, k=1))
    graph.add_edges_from(zip(ii.tolist(), jj.tolist()))
    return graph


def diameter(graph: nx.Graph) -> int:
    """Graph diameter ``D`` — the paper's central complexity parameter.

    :raises DisconnectedNetworkError: broadcast (and hence ``D``) is only
        defined for connected communication graphs.
    """
    if graph.number_of_nodes() == 0:
        raise DisconnectedNetworkError("empty graph has no diameter")
    if graph.number_of_nodes() == 1:
        return 0
    if not nx.is_connected(graph):
        raise DisconnectedNetworkError(
            "communication graph is disconnected; broadcast undefined"
        )
    return int(nx.diameter(graph))


def eccentricity(graph: nx.Graph, source: int) -> int:
    """Largest graph distance from ``source`` — the effective broadcast depth.

    Broadcast from ``source`` needs exactly ``ecc(source)`` hops, which can
    be up to 2x smaller than ``D``; experiments report both.
    """
    if source not in graph:
        raise GeometryError(f"source {source} not in graph")
    if not nx.is_connected(graph):
        raise DisconnectedNetworkError(
            "communication graph is disconnected; eccentricity undefined"
        )
    return int(nx.eccentricity(graph, v=source))


def bfs_layers(graph: nx.Graph, source: int) -> list[list[int]]:
    """Stations grouped by graph distance from ``source``.

    Layer ``i`` holds exactly the stations a perfect broadcast informs in
    its ``i``-th hop; used to measure per-hop progress of the protocols.
    """
    if source not in graph:
        raise GeometryError(f"source {source} not in graph")
    layers = [[source]]
    seen = {source}
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        if nxt:
            layers.append(sorted(nxt))
        frontier = nxt
    return layers


def max_degree(graph: nx.Graph) -> int:
    """Maximum degree ``Delta`` of the communication graph."""
    if graph.number_of_nodes() == 0:
        return 0
    return int(max(d for _, d in graph.degree))


def granularity(dist: np.ndarray, graph: nx.Graph) -> float:
    """Granularity ``Rs``: max ratio of distances over communication edges.

    ``Rs = max_edge dist / min_edge dist`` — the parameter the Daum et al.
    [5] bound ``O(D log n log^{alpha+1} Rs)`` depends on, and which the
    paper's footnote-2 instance drives exponentially high.  Returns 1.0 for
    graphs with fewer than one edge.
    """
    edges = list(graph.edges)
    if not edges:
        return 1.0
    lengths = np.array([dist[i, j] for i, j in edges])
    shortest = float(lengths.min())
    if shortest <= 0:
        raise GeometryError("zero-length communication edge")
    return float(lengths.max()) / shortest
