"""Measurement, model fitting and reporting substrate for experiments."""

from repro.analysis.fitting import (
    FitResult,
    fit_models,
    growth_exponent,
    COMPLEXITY_MODELS,
)
from repro.analysis.stats import TrialStats, aggregate_trials, success_rate
from repro.analysis.tables import render_table

__all__ = [
    "FitResult",
    "fit_models",
    "growth_exponent",
    "COMPLEXITY_MODELS",
    "TrialStats",
    "aggregate_trials",
    "success_rate",
    "render_table",
]
