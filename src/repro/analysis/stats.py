"""Trial aggregation for randomized experiments.

Every experiment repeats its measurement over seeded trials; these helpers
reduce the per-trial values to the summary statistics the tables report
(mean, median, spread, and success rates for whp claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class TrialStats:
    """Summary of one measured quantity across trials."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p90: float

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.1f} median={self.median:.1f} "
            f"std={self.std:.1f} range=[{self.minimum:.1f}, "
            f"{self.maximum:.1f}]"
        )


def aggregate_trials(values: Sequence[float]) -> TrialStats:
    """Summarize per-trial measurements."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot aggregate zero trials")
    return TrialStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p90=float(np.percentile(arr, 90)),
    )


def success_rate(successes: Sequence[bool]) -> float:
    """Fraction of successful trials (the empirical "whp" check)."""
    flags = list(successes)
    if not flags:
        raise AnalysisError("cannot compute a rate over zero trials")
    return sum(1 for s in flags if s) / len(flags)


def relative_spread(values: Sequence[float]) -> float:
    """``(max - min) / median`` — the dispersion metric E12 reports.

    Geometry-independence predicts that broadcast cost across deployments
    sharing a communication graph varies only by sampling noise; this
    statistic quantifies the variation in one number.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot compute spread of zero values")
    med = float(np.median(arr))
    if med == 0:
        raise AnalysisError("median is zero; spread undefined")
    return float((arr.max() - arr.min()) / med)
