"""Plain-text table rendering for the experiment harness.

Experiments print their rows in the same aligned ASCII format so the
console output of ``python -m repro.experiments <id>`` reads like the
tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    if not headers:
        raise AnalysisError("table needs at least one column")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
