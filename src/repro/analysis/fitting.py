"""Least-squares fits against candidate complexity shapes.

The experiments validate *asymptotic shapes*, so each measured series
(e.g. broadcast rounds vs ``n``) is fit against a family of candidate
models (``log^2 n``, ``n``, ``n log n``, ...) and the report records which
model explains the data best (highest R^2 with a single scale constant).
This turns "the curve looks like D log^2 n" into a number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import AnalysisError

ModelFn = Callable[[np.ndarray], np.ndarray]


def _log2(x: np.ndarray) -> np.ndarray:
    return np.log2(np.maximum(x, 2.0))


#: Candidate single-parameter models ``y ~ c * f(x)`` used by experiments.
COMPLEXITY_MODELS: dict[str, ModelFn] = {
    "const": lambda x: np.ones_like(np.asarray(x, dtype=float)),
    "log n": _log2,
    "log^2 n": lambda x: _log2(x) ** 2,
    "log^3 n": lambda x: _log2(x) ** 3,
    "sqrt n": lambda x: np.sqrt(x),
    "n": lambda x: np.asarray(x, dtype=float),
    "n log n": lambda x: x * _log2(x),
    "n^2": lambda x: np.asarray(x, dtype=float) ** 2,
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one model to a series."""

    model: str
    scale: float
    r_squared: float
    residuals: tuple

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Model prediction at new points."""
        return self.scale * COMPLEXITY_MODELS[self.model](np.asarray(x))


def fit_single(
    x: Sequence[float], y: Sequence[float], model: str
) -> FitResult:
    """Least-squares fit of ``y ~ c * f(x)`` for a named model."""
    if model not in COMPLEXITY_MODELS:
        raise AnalysisError(f"unknown model {model!r}")
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise AnalysisError("x and y must be 1-d arrays of equal length")
    if x_arr.size < 2:
        raise AnalysisError("need at least two points to fit")
    basis = COMPLEXITY_MODELS[model](x_arr)
    denom = float(np.dot(basis, basis))
    if denom == 0:
        raise AnalysisError(f"model {model!r} degenerate on this domain")
    scale = float(np.dot(basis, y_arr)) / denom
    pred = scale * basis
    ss_res = float(np.sum((y_arr - pred) ** 2))
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else (1.0 if ss_res == 0 else 0.0)
    return FitResult(
        model=model,
        scale=scale,
        r_squared=r2,
        residuals=tuple((y_arr - pred).tolist()),
    )


def fit_models(
    x: Sequence[float],
    y: Sequence[float],
    models: Sequence[str] | None = None,
) -> list[FitResult]:
    """Fit several models; results sorted by descending R^2."""
    if models is None:
        models = list(COMPLEXITY_MODELS)
    fits = [fit_single(x, y, m) for m in models]
    return sorted(fits, key=lambda f: f.r_squared, reverse=True)


def fit_two_term(
    x: Sequence[float],
    y: Sequence[float],
    model_a: str,
    model_b: str,
) -> tuple[float, float, float]:
    """Least-squares fit ``y ~ a * f(x) + b * g(x)``.

    Used for the paper's two-term bounds (``D log n + log^2 n``,
    ``a log^2 n + b log n``); returns ``(a, b, r_squared)``.
    """
    for model in (model_a, model_b):
        if model not in COMPLEXITY_MODELS:
            raise AnalysisError(f"unknown model {model!r}")
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size < 3:
        raise AnalysisError("need at least three points for a 2-term fit")
    basis = np.column_stack(
        [COMPLEXITY_MODELS[model_a](x_arr), COMPLEXITY_MODELS[model_b](x_arr)]
    )
    coef, *_ = np.linalg.lstsq(basis, y_arr, rcond=None)
    pred = basis @ coef
    ss_res = float(np.sum((y_arr - pred) ** 2))
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else (1.0 if ss_res == 0 else 0.0)
    return float(coef[0]), float(coef[1]), r2


def growth_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """Log-log slope of ``y`` vs ``x`` — the empirical polynomial degree.

    A slope near 0 means "flat in x" (the paper's geometry-independence
    claims); near 1 linear, etc.  Requires positive data.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise AnalysisError("growth exponent needs positive data")
    if x_arr.size < 2:
        raise AnalysisError("need at least two points")
    slope = np.polyfit(np.log(x_arr), np.log(y_arr), 1)[0]
    return float(slope)


def daum_bound(
    diameter: float, n: float, granularity: float, alpha: float
) -> float:
    """The Daum et al. [5] round bound ``D log n log^(alpha+1) Rs``.

    Used as the *analytic* comparator in E7: the paper's improvement claim
    is against this formula, which explodes for exponential granularity
    while the measured rounds of the paper's algorithms stay flat.
    """
    if diameter < 1 or n < 2 or granularity < 1:
        raise AnalysisError("need D >= 1, n >= 2, Rs >= 1")
    log_n = math.log2(n)
    log_rs = max(1.0, math.log2(granularity))
    return diameter * log_n * log_rs ** (alpha + 1)


def paper_bound_spont(diameter: float, n: float) -> float:
    """``D log n + log^2 n`` (Theorem 2, up to its constant)."""
    log_n = max(1.0, math.log2(n))
    return diameter * log_n + log_n ** 2


def paper_bound_nospont(diameter: float, n: float) -> float:
    """``D log^2 n`` (Theorem 1, up to its constant)."""
    log_n = max(1.0, math.log2(n))
    return diameter * log_n ** 2
